"""Named-API overhead gate: ServingCube named queries vs positional QueryEngine.

The session layer (:mod:`repro.session`) translates dimension names and raw
values through the value dictionaries before hitting the same serving engine
the positional API uses.  That translation must stay cheap — this benchmark
answers one identical point-query workload twice:

1. ``positional`` — :class:`repro.query.QueryEngine` with encoded cells,
2. ``named``      — :class:`repro.session.ServingCube` with ``{name: value}``
   specs over the same cube,

and exits non-zero when the named path costs more than ``--max-overhead``
(default 25%) over the positional path::

    PYTHONPATH=src python benchmarks/bench_api_overhead.py
    PYTHONPATH=src python benchmarks/bench_api_overhead.py --tuples 20000

Both paths run with their answer caches enabled on a skewed (hot-spot) replay
— the realistic serving shape, and the shape where constant per-query
translation overhead is most visible.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Dict, List, Sequence, Tuple

from bench_helpers import write_report

from repro import CubeSession, compute_closed_cube, open_query_engine
from repro.core.cell import Cell
from repro.core.cube import CubeResult
from repro.core.relation import Relation
from repro.datagen.synthetic import SyntheticConfig, generate_relation


def build_workload(
    cube: CubeResult, relation: Relation, num_queries: int, seed: int
) -> Tuple[List[Cell], List[Dict[str, object]]]:
    """The same skewed point-query mix in both languages.

    Queries are anchored on a hot subset of materialised cells with random
    dimensions starred out (dashboard traffic); the positional and named
    workloads address the exact same cells.
    """
    rng = random.Random(seed)
    cells = list(cube)
    hot = [cells[rng.randrange(len(cells))] for _ in range(min(64, len(cells)))]
    names = relation.schema.dimension_names
    positional: List[Cell] = []
    named: List[Dict[str, object]] = []
    for _ in range(num_queries):
        base = list(hot[rng.randrange(len(hot))])
        for dim in range(len(base)):
            if rng.random() < 0.4:
                base[dim] = None
        target = tuple(base)
        positional.append(target)
        named.append(
            {
                names[dim]: relation.decode(dim, code)
                for dim, code in enumerate(target)
                if code is not None
            }
        )
    return positional, named


def time_loop(run, repeats: int = 3) -> float:
    """Best-of-N wall time of ``run()`` (minimum damps scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: Sequence[str] = ()) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=100_000)
    parser.add_argument("--dims", type=int, default=6)
    parser.add_argument("--cardinality", type=int, default=25)
    parser.add_argument("--min-sup", type=int, default=20)
    parser.add_argument("--queries", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.25,
        help="maximum tolerated (named - positional) / positional",
    )
    parser.add_argument("--json", type=str, default=None,
                        help="also write the results to this JSON file")
    args = parser.parse_args(argv or sys.argv[1:])

    config = SyntheticConfig.uniform(
        args.tuples, args.dims, args.cardinality, skew=1.0, seed=args.seed
    )
    relation = generate_relation(config)
    print(f"relation: {config.describe()}")

    cube = compute_closed_cube(relation, min_sup=args.min_sup)
    print(f"closed cube: {len(cube)} cells (min_sup={args.min_sup})")
    if len(cube) == 0:
        print(
            f"no cells survive min_sup={args.min_sup} on {args.tuples} tuples; "
            "lower --min-sup or raise --tuples",
            file=sys.stderr,
        )
        return 1

    positional_engine = open_query_engine(cube)
    named_cube = CubeSession.from_relation(relation).closed(args.min_sup).build()

    positional, named = build_workload(cube, relation, args.queries, args.seed)

    # Warm both caches with one full replay, then time steady-state serving.
    for cell in positional:
        positional_engine.point(cell)
    for spec in named:
        named_cube.point(spec)

    positional_time = time_loop(
        lambda: [positional_engine.point(cell) for cell in positional]
    )
    named_time = time_loop(lambda: [named_cube.point(spec) for spec in named])

    overhead = (named_time - positional_time) / positional_time
    qps_positional = args.queries / positional_time
    qps_named = args.queries / named_time
    print(f"positional: {positional_time * 1e6 / args.queries:8.2f} us/query "
          f"({qps_positional:,.0f} q/s)")
    print(f"named:      {named_time * 1e6 / args.queries:8.2f} us/query "
          f"({qps_named:,.0f} q/s)")
    print(f"overhead:   {overhead * 100:+.1f}% (gate: < {args.max_overhead * 100:.0f}%)")

    write_report(
        args.json,
        "bench_api_overhead",
        {"tuples": args.tuples, "dims": args.dims,
         "cardinality": args.cardinality, "min_sup": args.min_sup,
         "queries": args.queries, "seed": args.seed},
        passed=overhead <= args.max_overhead,
        positional_seconds=round(positional_time, 6),
        named_seconds=round(named_time, 6),
        overhead=round(overhead, 4),
        max_overhead=args.max_overhead,
    )

    if overhead > args.max_overhead:
        print("FAIL: named-query overhead exceeds the gate", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
