"""Concurrent-serving benchmark: interleaved append+query vs serialized.

Builds a catalog cube over a synthetic fact stream (100k tuples by default,
leading chronological ``day`` column as in bench_incremental) and pushes the
same workload — A append batches plus Q queries — through two regimes:

1. ``serialized`` — the pre-server reality: appends and queries share one
   thread, so every query stream stalls for the append in front of it
   (append batch, then its share of queries, repeat);
2. ``concurrent`` — :class:`repro.server.AsyncCubeServer` over the same
   catalog: appends run copy-on-publish on the maintenance pool (cubing in a
   process pool), queries keep flowing through the batched read path and
   never wait for a merge.

Both regimes answer the *same* queries over the *same* appends, and both
final cubes are verified cell-for-cell against a from-scratch rebuild before
any timing is trusted.  The reported metric is query throughput (answers per
second of wall-clock until the query stream completes); the script exits
non-zero when the concurrent regime fails to beat the serialized one by
``--min-speedup`` (default 3x), making it a CI regression gate::

    PYTHONPATH=src python benchmarks/bench_concurrent_serving.py
    PYTHONPATH=src python benchmarks/bench_concurrent_serving.py --tuples 20000

``--json PATH`` additionally writes the measurements as a JSON report (the
CI workflow uploads these as artifacts).
"""

from __future__ import annotations

import argparse
import asyncio
import os
import random
import sys
import tempfile
import time
from typing import List, Sequence

from bench_helpers import write_report

from repro import CubeCatalog, CubeSession
from repro.datagen.synthetic import SyntheticConfig, generate_relation
from repro.incremental.parallel import create_refresh_pool
from repro.server import AsyncCubeServer

CUBE = "stream"


def build_workload(args):
    """Raw day-stamped rows: a base window plus ``--append-batches`` days."""
    num_append = max(args.append_batches,
                     int(args.tuples * args.append_fraction))
    per_batch = num_append // args.append_batches
    num_append = per_batch * args.append_batches
    total = args.tuples + num_append
    relation = generate_relation(SyntheticConfig.uniform(
        num_tuples=total, num_dims=args.dims - 1, cardinality=args.cardinality,
        skew=args.skew, seed=args.seed,
    ))

    def day_of(tid: int) -> str:
        if tid >= args.tuples:
            return f"day{args.days + (tid - args.tuples) // per_batch}"
        return f"day{tid * args.days // args.tuples}"

    all_rows = [
        (day_of(tid),) + tuple(
            relation.decode(dim, relation.columns[dim][tid])
            for dim in range(relation.num_dimensions)
        )
        for tid in range(total)
    ]
    base_rows = all_rows[: args.tuples]
    batches = [
        all_rows[args.tuples + index * per_batch:
                 args.tuples + (index + 1) * per_batch]
        for index in range(args.append_batches)
    ]
    return base_rows, batches, all_rows


def build_queries(base_rows, num_queries: int, seed: int,
                  distinct: int = 100) -> List[dict]:
    """A skewed dashboard workload: hot specs repeat, like real serving.

    Draws every query from a pool of ``distinct`` specs (points over seen
    values plus a few roll-ups) with a heavy-headed repetition pattern, the
    shape the serving caches are built for — and the shape under which an
    append stall hurts most, since thousands of cheap answers queue behind
    one merge.
    """
    rng = random.Random(seed)
    num_dims = len(base_rows[0])
    dim_names = [f"d{index}" for index in range(num_dims)]
    values = [sorted({row[dim] for row in base_rows}) for dim in range(num_dims)]
    pool: List[dict] = []
    for index in range(distinct):
        if index % 20 == 19:
            pool.append({"op": "rollup", "dims": [rng.choice(dim_names[1:])]})
            continue
        picked = rng.sample(range(num_dims), rng.randint(1, min(3, num_dims)))
        pool.append({
            dim_names[dim]: rng.choice(values[dim]) for dim in picked
        })
    # Zipf-ish skew: spec i drawn proportionally to 1 / (i + 1).
    weights = [1.0 / (index + 1) for index in range(len(pool))]
    return rng.choices(pool, weights=weights, k=num_queries)


def run_serialized(catalog, batches, query_chunks) -> float:
    """Appends and queries on one thread: every chunk waits for its append.

    The query workload is run once untimed first, so both regimes measure
    steady-state serving (warm caches) rather than first-touch resolution.
    """
    cube = catalog.load(CUBE)
    for chunk in query_chunks:
        cube.query_many(chunk)
    start = time.perf_counter()
    for index, batch in enumerate(batches):
        cube.append(batch)
        for chunk in query_chunks[index::len(batches)]:
            cube.query_many(chunk)
    return time.perf_counter() - start


def run_concurrent(catalog, batches, query_chunks, refresh_pool) -> float:
    """Appends in flight while the query stream completes on the server."""
    cube = catalog.load(CUBE)  # fresh instance, same snapshot

    async def scenario() -> float:
        async with AsyncCubeServer(
            catalog,
            query_workers=4,
            maintenance_workers=2,
            refresh_executor=refresh_pool,
        ) as server:
            # Same untimed warm-up as the serialized regime: the gate
            # measures steady-state serving, not first-touch resolution.
            await asyncio.gather(
                *(server.execute_many(CUBE, chunk) for chunk in query_chunks)
            )
            start = time.perf_counter()
            append_tasks = [
                asyncio.get_running_loop().create_task(
                    server.append(CUBE, batch)
                )
                for batch in batches
            ]
            await asyncio.gather(
                *(server.execute_many(CUBE, chunk) for chunk in query_chunks)
            )
            elapsed = time.perf_counter() - start
            reports = await asyncio.gather(*append_tasks)
            assert sum(r.appended_rows for r in reports) == sum(
                len(batch) for batch in batches
            )
            return elapsed

    elapsed = asyncio.run(scenario())
    assert cube.version == len(batches)
    return elapsed


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=100_000,
                        help="base relation size before the appends")
    parser.add_argument("--dims", type=int, default=5,
                        help="total dimensions, including the leading day column")
    parser.add_argument("--cardinality", type=int, default=6)
    parser.add_argument("--days", type=int, default=10,
                        help="days in the base window (appends are later days)")
    parser.add_argument("--skew", type=float, default=0.5)
    parser.add_argument("--append-batches", type=int, default=4)
    parser.add_argument("--append-fraction", type=float, default=0.10,
                        help="total appended rows as a fraction of the base")
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--chunk", type=int, default=25,
                        help="queries per execute_many batch")
    parser.add_argument("--refresh-processes", type=int, default=2,
                        help="process-pool workers for the concurrent regime "
                        "(0: compute appends in the maintenance threads)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail unless concurrent query throughput beats "
                        "serialized by this factor")
    parser.add_argument("--json", type=str, default=None,
                        help="also write the results to this JSON file")
    args = parser.parse_args(argv)

    base_rows, batches, all_rows = build_workload(args)
    appended = sum(len(batch) for batch in batches)
    print(f"dataset: T={args.tuples} (+{appended} appended over "
          f"{args.append_batches} batches) D={args.dims} C={args.cardinality} "
          f"S={args.skew} min_sup=1 closed")
    queries = build_queries(base_rows, args.queries, args.seed)
    query_chunks = [queries[i:i + args.chunk]
                    for i in range(0, len(queries), args.chunk)]

    with tempfile.TemporaryDirectory() as directory:
        catalog = CubeCatalog(os.path.join(directory, "catalog"))
        start = time.perf_counter()
        serving = catalog.create(CUBE, base_rows)
        print(f"built base cube in {time.perf_counter() - start:.2f}s "
              f"({len(serving)} cells, algorithm {serving.algorithm!r})")

        refresh_pool = None
        if args.refresh_processes > 0:
            refresh_pool = create_refresh_pool(args.refresh_processes)
            # Warm the spawn workers so process startup is not billed to the
            # concurrent regime's timing.
            refresh_pool.submit(int).result()

        try:
            serialized_seconds = run_serialized(catalog, batches, query_chunks)
            serialized_qps = len(queries) / serialized_seconds
            serialized_cube = catalog.open(CUBE)
            print(f"serialized: {serialized_seconds:.3f}s for {len(queries)} "
                  f"queries + {args.append_batches} appends "
                  f"({serialized_qps:,.0f} q/s)")

            concurrent_seconds = run_concurrent(
                catalog, batches, query_chunks, refresh_pool
            )
            concurrent_qps = len(queries) / concurrent_seconds
            concurrent_cube = catalog.open(CUBE)
            print(f"concurrent: query stream done in {concurrent_seconds:.3f}s "
                  f"with all appends in flight ({concurrent_qps:,.0f} q/s)")
        finally:
            if refresh_pool is not None:
                refresh_pool.shutdown()

        rebuilt = CubeSession.from_rows(all_rows).closed(min_sup=1).build()
        for label, cube in (("serialized", serialized_cube),
                            ("concurrent", concurrent_cube)):
            if not cube.cube.same_cells(rebuilt.cube):
                print(f"FAIL: {label} cube differs from the full recompute:")
                print(cube.cube.diff(rebuilt.cube))
                return 1
        print(f"verified: both final cubes == recomputed cube "
              f"({len(rebuilt)} cells)")

    speedup = concurrent_qps / serialized_qps
    print()
    print(f"{'regime':<14}{'seconds':>10}{'queries/s':>14}{'vs serialized':>16}")
    print("-" * 54)
    print(f"{'serialized':<14}{serialized_seconds:>10.3f}"
          f"{serialized_qps:>14,.0f}{1.0:>15.1f}x")
    print(f"{'concurrent':<14}{concurrent_seconds:>10.3f}"
          f"{concurrent_qps:>14,.0f}{speedup:>15.1f}x")

    write_report(
        args.json,
        "bench_concurrent_serving",
        {
            "tuples": args.tuples,
            "appended": appended,
            "append_batches": args.append_batches,
            "dims": args.dims,
            "cardinality": args.cardinality,
            "skew": args.skew,
            "queries": len(queries),
            "chunk": args.chunk,
            "refresh_processes": args.refresh_processes,
            "seed": args.seed,
        },
        passed=speedup >= args.min_speedup,
        serialized_seconds=round(serialized_seconds, 6),
        concurrent_seconds=round(concurrent_seconds, 6),
        serialized_qps=round(serialized_qps, 1),
        concurrent_qps=round(concurrent_qps, 1),
        speedup=round(speedup, 3),
        min_speedup=args.min_speedup,
    )

    if speedup < args.min_speedup:
        print(f"FAIL: concurrent serving is only {speedup:.1f}x the "
              f"serialized baseline (required {args.min_speedup:.1f}x)")
        return 1
    print(f"OK: concurrent serving sustains {speedup:.1f}x the serialized "
          f"query throughput (required {args.min_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
