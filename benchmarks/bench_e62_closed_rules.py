"""Extension experiment E-6.2: closed rules vs closed cells (Section 6.2).

The paper reports that on the weather data (min_sup 10) the 462k closed cells
reduce to 57k closed rules (< 15% of the cube).  This benchmark mines the rule
set on the scaled weather trace and records the corresponding counts.
"""

from repro.core.validate import reference_closed_cube
from repro.rules.closed_rules import compression_report, mine_closed_rules

from bench_helpers import weather_relation


def test_e62_closed_rule_mining(benchmark):
    relation = weather_relation(num_dims=6, num_tuples=800)
    closed = reference_closed_cube(relation, min_sup=4)
    benchmark.group = "e62 closed rules"

    def mine():
        return mine_closed_rules(relation, closed, max_condition_arity=2)

    rules = benchmark.pedantic(mine, rounds=1, iterations=1)
    report = compression_report(closed, rules)
    benchmark.extra_info.update(report)
    assert report["closed_rules"] > 0
