"""Extension experiment E-6.3: partitioned (external) computation (Section 6.3).

The driver splits the relation on one dimension, spills partitions when the
memory budget is exceeded, computes each partition separately and finishes
with a collapsed-dimension pass.  The benchmark verifies the partitioned
result matches the in-memory closed cube while recording the partition and
spill statistics.
"""

import pytest

from repro.core.validate import reference_closed_cube
from repro.storage.partition import PartitionedCubeComputer

from bench_helpers import synthetic_relation


@pytest.mark.parametrize("budget", [100, None], ids=["spilling", "in-memory"])
def test_e63_partitioned_computation(benchmark, budget, tmp_path):
    relation = synthetic_relation(400, num_dims=5, cardinality=8, skew=1.0, seed=3)
    expected = reference_closed_cube(relation, min_sup=2)
    benchmark.group = "e63 partitioned"

    computer = PartitionedCubeComputer(
        algorithm="c-cubing-star",
        min_sup=2,
        closed=True,
        memory_budget_tuples=budget,
        spill_dir=str(tmp_path),
    )

    def run():
        return computer.compute(relation)

    cube, report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["partitions"] = report.num_partitions
    benchmark.extra_info["largest_partition"] = report.largest_partition
    benchmark.extra_info["spilled_files"] = report.spilled_files
    assert expected.same_cells(cube)
