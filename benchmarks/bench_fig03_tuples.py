"""Figure 3: full closed cube computation w.r.t. number of tuples.

Paper setting: D=10, C=100, S=0, M=1, T = 200K..1000K, comparing
C-Cubing(MM), C-Cubing(Star), C-Cubing(StarArray) and QC-DFS.
Scaled setting: D=8, C=20, T swept at two points per algorithm.
"""

import pytest

from bench_helpers import run_cubing, synthetic_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array", "qc-dfs")


@pytest.mark.parametrize("num_tuples", [300, 600])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig03_closed_cube_vs_tuples(benchmark, algorithm, num_tuples):
    relation = synthetic_relation(num_tuples, num_dims=8, cardinality=20, skew=0.0)
    benchmark.group = f"fig03 T={num_tuples}"
    run_cubing(benchmark, relation, algorithm, min_sup=1, closed=True)
