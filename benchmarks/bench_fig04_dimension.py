"""Figure 4: full closed cube computation w.r.t. number of dimensions.

Paper setting: T=1000K, S=2, C=100, M=1, D = 6..10.
Scaled setting: T=500, C=20, S=2, D swept at 5 and 7.
"""

import pytest

from bench_helpers import run_cubing, synthetic_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array", "qc-dfs")


@pytest.mark.parametrize("num_dims", [5, 7])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig04_closed_cube_vs_dimension(benchmark, algorithm, num_dims):
    relation = synthetic_relation(500, num_dims=num_dims, cardinality=20, skew=2.0)
    benchmark.group = f"fig04 D={num_dims}"
    run_cubing(benchmark, relation, algorithm, min_sup=1, closed=True)
