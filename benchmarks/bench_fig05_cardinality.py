"""Figure 5: full closed cube computation w.r.t. cardinality.

Paper setting: T=1000K, D=8, S=1, M=1, C = 10..10000.
Scaled setting: T=500, D=6, S=1, C swept at 10 and 200.
The paper's observation to check: C-Cubing(Star) is ahead at low cardinality,
C-Cubing(StarArray) at high cardinality, and QC-DFS degrades the most as C grows.
"""

import pytest

from bench_helpers import run_cubing, synthetic_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array", "qc-dfs")


@pytest.mark.parametrize("cardinality", [10, 200])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig05_closed_cube_vs_cardinality(benchmark, algorithm, cardinality):
    relation = synthetic_relation(500, num_dims=6, cardinality=cardinality, skew=1.0)
    benchmark.group = f"fig05 C={cardinality}"
    run_cubing(benchmark, relation, algorithm, min_sup=1, closed=True)
