"""Figure 6: full closed cube computation w.r.t. data skew.

Paper setting: T=1000K, C=100, D=8, M=1, S = 0..3.
Scaled setting: T=500, C=20, D=6, S swept at 0 and 3.
The paper's observation to check: every algorithm gets faster as skew grows.
"""

import pytest

from bench_helpers import run_cubing, synthetic_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array", "qc-dfs")


@pytest.mark.parametrize("skew", [0.0, 3.0])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig06_closed_cube_vs_skew(benchmark, algorithm, skew):
    relation = synthetic_relation(500, num_dims=6, cardinality=20, skew=skew)
    benchmark.group = f"fig06 S={skew}"
    run_cubing(benchmark, relation, algorithm, min_sup=1, closed=True)
