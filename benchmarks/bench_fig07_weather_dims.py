"""Figure 7: full closed cube computation on the weather data w.r.t. dimensions.

Paper setting: SEP83L.DAT (1M tuples), first 5..8 dimensions, M=1.
Scaled setting: synthetic weather trace (1200 reports), 5 and 7 dimensions.
"""

import pytest

from bench_helpers import run_cubing, weather_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array", "qc-dfs")


@pytest.mark.parametrize("num_dims", [5, 7])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig07_weather_closed_cube_vs_dimension(benchmark, algorithm, num_dims):
    relation = weather_relation(num_dims=num_dims, num_tuples=1200)
    benchmark.group = f"fig07 D={num_dims}"
    run_cubing(benchmark, relation, algorithm, min_sup=1, closed=True)
