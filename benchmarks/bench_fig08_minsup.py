"""Figure 8: closed iceberg cube computation w.r.t. min_sup.

Paper setting: T=1000K, C=100, S=0, D=8, M = 2..16 (QC-DFS has no iceberg mode,
so only the three C-Cubing variants are compared).
Scaled setting: T=1200, C=20, D=6, M swept at 2 and 16.
The paper's observation to check: the Star family leads at low min_sup and
C-Cubing(MM) closes the gap as min_sup grows.
"""

import pytest

from bench_helpers import run_cubing, synthetic_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array")


@pytest.mark.parametrize("min_sup", [2, 16])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig08_closed_iceberg_vs_minsup(benchmark, algorithm, min_sup):
    relation = synthetic_relation(1200, num_dims=6, cardinality=20, skew=0.0)
    benchmark.group = f"fig08 M={min_sup}"
    run_cubing(benchmark, relation, algorithm, min_sup=min_sup, closed=True)
