"""Figure 9: closed iceberg cube computation w.r.t. skew.

Paper setting: T=1000K, D=8, C=100, M=10, S = 0..3.
Scaled setting: T=1200, D=6, C=20, M=8, S swept at 0 and 3.
"""

import pytest

from bench_helpers import run_cubing, synthetic_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array")


@pytest.mark.parametrize("skew", [0.0, 3.0])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig09_closed_iceberg_vs_skew(benchmark, algorithm, skew):
    relation = synthetic_relation(1200, num_dims=6, cardinality=20, skew=skew)
    benchmark.group = f"fig09 S={skew}"
    run_cubing(benchmark, relation, algorithm, min_sup=8, closed=True)
