"""Figure 10: closed iceberg cube computation w.r.t. cardinality.

Paper setting: T=1000K, D=8, S=1, M=10, C = 10..10000.
Scaled setting: T=1200, D=6, S=1, M=8, C swept at 10 and 200.
The paper's observation to check: C-Cubing(StarArray) gains on C-Cubing(Star)
as the cardinality grows (multiway traversal beats multiway aggregation on
sparse data).
"""

import pytest

from bench_helpers import run_cubing, synthetic_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array")


@pytest.mark.parametrize("cardinality", [10, 200])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig10_closed_iceberg_vs_cardinality(benchmark, algorithm, cardinality):
    relation = synthetic_relation(1200, num_dims=6, cardinality=cardinality, skew=1.0)
    benchmark.group = f"fig10 C={cardinality}"
    run_cubing(benchmark, relation, algorithm, min_sup=8, closed=True)
