"""Figure 11: closed iceberg cube computation on the weather data w.r.t. min_sup.

Paper setting: weather data, D=8, M = 2..16.
Scaled setting: synthetic weather trace, 1500 reports, D=8, M swept at 2 and 16.
"""

import pytest

from bench_helpers import run_cubing, weather_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array")


@pytest.mark.parametrize("min_sup", [2, 16])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig11_weather_closed_iceberg_vs_minsup(benchmark, algorithm, min_sup):
    relation = weather_relation(num_dims=8, num_tuples=1500)
    benchmark.group = f"fig11 M={min_sup}"
    run_cubing(benchmark, relation, algorithm, min_sup=min_sup, closed=True)
