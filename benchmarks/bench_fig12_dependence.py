"""Figure 12: closed iceberg cube computation w.r.t. data dependence.

Paper setting: T=400K, D=8, C=20, S=0, M=16, dependence score R = 0..3,
comparing C-Cubing(MM) and C-Cubing(Star).
Scaled setting: T=800, D=7, C=8, M=8, R swept at 0 and 3.
The paper's observation to check: higher dependence favours the Star family
because more closed cells survive the iceberg condition, so closed pruning
removes real work.
"""

import pytest

from bench_helpers import run_cubing, synthetic_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star")


@pytest.mark.parametrize("dependence", [0.0, 3.0])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig12_runtime_vs_dependence(benchmark, algorithm, dependence):
    relation = synthetic_relation(
        800, num_dims=7, cardinality=8, skew=0.0, dependence=dependence
    )
    benchmark.group = f"fig12 R={dependence}"
    run_cubing(benchmark, relation, algorithm, min_sup=8, closed=True)
