"""Figure 13: iceberg vs closed iceberg cube size w.r.t. data dependence.

Paper setting: T=400K, D=8, C=20, S=0, M=16, R = 0..3; the quantity reported is
the size of the two cubes, not a runtime.  The benchmark times the oracle
computation of both cubes and records the cell counts as extra info; the
expected shape is that the closed cube shrinks relative to the iceberg cube as
dependence grows.
"""

import pytest

from repro.core.validate import reference_closed_cube, reference_iceberg_cube

from bench_helpers import synthetic_relation


@pytest.mark.parametrize("dependence", [0.0, 3.0])
def test_fig13_cube_sizes_vs_dependence(benchmark, dependence):
    relation = synthetic_relation(
        800, num_dims=7, cardinality=8, skew=0.0, dependence=dependence
    )
    benchmark.group = f"fig13 R={dependence}"

    def both_cubes():
        return (
            reference_iceberg_cube(relation, min_sup=8),
            reference_closed_cube(relation, min_sup=8),
        )

    iceberg, closed = benchmark.pedantic(both_cubes, rounds=1, iterations=1)
    benchmark.extra_info["iceberg_cells"] = len(iceberg)
    benchmark.extra_info["closed_cells"] = len(closed)
    benchmark.extra_info["iceberg_mb"] = round(iceberg.size_megabytes(), 5)
    benchmark.extra_info["closed_mb"] = round(closed.size_megabytes(), 5)
    assert len(closed) <= len(iceberg)
