"""Figure 14: iceberg vs closed iceberg cube size w.r.t. min_sup (R = 2).

Paper setting: T=400K, D=8, C=20, S=0, R=2, M = 1..64.  The expected shape is
that iceberg pruning dominates at high min_sup, so the two cube sizes converge,
while at low min_sup the closed cube is much smaller than the iceberg cube.
"""

import pytest

from repro.core.validate import reference_closed_cube, reference_iceberg_cube

from bench_helpers import synthetic_relation


@pytest.mark.parametrize("min_sup", [1, 16])
def test_fig14_cube_sizes_vs_minsup(benchmark, min_sup):
    relation = synthetic_relation(
        800, num_dims=7, cardinality=8, skew=0.0, dependence=2.0
    )
    benchmark.group = f"fig14 M={min_sup}"

    def both_cubes():
        return (
            reference_iceberg_cube(relation, min_sup=min_sup),
            reference_closed_cube(relation, min_sup=min_sup),
        )

    iceberg, closed = benchmark.pedantic(both_cubes, rounds=1, iterations=1)
    benchmark.extra_info["iceberg_cells"] = len(iceberg)
    benchmark.extra_info["closed_cells"] = len(closed)
    benchmark.extra_info["closed_to_iceberg_ratio"] = round(
        len(closed) / max(len(iceberg), 1), 4
    )
    assert len(closed) <= len(iceberg)
