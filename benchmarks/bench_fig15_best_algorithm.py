"""Figure 15: best algorithm over the (min_sup, dependence) grid.

Paper setting: T=400K, D=8, C=20, S=0, min_sup = 1..512, R = 1..3; the paper
plots which of C-Cubing(MM) / C-Cubing(Star) wins at each grid point.  Here
each benchmark measures one algorithm at one corner of the grid; comparing the
per-group results reproduces the winner map (the switching min_sup grows with
the dependence score).
"""

import pytest

from bench_helpers import run_cubing, synthetic_relation

ALGORITHMS = ("c-cubing-mm", "c-cubing-star")


@pytest.mark.parametrize("min_sup", [1, 16])
@pytest.mark.parametrize("dependence", [0.0, 3.0])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig15_best_algorithm_grid(benchmark, algorithm, dependence, min_sup):
    relation = synthetic_relation(
        600, num_dims=7, cardinality=8, skew=0.0, dependence=dependence
    )
    benchmark.group = f"fig15 R={dependence} M={min_sup}"
    run_cubing(benchmark, relation, algorithm, min_sup=min_sup, closed=True)
