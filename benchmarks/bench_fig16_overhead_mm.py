"""Figure 16: overhead of closed checking — C-Cubing(MM) vs MM-Cubing.

Paper setting: weather data, D=8, M = 1..32, output disabled; the paper shows
that the closedness-measure overhead of C-Cubing(MM) stays within ~10% of
MM-Cubing at high min_sup and that C-Cubing(MM) can even win at low min_sup
thanks to the closure short cut on minimum-size subspaces.
"""

import pytest

from bench_helpers import run_cubing, weather_relation


@pytest.mark.parametrize("min_sup", [1, 8])
@pytest.mark.parametrize(
    "algorithm,closed",
    [("c-cubing-mm", True), ("mm-cubing", False)],
    ids=["c-cubing-mm", "mm-cubing"],
)
def test_fig16_closed_checking_overhead(benchmark, algorithm, closed, min_sup):
    relation = weather_relation(num_dims=8, num_tuples=1500)
    benchmark.group = f"fig16 M={min_sup}"
    run_cubing(benchmark, relation, algorithm, min_sup=min_sup, closed=closed)
