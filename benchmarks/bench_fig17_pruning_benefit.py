"""Figure 17: benefit of closed pruning — C-Cubing(StarArray) vs StarArray.

Paper setting: weather data, D=8, M = 1..32, output disabled; the paper shows
the closed version running faster than the non-closed version, especially at
low min_sup, because Lemma 5 / Lemma 6 pruning removes whole subtrees and
child trees rather than just suppressing output.
"""

import pytest

from bench_helpers import run_cubing, weather_relation


@pytest.mark.parametrize("min_sup", [1, 8])
@pytest.mark.parametrize(
    "algorithm,closed",
    [("c-cubing-star-array", True), ("star-array", False)],
    ids=["c-cubing-star-array", "star-array"],
)
def test_fig17_closed_pruning_benefit(benchmark, algorithm, closed, min_sup):
    relation = weather_relation(num_dims=8, num_tuples=1500)
    benchmark.group = f"fig17 M={min_sup}"
    run_cubing(benchmark, relation, algorithm, min_sup=min_sup, closed=closed)
