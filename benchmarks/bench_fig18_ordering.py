"""Figure 18: dimension ordering strategies for C-Cubing(StarArray).

Paper setting: T=400K, D=8, four dimensions with cardinality 10 and four with
cardinality 1000, skews 0..3, min_sup = 1..256; the orderings compared are the
original schema order, cardinality-descending, and the paper's entropy-based
order.  Expected shape: entropy <= cardinality <= original runtime.
"""

import pytest

from bench_helpers import mixed_relation, run_cubing


@pytest.mark.parametrize("min_sup", [4, 16])
@pytest.mark.parametrize("ordering", ["original", "cardinality", "entropy"])
def test_fig18_dimension_ordering(benchmark, ordering, min_sup):
    relation = mixed_relation(num_tuples=1000, high_cardinality=200)
    benchmark.group = f"fig18 M={min_sup}"
    run_cubing(
        benchmark,
        relation,
        "c-cubing-star-array",
        min_sup=min_sup,
        closed=True,
        dimension_order=ordering,
    )
