"""Incremental-maintenance benchmark: append + merge vs full recompute.

Builds a served closed cube over a synthetic base relation (100k tuples by
default) whose first dimension is a chronological ``day`` column — the shape
of a real fact stream, where appended rows carry the *next* day's value —
then applies the same 10% batch of new fact rows two ways:

1. ``append``     — :meth:`repro.session.ServingCube.append`: delta cube over
   only the new tuples, merged in with aggregation-based closedness repair,
   live index updated in place, caches invalidated selectively;
2. ``recompute``  — a from-scratch :meth:`CubeSession.build` over the
   concatenated relation, the cost every append paid before the incremental
   subsystem existed.

The two results are verified cell-for-cell identical before any timing is
trusted.  The script prints a comparison table and exits non-zero when the
incremental path fails to beat the rebuild by ``--min-speedup`` (default 5x),
so it can act as a regression gate::

    PYTHONPATH=src python benchmarks/bench_incremental.py
    PYTHONPATH=src python benchmarks/bench_incremental.py --tuples 20000

``--json PATH`` additionally writes the measurements as a JSON report (the CI
workflow uploads these as artifacts).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from bench_helpers import write_report

from repro import CubeSession
from repro.datagen.synthetic import SyntheticConfig, generate_relation


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=100_000,
                        help="base relation size before the append")
    parser.add_argument("--dims", type=int, default=5,
                        help="total dimensions, including the leading day column")
    parser.add_argument("--cardinality", type=int, default=6)
    parser.add_argument("--days", type=int, default=10,
                        help="days in the base window (appends are day+1)")
    parser.add_argument("--skew", type=float, default=0.5)
    parser.add_argument("--append-fraction", type=float, default=0.10,
                        help="appended rows as a fraction of the base size")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail unless append beats recompute by this factor")
    parser.add_argument("--json", type=str, default=None,
                        help="also write the results to this JSON file")
    args = parser.parse_args(argv)

    num_append = max(1, int(args.tuples * args.append_fraction))
    total = args.tuples + num_append
    print(f"dataset: T={args.tuples} (+{num_append} appended) D={args.dims} "
          f"C={args.cardinality} S={args.skew} min_sup=1 closed")

    start = time.perf_counter()
    relation = generate_relation(SyntheticConfig.uniform(
        num_tuples=total, num_dims=args.dims - 1, cardinality=args.cardinality,
        skew=args.skew, seed=args.seed,
    ))
    # Raw rows with a leading chronological day column: base tuples spread
    # over --days days, appended tuples all carry the next day's value.  Both
    # paths dictionary-encode the same row sequence (the served cube encodes
    # the base prefix then grows append-only; the rebuild encodes it in one
    # pass), so first-appearance order — and hence every code — matches.
    def day_of(tid: int) -> str:
        if tid >= args.tuples:
            return f"day{args.days}"
        return f"day{tid * args.days // args.tuples}"

    all_rows = [
        (day_of(tid),) + tuple(
            relation.decode(dim, relation.columns[dim][tid])
            for dim in range(relation.num_dimensions)
        )
        for tid in range(total)
    ]
    base_rows, tail_rows = all_rows[: args.tuples], all_rows[args.tuples :]
    print(f"generated relation in {time.perf_counter() - start:.2f}s")

    start = time.perf_counter()
    serving = CubeSession.from_rows(base_rows).closed(min_sup=1).build()
    build_seconds = time.perf_counter() - start
    print(f"built base cube in {build_seconds:.2f}s "
          f"({len(serving)} cells, algorithm {serving.algorithm!r})")

    start = time.perf_counter()
    report = serving.append(tail_rows)
    append_seconds = time.perf_counter() - start
    print(f"append: {report.mode} via {report.algorithm!r} in "
          f"{append_seconds:.3f}s -> {len(serving)} cells")
    if report.merge is not None:
        print(f"        {report.merge.describe()}")

    start = time.perf_counter()
    rebuilt = CubeSession.from_rows(all_rows).closed(min_sup=1).build()
    recompute_seconds = time.perf_counter() - start
    print(f"full recompute in {recompute_seconds:.3f}s "
          f"({len(rebuilt)} cells, algorithm {rebuilt.algorithm!r})")

    if not serving.cube.same_cells(rebuilt.cube):
        print("FAIL: incremental result differs from the full recompute:")
        print(serving.cube.diff(rebuilt.cube))
        return 1
    print("verified: incremental cube == recomputed cube "
          f"({len(serving)} cells)")

    speedup = (recompute_seconds / append_seconds
               if append_seconds else float("inf"))
    print()
    print(f"{'path':<18}{'seconds':>10}{'cells':>10}{'vs rebuild':>12}")
    print("-" * 50)
    print(f"{'append (merge)':<18}{append_seconds:>10.3f}{len(serving):>10}"
          f"{speedup:>11.1f}x")
    print(f"{'full recompute':<18}{recompute_seconds:>10.3f}{len(rebuilt):>10}"
          f"{1.0:>11.1f}x")

    write_report(
        args.json,
        "bench_incremental",
        {
            "tuples": args.tuples,
            "appended": num_append,
            "dims": args.dims,
            "cardinality": args.cardinality,
            "skew": args.skew,
            "seed": args.seed,
        },
        passed=speedup >= args.min_speedup,
        build_seconds=round(build_seconds, 6),
        append_seconds=round(append_seconds, 6),
        recompute_seconds=round(recompute_seconds, 6),
        append_mode=report.mode,
        append_algorithm=report.algorithm,
        cells=len(serving),
        speedup=round(speedup, 3),
        min_speedup=args.min_speedup,
    )

    if speedup < args.min_speedup:
        print(f"FAIL: incremental append is only {speedup:.1f}x the rebuild "
              f"(required {args.min_speedup:.1f}x)")
        return 1
    print(f"OK: incremental append is {speedup:.1f}x the full rebuild "
          f"(required {args.min_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
