"""Tail-latency SLO gate: open-loop load against the TCP serving stack.

Every earlier gate measures closed-loop throughput ratios — how fast a fixed
workload drains.  This one measures what a serving system is actually judged
on: **latency at a controlled offered load**.  It builds a catalog cube,
starts the full production path (:class:`repro.server.AsyncCubeServer`
behind :func:`repro.server.tcp.serve_tcp`), and drives it with the
:mod:`repro.loadgen` open-loop replayer: mixed traffic at independently
controlled Poisson rates — queries at ``--rate``, appends and compactions
as slow fixed trickles (``--append-rate`` / ``--compact-rate``, since a
copy-on-publish merge is a heavyweight batch operation whose sane arrival
rate does not scale with query traffic).  Per-request latency is recorded
from each request's *scheduled* arrival into log-bucketed histograms — so
a server stall inflates the recorded tail instead of silently suppressing
offered load (no coordinated omission).

The gate: at the pinned sub-saturation rate, the query class's client-side
p99 must stay within ``--slo-p99-ms`` and the run must complete with zero
errors of any class (protocol, transport, timeout).  The SLO has to absorb
append interference: a copy-on-publish merge runs ~1–2 s at the full size
and queries arriving during it queue behind the GIL, so the honest p99 of
the mixed stream is hundreds of milliseconds even though the query-only
median is ~2 ms.  Defaults are the documented full-size configuration;
CI's PR job runs a reduced size (shorter window, proportionally denser
maintenance trickle so the window still contains an append)::

    PYTHONPATH=src python benchmarks/bench_load_slo.py
    PYTHONPATH=src python benchmarks/bench_load_slo.py \\
        --tuples 20000 --rate 150 --duration 4 \\
        --append-rate 0.25 --compact-rate 0.1 --slo-p99-ms 250

``--sweep 100,200,400,800`` additionally walks the rate axis after the
gated run and prints the saturation-knee table (never gated — it exists to
tell you whether the pinned rate still sits comfortably below the knee).
``--json PATH`` writes the :func:`bench_helpers.write_report` envelope that
``check_gates.py`` validates and merges into ``bench-trajectory.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import tempfile
import time
from typing import Dict, List, Sequence

from bench_helpers import write_report

from repro import CubeCatalog
from repro.datagen.synthetic import SyntheticConfig, generate_relation
from repro.loadgen import (
    LineConnection,
    LoadResult,
    OpenLoopReplayer,
    find_knee,
    render_sweep,
    serving_mix,
    sweep_rates,
)
from repro.server import AsyncCubeServer, serve_tcp

CUBE = "traffic"


def build_rows(args) -> List[tuple]:
    """Raw rows for the served cube (decoded values, catalog-ready)."""
    relation = generate_relation(SyntheticConfig.uniform(
        num_tuples=args.tuples, num_dims=args.dims,
        cardinality=args.cardinality, skew=args.skew, seed=args.seed,
    ))
    return [
        tuple(
            relation.decode(dim, relation.columns[dim][tid])
            for dim in range(relation.num_dimensions)
        )
        for tid in range(relation.num_tuples)
    ]


def distinct_values(rows: Sequence[tuple]) -> Dict[str, List[object]]:
    num_dims = len(rows[0])
    return {
        f"d{dim}": sorted({row[dim] for row in rows})
        for dim in range(num_dims)
    }


async def open_connections(
    port: int, args
) -> Dict[str, List[LineConnection]]:
    """Per-class connection pools: queries never share a pipelined socket
    with a multi-hundred-ms append, so append service time cannot leak
    into query latency as head-of-line blocking."""
    async def pool(count: int) -> List[LineConnection]:
        return [
            await LineConnection.open("127.0.0.1", port) for _ in range(count)
        ]

    return {
        "query": await pool(args.connections),
        "append": await pool(2),
        "compact": await pool(1),
    }


async def close_connections(pools: Dict[str, List[LineConnection]]) -> None:
    for connections in pools.values():
        for connection in connections:
            await connection.close()


def class_mix(values, args, *, klass: str, seed: int):
    """A single-class workload (so each class runs at its own rate)."""
    weights = {"query": 0.0, "append": 0.0, "compact": 0.0}
    weights[klass] = 1.0
    return serving_mix(
        CUBE, values,
        query_weight=weights["query"],
        append_weight=weights["append"],
        compact_weight=weights["compact"],
        seed=seed,
    )


async def run_load(args, values) -> Dict[str, object]:
    """Serve + replay inside one event loop; returns the collected views."""
    catalog = CubeCatalog(args.catalog_dir)
    async with AsyncCubeServer(
        catalog,
        query_workers=4,
        maintenance_workers=2,
        request_timeout=args.request_timeout,
    ) as server:
        tcp = await serve_tcp(server, port=0)
        port = tcp.sockets[0].getsockname()[1]
        pools = await open_connections(port, args)
        try:
            def replayer(klass: str, rate: float, duration: float,
                         seed_shift: int = 0) -> OpenLoopReplayer:
                seed = args.seed + seed_shift
                return OpenLoopReplayer(
                    pools,
                    class_mix(values, args, klass=klass, seed=seed),
                    rate=rate,
                    duration=duration,
                    seed=seed,
                    request_timeout=args.request_timeout,
                )

            async def offer(query_rate: float, duration: float,
                            seed_shift: int = 0) -> LoadResult:
                """One mixed offering: each class at its own Poisson rate."""
                replayers = [
                    replayer("query", query_rate, duration, seed_shift)
                ]
                if args.append_rate > 0:
                    replayers.append(replayer(
                        "append", args.append_rate, duration, seed_shift + 1
                    ))
                if args.compact_rate > 0:
                    replayers.append(replayer(
                        "compact", args.compact_rate, duration, seed_shift + 2
                    ))
                results = await asyncio.gather(
                    *(each.run() for each in replayers)
                )
                return LoadResult.combine(list(results))

            # Warm-up at half rate: connection setup, thread-pool spin-up,
            # and first-touch cache resolution are not what the SLO judges.
            await replayer(
                "query", max(1.0, args.rate / 2), min(2.0, args.duration), 99
            ).run()

            measured = await offer(args.rate, args.duration)
            stats = server.stats()

            knee = None
            if args.sweep:
                rates = [float(rate) for rate in args.sweep.split(",")]
                points = await sweep_rates(
                    lambda rate: OpenLoopReplayer(
                        pools,
                        class_mix(values, args, klass="query",
                                  seed=args.seed + 7),
                        rate=rate,
                        duration=args.duration,
                        seed=args.seed + 7,
                        request_timeout=args.request_timeout,
                    ),
                    rates,
                    settle=lambda: asyncio.sleep(0.5),
                )
                knee = find_knee(
                    points, slo_seconds=args.slo_p99_ms / 1000.0
                )
        finally:
            await close_connections(pools)
            tcp.close()
            await tcp.wait_closed()
    return {"result": measured, "server_stats": stats, "knee": knee}


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=100_000,
                        help="base relation size the cube serves")
    parser.add_argument("--dims", type=int, default=5)
    parser.add_argument("--cardinality", type=int, default=8)
    parser.add_argument("--skew", type=float, default=0.5)
    parser.add_argument("--rate", type=float, default=150.0,
                        help="offered query load in requests/second (Poisson)")
    parser.add_argument("--append-rate", type=float, default=0.1,
                        help="offered append trickle in appends/second "
                        "(each append is a heavyweight copy-on-publish merge)")
    parser.add_argument("--compact-rate", type=float, default=0.05,
                        help="offered auto-compaction checks per second")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds of offered load in the measured run")
    parser.add_argument("--connections", type=int, default=8,
                        help="query-class TCP connections")
    parser.add_argument("--request-timeout", type=float, default=15.0,
                        help="per-request deadline, client and server side")
    parser.add_argument("--slo-p99-ms", type=float, default=750.0,
                        help="the gate: query-class p99 must stay within this")
    parser.add_argument("--sweep", type=str, default=None,
                        help="comma-separated extra rates to sweep for the "
                        "saturation-knee table (informational, never gated)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--json", type=str, default=None,
                        help="also write the results to this JSON file")
    args = parser.parse_args(argv)

    rows = build_rows(args)
    values = distinct_values(rows)
    print(f"dataset: T={args.tuples} D={args.dims} C={args.cardinality} "
          f"S={args.skew} min_sup=1 closed")

    with tempfile.TemporaryDirectory() as directory:
        args.catalog_dir = os.path.join(directory, "catalog")
        catalog = CubeCatalog(args.catalog_dir)
        start = time.perf_counter()
        serving = catalog.create(CUBE, rows)
        print(f"built base cube in {time.perf_counter() - start:.2f}s "
              f"({len(serving)} cells, algorithm {serving.algorithm!r})")
        del catalog, serving

        views = asyncio.run(run_load(args, values))

    result = views["result"]
    stats = views["server_stats"]
    report_body = result.to_report()
    print(f"\noffered {result.offered_rate:.0f}/s for {args.duration:.0f}s: "
          f"sent {result.sent}, completed {result.completed}, "
          f"errors {result.errors} "
          f"(achieved {result.achieved_rate:.0f}/s)")
    print(f"{'class':<10}{'sent':>7}{'p50':>10}{'p99':>10}{'p999':>10}"
          f"{'max':>10}{'errors':>8}")
    print("-" * 65)
    for name, class_report in report_body["classes"].items():
        errors = (class_report["protocol_errors"]
                  + class_report["transport_errors"]
                  + class_report["timeouts"])
        print(f"{name:<10}{class_report['sent']:>7}"
              f"{class_report['p50_ms']:>9.1f}m{class_report['p99_ms']:>9.1f}m"
              f"{class_report['p999_ms']:>9.1f}m{class_report['max_ms']:>9.1f}m"
              f"{errors:>8}")

    server_query = stats["latency"]["query"]
    server_append = stats["latency"]["append"]
    hwm = max(
        (cube.get("pending_hwm", 0) for cube in stats["cubes"].values()),
        default=0,
    )
    print(f"\nserver-side view: query p99 {server_query['p99_ms']:.1f}ms "
          f"(client-side includes the network + loop on top), append p99 "
          f"{server_append['p99_ms']:.1f}ms, queue-depth high-water {hwm}, "
          f"timeouts {stats['counters']['timeouts']}")

    if views["knee"] is not None:
        print("\noffered-load sweep:")
        print(render_sweep(views["knee"]))

    def class_p99_ms(name: str) -> float:
        stats_for = result.classes.get(name)
        if stats_for is None or len(stats_for.histogram) == 0:
            return 0.0
        return round(stats_for.histogram.percentile(99) * 1000.0, 3)

    query = result.classes["query"]
    query_p99_ms = query.histogram.percentile(99) * 1000.0
    passed = query_p99_ms <= args.slo_p99_ms and result.errors == 0

    write_report(
        args.json,
        "bench_load_slo",
        {
            "tuples": args.tuples,
            "dims": args.dims,
            "cardinality": args.cardinality,
            "skew": args.skew,
            "rate": args.rate,
            "append_rate": args.append_rate,
            "compact_rate": args.compact_rate,
            "duration": args.duration,
            "connections": args.connections,
            "request_timeout": args.request_timeout,
            "seed": args.seed,
        },
        passed=passed,
        slo_p99_ms=args.slo_p99_ms,
        offered_rate=round(result.offered_rate, 1),
        achieved_rate=round(result.achieved_rate, 1),
        sent=result.sent,
        completed=result.completed,
        errors=result.errors,
        query_p50_ms=round(query.histogram.percentile(50) * 1000.0, 3),
        query_p99_ms=round(query_p99_ms, 3),
        query_p999_ms=round(query.histogram.percentile(99.9) * 1000.0, 3),
        append_p99_ms=class_p99_ms("append"),
        compact_p99_ms=class_p99_ms("compact"),
        server_query_p99_ms=server_query["p99_ms"],
        server_append_p99_ms=server_append["p99_ms"],
        queue_depth_hwm=hwm,
        server_timeouts=stats["counters"]["timeouts"],
    )

    if not passed:
        print(f"\nFAIL: query p99 {query_p99_ms:.1f}ms vs SLO "
              f"{args.slo_p99_ms:.0f}ms with {result.errors} errors at "
              f"{args.rate:.0f}/s offered")
        return 1
    print(f"\nOK: query p99 {query_p99_ms:.1f}ms within the "
          f"{args.slo_p99_ms:.0f}ms SLO at {args.rate:.0f}/s offered, "
          "zero errors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
