"""Serving-throughput benchmark: indexed closure queries vs naive scans.

Materialises a closed cube over a synthetic relation (100k tuples by
default), then answers the same point-query workload three ways:

1. ``scan``    — :meth:`CubeResult.closure_query_scan`, the seed repo's
   linear scan over every materialised cell (the naive per-query cost);
2. ``index``   — :class:`repro.query.QueryEngine` with the cache disabled,
   isolating the inverted-index speedup;
3. ``cached``  — the same engine with its LRU cache enabled, on a skewed
   (hot-spot) replay of the workload, which is the realistic serving shape.

The script prints a throughput table and exits non-zero when the indexed
engine fails to beat the scan baseline by ``--min-speedup`` (default 10x),
so it can act as a regression gate::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py
    PYTHONPATH=src python benchmarks/bench_query_throughput.py --tuples 20000

The scan baseline is timed on a subsample of the workload (``--scan-queries``)
because it is orders of magnitude slower; its per-query cost is what the
reported throughput extrapolates from.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Sequence, Tuple

from bench_helpers import write_report

from repro import compute_closed_cube, open_query_engine
from repro.core.cell import Cell
from repro.core.cube import CubeResult
from repro.core.relation import Relation
from repro.datagen.synthetic import SyntheticConfig, generate_relation


def build_workload(
    cube: CubeResult, num_queries: int, seed: int
) -> List[Cell]:
    """A point-query mix anchored on materialised cells.

    Each query takes a random materialised cell and stars out a random subset
    of its dimensions — the shape a drill-across dashboard produces.  A tenth
    of the queries are random value combinations, most of which miss.
    """
    rng = random.Random(seed)
    cells = list(cube)
    num_dims = cube.num_dims
    queries: List[Cell] = []
    for _ in range(num_queries):
        if cells and rng.random() < 0.9:
            base = list(cells[rng.randrange(len(cells))])
            for dim in range(num_dims):
                if rng.random() < 0.4:
                    base[dim] = None
            queries.append(tuple(base))
        else:
            queries.append(
                tuple(
                    rng.randrange(50) if rng.random() < 0.5 else None
                    for _ in range(num_dims)
                )
            )
    return queries


def skewed_replay(queries: Sequence[Cell], factor: int, seed: int) -> List[Cell]:
    """Replay the workload ``factor`` times with a hot-spot distribution.

    20% of the distinct queries receive 80% of the traffic — the regime the
    LRU cache is built for.
    """
    rng = random.Random(seed + 1)
    hot = list(queries[: max(1, len(queries) // 5)])
    replay: List[Cell] = []
    for _ in range(len(queries) * factor):
        source = hot if rng.random() < 0.8 else queries
        replay.append(source[rng.randrange(len(source))])
    return replay


def time_queries(answer_one, queries: Sequence[Cell]) -> Tuple[float, int]:
    """Total seconds and number of found answers for one serving mode."""
    found = 0
    start = time.perf_counter()
    for cell in queries:
        if answer_one(cell) is not None:
            found += 1
    return time.perf_counter() - start, found


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=100_000)
    parser.add_argument("--dims", type=int, default=6)
    parser.add_argument("--cardinality", type=int, default=10)
    parser.add_argument("--skew", type=float, default=1.0)
    parser.add_argument("--min-sup", type=int, default=100)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--scan-queries", type=int, default=300,
                        help="scan-baseline subsample size")
    parser.add_argument("--replay-factor", type=int, default=5,
                        help="hot-spot replay length multiplier for the cached run")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help="fail unless index beats scan by this factor")
    parser.add_argument("--json", type=str, default=None,
                        help="also write the results to this JSON file")
    args = parser.parse_args(argv)

    print(f"dataset: T={args.tuples} D={args.dims} C={args.cardinality} "
          f"S={args.skew} min_sup={args.min_sup}")
    start = time.perf_counter()
    relation: Relation = generate_relation(SyntheticConfig.uniform(
        num_tuples=args.tuples, num_dims=args.dims, cardinality=args.cardinality,
        skew=args.skew, seed=args.seed,
    ))
    print(f"generated relation in {time.perf_counter() - start:.2f}s")

    start = time.perf_counter()
    cube = compute_closed_cube(relation, min_sup=args.min_sup)
    print(f"materialised closed cube in {time.perf_counter() - start:.2f}s "
          f"({len(cube)} cells)")

    start = time.perf_counter()
    engine = open_query_engine(cube, cache_size=0)
    print(f"built inverted index in {time.perf_counter() - start:.2f}s "
          f"({engine.index.postings_size()} posting entries)")

    queries = build_workload(cube, args.queries, args.seed)

    scan_sample = queries[: min(args.scan_queries, len(queries))]
    scan_seconds, scan_found = time_queries(cube.closure_query_scan, scan_sample)
    scan_qps = len(scan_sample) / scan_seconds if scan_seconds else float("inf")

    def indexed(cell):
        answer = engine.point(cell)
        return answer if answer.found else None

    index_seconds, index_found = time_queries(indexed, queries)
    index_qps = len(queries) / index_seconds if index_seconds else float("inf")

    cached_engine = open_query_engine(cube, cache_size=4096)

    def cached(cell):
        answer = cached_engine.point(cell)
        return answer if answer.found else None

    replay = skewed_replay(queries, args.replay_factor, args.seed)
    cached_seconds, _ = time_queries(cached, replay)
    cached_qps = len(replay) / cached_seconds if cached_seconds else float("inf")

    speedup = index_qps / scan_qps if scan_qps else float("inf")
    cached_speedup = cached_qps / scan_qps if scan_qps else float("inf")
    hit_rate = cached_engine.cache.hit_rate

    print()
    print(f"{'mode':<22}{'queries':>9}{'seconds':>10}{'qps':>12}{'vs scan':>10}")
    print("-" * 63)
    print(f"{'scan (naive)':<22}{len(scan_sample):>9}{scan_seconds:>10.3f}"
          f"{scan_qps:>12.0f}{1.0:>9.1f}x")
    print(f"{'index (no cache)':<22}{len(queries):>9}{index_seconds:>10.3f}"
          f"{index_qps:>12.0f}{speedup:>9.1f}x")
    print(f"{'index + LRU cache':<22}{len(replay):>9}{cached_seconds:>10.3f}"
          f"{cached_qps:>12.0f}{cached_speedup:>9.1f}x")
    print()
    print(f"answers found: scan {scan_found}/{len(scan_sample)}, "
          f"index {index_found}/{len(queries)}; cache hit rate {hit_rate:.1%}")

    write_report(
        args.json,
        "bench_query_throughput",
        {"tuples": args.tuples, "dims": args.dims,
         "cardinality": args.cardinality, "min_sup": args.min_sup,
         "queries": args.queries, "seed": args.seed},
        passed=speedup >= args.min_speedup,
        scan_qps=round(scan_qps, 2),
        index_qps=round(index_qps, 2),
        cached_qps=round(cached_qps, 2),
        speedup=round(speedup, 3),
        cached_speedup=round(cached_speedup, 3),
        cache_hit_rate=round(hit_rate, 4),
        min_speedup=args.min_speedup,
    )

    if speedup < args.min_speedup:
        print(f"FAIL: indexed serving is only {speedup:.1f}x the scan baseline "
              f"(required {args.min_speedup:.1f}x)")
        return 1
    print(f"OK: indexed serving is {speedup:.1f}x the scan baseline "
          f"(required {args.min_speedup:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
