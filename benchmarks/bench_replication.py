"""Replication gate: leader + 2 followers under the bench_load_slo workload.

The replicated tier's contract has two halves, and this gate measures both:

* **bounded lag** — while the leader absorbs the bench_load_slo append
  trickle (each append a copy-on-publish merge journaled into the chain),
  both followers must stay within sight of the tip: once the offered load
  stops, they must report ``caught_up`` within ``--max-catchup-seconds``
  (the ``catchup_seconds`` actually taken is the trajectory metric);
* **read agreement** — after catch-up, a deterministic panel of point,
  rollup, and slice queries is answered by the leader and by every follower
  over the real TCP path, and the answers must agree **cell for cell**.
  A single divergent count fails the gate: followers replay the same
  journal the leader's crash recovery replays, so any disagreement is a
  replication bug, not noise.

Topology: one process, three TCP endpoints — the leader
(:class:`repro.server.AsyncCubeServer` over the writing catalog) and two
read-only followers, each with its *own* :class:`~repro.catalog.CubeCatalog`
instance and :class:`~repro.replication.ReplicationTailer` over the shared
directory (the separate catalog instances are what make the manifest, not
shared memory, the coordination point).  The leader holds the cube's
single-writer lease for the whole run.  Query traffic round-robins over the
follower endpoints through the replayer's per-class connection pools; the
append trickle goes only to the leader — exactly the
:class:`~repro.replication.ReplicaSet` routing policy, expressed as pools.

Defaults are the documented full-size configuration; CI's PR job runs a
reduced size::

    PYTHONPATH=src python benchmarks/bench_replication.py
    PYTHONPATH=src python benchmarks/bench_replication.py \\
        --tuples 20000 --rate 60 --duration 4 --append-rate 0.5

``--json PATH`` writes the :func:`bench_helpers.write_report` envelope that
``check_gates.py`` validates and merges into ``bench-trajectory.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import tempfile
import time
from typing import Dict, List, Sequence

from bench_helpers import write_report
from bench_load_slo import build_rows, class_mix, distinct_values

from repro import CubeCatalog
from repro.loadgen import LineConnection, LoadResult, OpenLoopReplayer, open_pools
from repro.replication import ReplicationTailer, acquire
from repro.server import AsyncCubeServer, serve_tcp

CUBE = "traffic"


async def start_follower(args) -> Dict[str, object]:
    """One follower endpoint: its own catalog instance + tailer + server."""
    tailer = ReplicationTailer(
        args.catalog_dir, [CUBE], poll_interval=args.poll_interval
    )
    tailer.start()
    server = AsyncCubeServer(
        CubeCatalog(args.catalog_dir),
        query_workers=2,
        request_timeout=args.request_timeout,
        role="follower",
        tailer=tailer,
    )
    await server.start()
    tcp = await serve_tcp(server, port=0)
    return {
        "tailer": tailer,
        "server": server,
        "tcp": tcp,
        "port": tcp.sockets[0].getsockname()[1],
    }


async def stop_follower(follower: Dict[str, object]) -> None:
    follower["tcp"].close()
    await follower["tcp"].wait_closed()
    await follower["server"].stop()
    follower["tailer"].stop()


def verification_specs(values: Dict[str, List[object]]) -> List[Dict[str, object]]:
    """The deterministic read panel: every single-dimension point, one
    rollup per dimension, and one two-dimension slice."""
    specs: List[Dict[str, object]] = []
    dims = sorted(values)
    for dim in dims:
        for value in values[dim]:
            specs.append({"op": "point", "cell": {dim: value}})
        specs.append({"op": "rollup", "dims": [dim]})
    if len(dims) >= 2:
        specs.append({
            "op": "slice",
            "fixed": {dims[0]: values[dims[0]][0]},
            "group_by": [dims[1]],
        })
    return specs


async def verify_agreement(
    leader_conn: LineConnection,
    follower_conns: Sequence[LineConnection],
    specs: List[Dict[str, object]],
    timeout: float,
) -> Dict[str, int]:
    """Ask everyone the same panel; count cell-for-cell disagreements."""
    request = {"op": "query_many", "cube": CUBE, "q": specs}
    expected = await leader_conn.request(request, timeout=timeout)
    assert expected.get("ok"), expected
    mismatches = 0
    compared = 0
    for conn in follower_conns:
        answered = await conn.request(request, timeout=timeout)
        assert answered.get("ok"), answered
        for spec, want, got in zip(
            specs, expected["result"], answered["result"]
        ):
            compared += 1
            if want != got:
                mismatches += 1
                print(f"MISMATCH on {spec}: leader={want!r} follower={got!r}")
    return {"compared": compared, "mismatches": mismatches}


async def run_replicated(args, values) -> Dict[str, object]:
    catalog = CubeCatalog(args.catalog_dir)
    lease = acquire(args.catalog_dir, CUBE, "bench-leader", ttl=3600.0)
    followers: List[Dict[str, object]] = []
    max_lag_bytes = 0
    async with AsyncCubeServer(
        catalog,
        query_workers=2,
        maintenance_workers=2,
        request_timeout=args.request_timeout,
    ) as leader:
        leader_tcp = await serve_tcp(leader, port=0)
        leader_port = leader_tcp.sockets[0].getsockname()[1]
        try:
            for _ in range(args.followers):
                followers.append(await start_follower(args))
            # The ReplicaSet routing policy as replayer pools: read class
            # round-robins over the follower endpoints, append class goes
            # only to the leader.
            query_endpoints = [
                ("127.0.0.1", follower["port"])
                for follower in followers
                for _ in range(max(1, args.connections // args.followers))
            ]
            pools = await open_pools({
                "query": query_endpoints,
                "append": [("127.0.0.1", leader_port)] * 2,
            })
            verify_conns = await open_pools({
                "leader": [("127.0.0.1", leader_port)],
                "followers": [
                    ("127.0.0.1", follower["port"]) for follower in followers
                ],
            })
            try:
                def replayer(klass: str, rate: float,
                             seed_shift: int = 0) -> OpenLoopReplayer:
                    seed = args.seed + seed_shift
                    return OpenLoopReplayer(
                        pools,
                        class_mix(values, args, klass=klass, seed=seed),
                        rate=rate,
                        duration=args.duration,
                        seed=seed,
                        request_timeout=args.request_timeout,
                    )

                async def sample_lag() -> None:
                    nonlocal max_lag_bytes
                    while True:
                        for follower in followers:
                            lag = follower["tailer"].lag(CUBE)
                            max_lag_bytes = max(
                                max_lag_bytes, int(lag["journal_bytes"])
                            )
                        await asyncio.sleep(0.2)

                sampler = asyncio.get_running_loop().create_task(sample_lag())
                results = await asyncio.gather(
                    replayer("query", args.rate).run(),
                    replayer("append", args.append_rate, 1).run(),
                )
                sampler.cancel()
                measured = LoadResult.combine(list(results))

                # Catch-up: from load-stop to every follower at the tip.
                catchup_start = time.perf_counter()
                caught_up = True
                try:
                    await asyncio.gather(*(
                        asyncio.get_running_loop().run_in_executor(
                            None,
                            lambda f=follower: f["tailer"].wait_caught_up(
                                args.max_catchup_seconds
                            ),
                        )
                        for follower in followers
                    ))
                except Exception as exc:
                    caught_up = False
                    print(f"CATCH-UP FAILED: {exc}")
                catchup_seconds = time.perf_counter() - catchup_start

                agreement = await verify_agreement(
                    verify_conns["leader"][0],
                    verify_conns["followers"],
                    verification_specs(values),
                    args.request_timeout,
                )
                follower_stats = [
                    follower["tailer"].stats()[CUBE] for follower in followers
                ]
            finally:
                for pool_set in (pools, verify_conns):
                    for connections in pool_set.values():
                        for connection in connections:
                            await connection.close()
        finally:
            for follower in followers:
                await stop_follower(follower)
            leader_tcp.close()
            await leader_tcp.wait_closed()
    return {
        "result": measured,
        "caught_up": caught_up,
        "catchup_seconds": catchup_seconds,
        "agreement": agreement,
        "max_lag_bytes": max_lag_bytes,
        "follower_stats": follower_stats,
        "lease_epoch": lease.epoch,
    }


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=100_000,
                        help="base relation size the cube serves")
    parser.add_argument("--dims", type=int, default=5)
    parser.add_argument("--cardinality", type=int, default=8)
    parser.add_argument("--skew", type=float, default=0.5)
    parser.add_argument("--followers", type=int, default=2,
                        help="read-only follower endpoints to attach")
    parser.add_argument("--rate", type=float, default=100.0,
                        help="offered query load over the followers "
                        "(requests/second, Poisson)")
    parser.add_argument("--append-rate", type=float, default=0.1,
                        help="offered append trickle to the leader — the "
                        "bench_load_slo maintenance rate the followers "
                        "must keep up with")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds of offered load")
    parser.add_argument("--connections", type=int, default=8,
                        help="query-class TCP connections (split across "
                        "the followers)")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        help="follower journal poll interval in seconds")
    parser.add_argument("--max-catchup-seconds", type=float, default=10.0,
                        help="the gate: every follower must reach the chain "
                        "tip within this many seconds of load stop")
    parser.add_argument("--request-timeout", type=float, default=15.0,
                        help="per-request deadline, client and server side")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--json", type=str, default=None,
                        help="also write the results to this JSON file")
    args = parser.parse_args(argv)

    rows = build_rows(args)
    values = distinct_values(rows)
    print(f"dataset: T={args.tuples} D={args.dims} C={args.cardinality} "
          f"S={args.skew} min_sup=1 closed; followers={args.followers}")

    with tempfile.TemporaryDirectory() as directory:
        args.catalog_dir = os.path.join(directory, "catalog")
        catalog = CubeCatalog(args.catalog_dir)
        start = time.perf_counter()
        serving = catalog.create(CUBE, rows)
        print(f"built base cube in {time.perf_counter() - start:.2f}s "
              f"({len(serving)} cells, algorithm {serving.algorithm!r})")
        del catalog, serving

        views = asyncio.run(run_replicated(args, values))

    result = views["result"]
    agreement = views["agreement"]
    print(f"\noffered load: sent {result.sent}, completed {result.completed}, "
          f"errors {result.errors}")
    for index, stats in enumerate(views["follower_stats"]):
        print(f"follower {index}: rows={stats['rows']} "
              f"batches_applied={stats['batches_applied']} "
              f"snapshot_loads={stats['snapshot_loads']} "
              f"rebootstraps={stats['rebootstraps']} "
              f"lag={stats['replica_lag']}")
    print(f"max journal lag observed: {views['max_lag_bytes']} bytes")
    print(f"catch-up after load stop: {views['catchup_seconds']:.2f}s "
          f"(bound {args.max_catchup_seconds:.0f}s, "
          f"caught_up={views['caught_up']})")
    print(f"read agreement: {agreement['compared']} answers compared, "
          f"{agreement['mismatches']} mismatches")

    passed = (
        views["caught_up"]
        and agreement["mismatches"] == 0
        and agreement["compared"] > 0
        and result.errors == 0
        and args.followers >= 2
    )

    write_report(
        args.json,
        "bench_replication",
        {
            "tuples": args.tuples,
            "dims": args.dims,
            "cardinality": args.cardinality,
            "skew": args.skew,
            "followers": args.followers,
            "rate": args.rate,
            "append_rate": args.append_rate,
            "duration": args.duration,
            "connections": args.connections,
            "poll_interval": args.poll_interval,
            "request_timeout": args.request_timeout,
            "seed": args.seed,
        },
        passed=passed,
        max_catchup_seconds=args.max_catchup_seconds,
        caught_up=views["caught_up"],
        catchup_seconds=round(views["catchup_seconds"], 3),
        max_lag_bytes=views["max_lag_bytes"],
        compared=agreement["compared"],
        mismatches=agreement["mismatches"],
        sent=result.sent,
        completed=result.completed,
        errors=result.errors,
        lease_epoch=views["lease_epoch"],
        follower_rows=[
            stats["rows"] for stats in views["follower_stats"]
        ],
        follower_rebootstraps=[
            stats["rebootstraps"] for stats in views["follower_stats"]
        ],
    )

    if not passed:
        print("\nFAIL: the replicated tier violated its contract "
              "(see the lines above)")
        return 1
    print(f"\nOK: {args.followers} followers stayed within "
          f"{args.max_catchup_seconds:.0f}s of the tip and agreed with the "
          f"leader on all {agreement['compared']} answers, zero errors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
