"""Rollup-router benchmark: hot-shape slices served from materialised grains.

Builds a closed cube over a synthetic star-schema relation (100k tuples by
default: two high-cardinality "dashboard" dimensions plus four narrow ones),
replays a skewed slice workload — 80% of the traffic on five hot shapes —
to populate the engine's shape recorder, lets the advisor materialise the
hot grains, then times the identical seeded hot-shape stream two ways:

1. ``engine`` — the closed-cube engine alone (router detached), the
   posting-intersection + closure-resolution path every query takes today;
2. ``routed`` — the same engine with the rollup router installed, so hot
   shapes are answered from the flat pre-aggregated tables.

The hot key space (>2000 distinct slice keys) deliberately exceeds the
engine's slice cache, so the baseline measures real engine work, not cache
replay.  The gate fails unless routed throughput beats the engine by
``--min-speedup`` (default 5x), every routed answer matches the engine
cell-for-cell, and answers stay exact after an incremental append
(``stale_reads`` must be 0)::

    PYTHONPATH=src python benchmarks/bench_rollup_router.py
    PYTHONPATH=src python benchmarks/bench_rollup_router.py \
        --tuples 20000 --min-sup 1 --min-speedup 3
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from typing import Dict, List, Sequence, Tuple

from bench_helpers import write_report

from repro import Avg, CubeSession, Sum

#: The five hot shapes: (fixed dims, group-by dim).  Their grains are what
#: the advisor should discover and materialise.
HOT_SHAPES: Tuple[Tuple[Tuple[int, ...], int], ...] = (
    ((0,), 1),
    ((1,), 2),
    ((0, 1), 2),
    ((2,), 3),
    ((0, 3), 1),
)

#: Cold shapes: the 20% tail the router must fall back (or stay exact) on.
COLD_SHAPES: Tuple[Tuple[Tuple[int, ...], int], ...] = (
    ((4,), 5),
    ((3,), 4),
    ((5,), 0),
)

Query = Tuple[Dict[int, int], Tuple[int, ...]]


def build_rows(tuples: int, card_hot: int, card_cold: int, seed: int):
    rng = random.Random(seed)
    cards = (card_hot, card_hot, card_cold, card_cold, card_cold, card_cold)
    return [
        tuple(rng.randrange(card) for card in cards)
        + (float(rng.randrange(1, 100)),)
        for _ in range(tuples)
    ]


def build_stream(
    relation, count: int, hot_fraction: float, seed: int
) -> List[Query]:
    """A seeded slice stream: ``hot_fraction`` of it on the five hot shapes."""
    rng = random.Random(seed)
    cards = [len(relation.encoder(dim)) for dim in range(6)]
    stream: List[Query] = []
    for _ in range(count):
        shapes = HOT_SHAPES if rng.random() < hot_fraction else COLD_SHAPES
        fixed_dims, group_dim = shapes[rng.randrange(len(shapes))]
        fixed = {dim: rng.randrange(cards[dim]) for dim in fixed_dims}
        stream.append((fixed, (group_dim,)))
    return stream


def run_stream(engine, stream: Sequence[Query]) -> Tuple[float, int]:
    """Total seconds and answer cells produced for one serving mode."""
    answers = 0
    start = time.perf_counter()
    for fixed, group in stream:
        answers += len(engine.slice(fixed, group))
    return time.perf_counter() - start, answers


def answers_match(routed, expected) -> bool:
    """Cell-for-cell equality: coordinates and counts exact, measures to
    float-ulp tolerance.

    The engine's incremental maintenance merges algebraic measures by
    reconstructing states from *finalised* values (``avg * count`` to recover
    the sum), so a delta-merged cube's ``avg`` can differ from the rollup
    table's exact ``(sum, count)`` arithmetic in the last ulp.  Counts and
    cells never differ; distributive sums of integer-valued floats are exact
    in either order.
    """
    if len(routed) != len(expected):
        return False
    for (cell_r, count_r, meas_r), (cell_e, count_e, meas_e) in zip(
        routed, expected
    ):
        if cell_r != cell_e or count_r != count_e or len(meas_r) != len(meas_e):
            return False
        for (name_r, value_r), (name_e, value_e) in zip(meas_r, meas_e):
            if name_r != name_e or not math.isclose(
                value_r, value_e, rel_tol=1e-9, abs_tol=1e-9
            ):
                return False
    return True


def count_mismatches(serving, stream: Sequence[Query]) -> Tuple[int, int]:
    """Routed answers compared cell-for-cell against the detached engine.

    Returns ``(mismatched cells, compared cells)``.  Comparison covers the
    cell coordinates, the count, and every finalised measure value — the
    routing-invisibility contract (see :func:`answers_match` for the float
    tolerance on measures).
    """
    engine = serving.engine
    router = engine.router
    mismatched = compared = 0
    for fixed, group in stream:
        engine.clear_caches()
        engine.router = router
        routed = [(a.cell, a.count, a.measures) for a in engine.slice(fixed, group)]
        engine.clear_caches()
        engine.router = None
        expected = [
            (a.cell, a.count, a.measures) for a in engine.slice(fixed, group)
        ]
        compared += max(len(expected), len(routed), 1)
        if not answers_match(routed, expected):
            mismatched += 1
    engine.router = router
    engine.clear_caches()
    return mismatched, compared


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=100_000)
    parser.add_argument("--card-hot", type=int, default=40,
                        help="cardinality of the two dashboard dimensions")
    parser.add_argument("--card-cold", type=int, default=8,
                        help="cardinality of the four narrow dimensions")
    parser.add_argument("--min-sup", type=int, default=8)
    parser.add_argument("--warm-queries", type=int, default=1200,
                        help="recorded warm-up stream feeding the advisor")
    parser.add_argument("--queries", type=int, default=2000,
                        help="timed hot-shape queries per serving mode")
    parser.add_argument("--verify-queries", type=int, default=250,
                        help="queries verified cell-for-cell per phase")
    parser.add_argument("--append-rows", type=int, default=5000,
                        help="rows appended for the staleness check")
    parser.add_argument("--top-k", type=int, default=8)
    parser.add_argument("--budget-bytes", type=int, default=16_000_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail unless routing beats the engine by this factor")
    parser.add_argument("--json", type=str, default=None,
                        help="also write the results to this JSON file")
    args = parser.parse_args(argv)

    print(f"dataset: T={args.tuples} cards=({args.card_hot},{args.card_hot},"
          f"{args.card_cold}x4) min_sup={args.min_sup}")
    rows = build_rows(args.tuples, args.card_hot, args.card_cold, args.seed)
    schema = {"dimensions": [f"d{i}" for i in range(6)], "measures": ["m"]}
    start = time.perf_counter()
    serving = (
        CubeSession.from_rows(rows, schema=schema)
        .closed(min_sup=args.min_sup)
        .measures(Sum("m"), Avg("m"))
        .build()
    )
    print(f"materialised closed cube in {time.perf_counter() - start:.2f}s "
          f"({len(serving.cube)} cells, {serving.algorithm})")
    engine = serving.engine

    # Phase 1: record the skewed workload (the shape log the advisor mines).
    warm = build_stream(serving.relation, args.warm_queries, 0.8, args.seed)
    start = time.perf_counter()
    run_stream(engine, warm)
    recorder = engine.recorder.stats()
    print(f"warm-up: {args.warm_queries} queries in "
          f"{time.perf_counter() - start:.2f}s -> {recorder['shapes']} shapes "
          f"recorded")

    # Phase 2: the advisor materialises the hot grains.
    start = time.perf_counter()
    report = serving.enable_rollups(
        budget_bytes=args.budget_bytes, top_k=args.top_k
    )
    grains = len(report["installed"])
    print(f"advisor: materialised {grains} grains "
          f"({report['total_bytes']:,} bytes) in "
          f"{time.perf_counter() - start:.2f}s")
    for choice in report["installed"]:
        print(f"  grain {tuple(choice['dims'])}: {choice['estimated_rows']} "
              f"rows, {choice['estimated_bytes']:,} bytes, "
              f"cost saved ~{choice['cost']:.0f}")

    # Phase 3: time the identical hot-only stream, engine vs routed.  The
    # distinct hot key space exceeds the slice cache, so neither mode is
    # measuring cache replay.
    hot = build_stream(serving.relation, args.queries, 1.0, args.seed + 1)
    router = engine.router
    engine.router = None
    engine.clear_caches()
    engine_seconds, engine_answers = run_stream(engine, hot)
    engine_qps = len(hot) / engine_seconds if engine_seconds else float("inf")
    engine.router = router
    engine.clear_caches()
    routed_seconds, routed_answers = run_stream(engine, hot)
    routed_qps = len(hot) / routed_seconds if routed_seconds else float("inf")
    speedup = routed_qps / engine_qps if engine_qps else float("inf")
    routed_share = engine.router.counters["routed_slices"] / max(1, len(hot))

    print()
    print(f"{'mode':<18}{'queries':>9}{'seconds':>10}{'qps':>12}{'answers':>10}")
    print("-" * 59)
    print(f"{'engine':<18}{len(hot):>9}{engine_seconds:>10.3f}"
          f"{engine_qps:>12.0f}{engine_answers:>10}")
    print(f"{'routed':<18}{len(hot):>9}{routed_seconds:>10.3f}"
          f"{routed_qps:>12.0f}{routed_answers:>10}")
    print(f"\nspeedup: {speedup:.1f}x (routed share of hot stream: "
          f"{routed_share:.1%})")

    # Phase 4: routing invisibility — routed == engine, cell for cell, on a
    # mixed stream (hot shapes and fallback tails both covered).
    verify = build_stream(serving.relation, args.verify_queries, 0.7, args.seed + 2)
    mismatched, compared = count_mismatches(serving, verify)
    verified = mismatched == 0 and routed_answers == engine_answers
    print(f"verification: {compared} cells across {len(verify)} queries, "
          f"{mismatched} mismatched")

    # Phase 5: staleness — append a delta, re-verify without any cache help.
    extra = build_rows(args.append_rows, args.card_hot, args.card_cold,
                       args.seed + 3)
    start = time.perf_counter()
    append = serving.append(extra)
    print(f"append: {append.appended_rows} rows via {append.mode} in "
          f"{time.perf_counter() - start:.2f}s")
    stale_stream = build_stream(
        serving.relation, args.verify_queries, 0.7, args.seed + 4
    )
    stale_reads, stale_compared = count_mismatches(serving, stale_stream)
    covered = all(
        entry["covered_tuples"] == serving.relation.num_tuples
        for entry in serving.rollup_stats()["tables"].values()
    )
    if not covered:
        stale_reads += 1  # a table left behind the relation is a stale read
    print(f"post-append verification: {stale_compared} cells, "
          f"{stale_reads} stale")

    passed = (
        speedup >= args.min_speedup and verified and stale_reads == 0
        and grains > 0
    )
    write_report(
        args.json,
        "bench_rollup_router",
        {"tuples": args.tuples, "card_hot": args.card_hot,
         "card_cold": args.card_cold, "min_sup": args.min_sup,
         "queries": args.queries, "top_k": args.top_k,
         "budget_bytes": args.budget_bytes, "seed": args.seed},
        passed=passed,
        engine_qps=round(engine_qps, 2),
        routed_qps=round(routed_qps, 2),
        speedup=round(speedup, 3),
        routed_share=round(routed_share, 4),
        grains=grains,
        rollup_bytes=report["total_bytes"],
        verified=verified,
        verified_cells=compared + stale_compared,
        stale_reads=stale_reads,
        min_speedup=args.min_speedup,
    )

    if not passed:
        print(f"FAIL: speedup {speedup:.1f}x (required {args.min_speedup:.1f}x), "
              f"verified={verified}, stale_reads={stale_reads}, grains={grains}")
        return 1
    print(f"OK: routed serving is {speedup:.1f}x the engine on hot shapes "
          f"(required {args.min_speedup:.1f}x), all answers exact before and "
          "after append")
    return 0


if __name__ == "__main__":
    sys.exit(main())
