"""Snapshot-format benchmark: v2 streaming load vs v1 monolithic pickle.

Builds a served closed cube over a synthetic relation (100k tuples by
default), snapshots it in both on-disk formats
(:mod:`repro.storage.snapshot`), and measures the restart path both ways:

1. ``v1`` — the original monolithic-pickle snapshot: one ``pickle.load`` of
   the whole payload, relation columns copied out of it, the inverted index
   rebuilt cell by cell;
2. ``v2`` — the chunked streaming format: framed, checksummed chunks
   consumed one at a time, columns preallocated at exact size, and the
   persisted posting lists reinstated instead of re-deriving the index.

Load time is best-of-``--loads`` wall clock for a full
:meth:`~repro.session.serving.ServingCube.load` (serving-ready, engine
open); peak memory is ``tracemalloc``'s traced-allocation peak over one load.
Both loaded cubes are verified cell-for-cell identical before any timing is
trusted.  The script exits non-zero when v2 fails to load at least
``--min-speedup`` times faster than v1 (default 1.5x) or its peak exceeds
``--max-peak-ratio`` times v1's (default 1.15).

The second half exercises the catalog compaction path end to end: a catalog
cube receives ``--compact-batches`` journaled appends, is compacted
(``CubeCatalog.compact``), and reopened from a fresh catalog — the reopened
cube must answer exactly like a from-scratch rebuild over every row.  The
reopen times before and after compaction are reported (the fold replaces
per-batch journal replay with one segment merge)::

    PYTHONPATH=src python benchmarks/bench_snapshot.py
    PYTHONPATH=src python benchmarks/bench_snapshot.py --tuples 20000

``--json PATH`` additionally writes the measurements as a JSON report
(validated against the documented thresholds by ``check_gates.py``).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
import tracemalloc
from typing import Sequence

from bench_helpers import write_report

from repro import CubeCatalog, CubeSession, ServingCube
from repro.datagen.synthetic import SyntheticConfig, generate_relation

CUBE = "snapstream"


def decoded_rows(args) -> list:
    relation = generate_relation(SyntheticConfig.uniform(
        num_tuples=args.tuples, num_dims=args.dims,
        cardinality=args.cardinality, skew=args.skew, seed=args.seed,
    ))
    return [
        tuple(
            relation.decode(dim, relation.columns[dim][tid])
            for dim in range(relation.num_dimensions)
        )
        for tid in range(relation.num_tuples)
    ]


def best_load(path: str, loads: int) -> float:
    best = float("inf")
    for _ in range(loads):
        start = time.perf_counter()
        ServingCube.load(path)
        best = min(best, time.perf_counter() - start)
    return best


def peak_load_mb(path: str) -> float:
    tracemalloc.start()
    ServingCube.load(path)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 1e6


def check_compaction(args, rows, directory) -> dict:
    """Journal → compact → reopen must equal a from-scratch rebuild."""
    base_count = max(1, int(len(rows) * 0.6))
    base_rows, tail = rows[:base_count], rows[base_count:]
    per_batch = max(1, len(tail) // args.compact_batches)
    catalog = CubeCatalog(os.path.join(directory, "catalog"),
                          auto_compact_ratio=None)
    catalog.create(CUBE, base_rows)
    appended = 0
    for index in range(args.compact_batches):
        batch = tail[index * per_batch: (index + 1) * per_batch]
        if not batch:
            break
        catalog.append(CUBE, batch)
        appended += len(batch)
    all_rows = base_rows + tail[: appended]
    pending = catalog.describe(CUBE)["pending_appends"]

    start = time.perf_counter()
    replayed = CubeCatalog(catalog.directory, auto_compact_ratio=None).open(CUBE)
    reopen_journal_seconds = time.perf_counter() - start

    report = catalog.compact(CUBE)
    start = time.perf_counter()
    compacted = CubeCatalog(catalog.directory, auto_compact_ratio=None).open(CUBE)
    reopen_compacted_seconds = time.perf_counter() - start

    rebuilt = CubeSession.from_rows(all_rows).closed(min_sup=1).build()
    for label, cube in (("journal-replayed", replayed),
                        ("compacted", compacted)):
        if not cube.cube.same_cells(rebuilt.cube):
            print(f"FAIL: {label} reopen differs from the full rebuild:")
            print(cube.cube.diff(rebuilt.cube))
            raise SystemExit(1)
    print(f"compaction: {pending} journaled batches folded by "
          f"{report['mode']} compact; reopen {reopen_journal_seconds:.3f}s "
          f"(journal replay) -> {reopen_compacted_seconds:.3f}s (folded); "
          "both reopens == rebuild")
    return {
        "mode": report["mode"],
        "folded_batches": pending,
        "reopen_journal_seconds": round(reopen_journal_seconds, 6),
        "reopen_compacted_seconds": round(reopen_compacted_seconds, 6),
    }


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=100_000)
    parser.add_argument("--dims", type=int, default=5)
    parser.add_argument("--cardinality", type=int, default=6)
    parser.add_argument("--skew", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--loads", type=int, default=3,
                        help="timed load repetitions (best-of)")
    parser.add_argument("--compact-batches", type=int, default=8,
                        help="journaled append batches before compact()")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail unless v2 loads this much faster than v1")
    parser.add_argument("--max-peak-ratio", type=float, default=1.15,
                        help="fail if v2's load peak exceeds v1's by this factor")
    parser.add_argument("--json", type=str, default=None,
                        help="also write the results to this JSON file")
    args = parser.parse_args(argv)

    print(f"dataset: T={args.tuples} D={args.dims} C={args.cardinality} "
          f"S={args.skew} min_sup=1 closed")
    start = time.perf_counter()
    rows = decoded_rows(args)
    cube = CubeSession.from_rows(rows).closed(min_sup=1).build()
    print(f"built cube in {time.perf_counter() - start:.2f}s "
          f"({len(cube)} cells, algorithm {cube.algorithm!r})")

    with tempfile.TemporaryDirectory() as directory:
        v1_path = os.path.join(directory, "cube.v1")
        v2_path = os.path.join(directory, "cube.v2")
        start = time.perf_counter()
        v1_bytes = cube.save(v1_path, format="v1")
        v1_save = time.perf_counter() - start
        start = time.perf_counter()
        v2_bytes = cube.save(v2_path, format="v2")
        v2_save = time.perf_counter() - start

        loaded_v1 = ServingCube.load(v1_path)
        loaded_v2 = ServingCube.load(v2_path)
        if not loaded_v1.cube.same_cells(loaded_v2.cube):
            print("FAIL: v1 and v2 loads disagree:")
            print(loaded_v1.cube.diff(loaded_v2.cube))
            return 1
        print(f"verified: v1 and v2 loads agree ({len(loaded_v1)} cells)")
        del loaded_v1, loaded_v2

        v1_load = best_load(v1_path, args.loads)
        v2_load = best_load(v2_path, args.loads)
        v1_peak = peak_load_mb(v1_path)
        v2_peak = peak_load_mb(v2_path)
        compaction = check_compaction(args, rows, directory)

    speedup = v1_load / v2_load if v2_load else float("inf")
    peak_ratio = v2_peak / v1_peak if v1_peak else 0.0
    print()
    print(f"{'format':<8}{'save s':>9}{'size MB':>10}{'load s':>9}"
          f"{'peak MB':>10}{'vs v1':>8}")
    print("-" * 54)
    print(f"{'v1':<8}{v1_save:>9.3f}{v1_bytes / 1e6:>10.2f}{v1_load:>9.3f}"
          f"{v1_peak:>10.1f}{1.0:>7.1f}x")
    print(f"{'v2':<8}{v2_save:>9.3f}{v2_bytes / 1e6:>10.2f}{v2_load:>9.3f}"
          f"{v2_peak:>10.1f}{speedup:>7.1f}x")

    passed = speedup >= args.min_speedup and peak_ratio <= args.max_peak_ratio
    write_report(
        args.json,
        "bench_snapshot",
        {"tuples": args.tuples, "dims": args.dims,
         "cardinality": args.cardinality, "skew": args.skew,
         "seed": args.seed, "loads": args.loads,
         "compact_batches": args.compact_batches},
        passed=passed,
        v1_save_seconds=round(v1_save, 6),
        v2_save_seconds=round(v2_save, 6),
        v1_bytes=v1_bytes,
        v2_bytes=v2_bytes,
        v1_load_seconds=round(v1_load, 6),
        v2_load_seconds=round(v2_load, 6),
        v1_peak_mb=round(v1_peak, 3),
        v2_peak_mb=round(v2_peak, 3),
        speedup=round(speedup, 3),
        peak_ratio=round(peak_ratio, 4),
        min_speedup=args.min_speedup,
        max_peak_ratio=args.max_peak_ratio,
        compaction=compaction,
    )

    if speedup < args.min_speedup:
        print(f"FAIL: v2 streaming load is only {speedup:.2f}x the v1 load "
              f"(required {args.min_speedup:.1f}x)")
        return 1
    if peak_ratio > args.max_peak_ratio:
        print(f"FAIL: v2 load peak is {peak_ratio:.2f}x the v1 peak "
              f"(allowed {args.max_peak_ratio:.2f}x)")
        return 1
    print(f"OK: v2 loads {speedup:.2f}x faster than v1 at {peak_ratio:.2f}x "
          f"its peak memory (required >={args.min_speedup:.1f}x, "
          f"<={args.max_peak_ratio:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
