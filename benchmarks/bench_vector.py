"""Vectorized-kernel benchmark gate: NumPy kernels vs the per-tuple paths.

Times the kernels that carry the columnar execution core
(:mod:`repro.vector.kernels`) against the per-tuple reference
implementations they replaced:

1. ``aggregate`` — measure folding over the tuple-id groups of a partition
   pass (the inner loop of the cubing algorithms): ``aggregate_measures``
   vs the sequential ``MeasureState`` create/merge fold.
2. ``grouped``   — the fused group-by + closedness + measure aggregation of
   the MultiWay dense subspace (lexsort + ``reduceat`` run reductions):
   ``grouped_closed_aggregate`` vs the per-tuple dict/state loop.
3. ``repair``    — batched Lemma-3 closedness repair + measure merge (the
   inner loop of ``merge_closed_cubes``): ``repair_pairs`` vs the
   per-candidate reconstruction, over pairs drawn from a real closed cube.

Before any timing is trusted the paths are verified value-identical on
every group and every pair (measure columns are integral-valued, so sums
are exact under both summation orders).

Gating is shaped by what vectorization can honestly buy.  The two
*reduction* kernels (``aggregate``, ``grouped``) emit one small record per
group, so NumPy wins big — they carry the ``--min-speedup`` gate (default
5x).  The ``repair`` kernel's contract requires one Python cell tuple and
one payload dict *per pair* on the way out (the merge upserts them into the
cube), so its ceiling is bounded by Python-object materialisation no matter
how the arithmetic is done — measured ~2x.  It is therefore gated on
correctness plus a non-regression floor (``--repair-floor``), and the
merge-path latency win that actually matters (chunked batches + yield
points) is gated end-to-end by ``bench_load_slo.py`` instead.  When NumPy
is unavailable only correctness is gated: the fallback *is* the reference
path, and a pure-Python leg asserting a speedup of 1x would be a tautology
dressed as a gate.

    PYTHONPATH=src python benchmarks/bench_vector.py
    PYTHONPATH=src python benchmarks/bench_vector.py --tuples 30000 --pairs 6000

``--json PATH`` writes the measurements as a JSON report for
``check_gates.py``.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from bench_helpers import write_report

from repro.algorithms.base import CubingOptions, get_algorithm
from repro.core.cell import sort_key
from repro.core.columns import get_backend
from repro.core.measures import (
    AvgMeasure,
    CountMeasure,
    MaxMeasure,
    MeasureSet,
    MinMeasure,
    SumMeasure,
)
from repro.core.relation import Relation
from repro.datagen.synthetic import SyntheticConfig, generate_relation
from repro.vector import kernels


def _build_relation(args) -> Relation:
    config = SyntheticConfig.uniform(
        num_tuples=args.tuples,
        num_dims=args.dims,
        cardinality=args.cardinality,
        skew=args.skew,
        seed=args.seed,
        num_measures=2,
    )
    relation = generate_relation(config)
    # Integral measure values keep both summation orders (sequential fold,
    # NumPy reductions) exact, so the equality checks below are meaningful.
    for index, column in enumerate(relation.measure_columns):
        relation.measure_columns[index] = [float(int(value)) for value in column]
    return relation


def _tid_groups(relation: Relation) -> List[List[int]]:
    """Tuple-id groups of a two-dimensional partition pass (BUC's level 2)."""
    groups: Dict[Tuple[int, int], List[int]] = defaultdict(list)
    d0, d1 = relation.columns[0], relation.columns[1]
    for tid in range(relation.num_tuples):
        groups[(d0[tid], d1[tid])].append(tid)
    return [tids for _key, tids in sorted(groups.items())]


def _repair_pairs(relation: Relation, measures: MeasureSet, count: int):
    """Deterministic candidate pairs drawn from a real closed cube's cells."""
    result = get_algorithm(
        "qcdfs", CubingOptions(min_sup=1, closed=True, measures=measures)
    ).run(relation)
    cells = sorted(result.cube.items(), key=lambda item: sort_key(item[0]))
    pairs: List[kernels.RepairPair] = []
    for i in range(count):
        base_cell, base_stats = cells[(i * 13) % len(cells)]
        delta_cell, delta_stats = cells[(i * 7 + 3) % len(cells)]
        pairs.append(
            (
                base_cell,
                base_stats.count,
                dict(base_stats.measures),
                base_stats.rep_tid,
                delta_cell,
                delta_stats.count,
                dict(delta_stats.measures),
                delta_stats.rep_tid,
            )
        )
    return pairs


def _time(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=120_000)
    parser.add_argument("--dims", type=int, default=6)
    parser.add_argument("--cardinality", type=int, default=12)
    parser.add_argument("--skew", type=float, default=0.3)
    parser.add_argument("--pairs", type=int, default=20_000,
                        help="repair candidate pairs per timed batch")
    parser.add_argument("--group-dims", type=int, default=3,
                        help="group-by key columns for the grouped kernel")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions; best-of is reported")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail unless the reduction kernels (aggregate, "
                             "grouped) beat the per-tuple path by this "
                             "factor (NumPy backend only)")
    parser.add_argument("--repair-floor", type=float, default=1.1,
                        help="non-regression floor for the repair batch "
                             "(bounded ~2x by per-pair Python output)")
    parser.add_argument("--json", type=str, default=None,
                        help="also write the results to this JSON file")
    args = parser.parse_args(argv)

    backend = get_backend()
    vectorized = backend.vectorized
    relation = _build_relation(args)
    measures = MeasureSet(
        [
            CountMeasure(),
            SumMeasure("m0"),
            MinMeasure("m0"),
            MaxMeasure("m1"),
            AvgMeasure("m1"),
        ]
    )

    groups = _tid_groups(relation)
    pairs = _repair_pairs(relation, measures, args.pairs)
    all_tids = list(range(relation.num_tuples))
    key_columns = [relation.columns[d] for d in range(args.group_dims)]

    # Correctness first: every dispatch path must agree with its per-tuple
    # reference on every group and every pair before a single timing counts.
    agg_fast = [kernels.aggregate_measures(measures, relation, g) for g in groups]
    agg_ref = [
        kernels.aggregate_measures_python(measures, relation, g) for g in groups
    ]
    grouped_fast = kernels.grouped_closed_aggregate(
        relation, all_tids, key_columns, measures, True
    )
    grouped_ref = kernels.grouped_closed_aggregate_python(
        relation, all_tids, key_columns, measures, True
    )
    repair_fast = kernels.repair_pairs(pairs, relation, measures)
    repair_ref = kernels.repair_pairs_python(pairs, relation, measures)
    fallback_matches = (
        agg_fast == agg_ref
        and grouped_fast == grouped_ref
        and repair_fast == repair_ref
    )

    agg_vector = _time(
        args.repeats,
        lambda: [kernels.aggregate_measures(measures, relation, g) for g in groups],
    )
    agg_python = _time(
        args.repeats,
        lambda: [
            kernels.aggregate_measures_python(measures, relation, g)
            for g in groups
        ],
    )
    grouped_vector = _time(
        args.repeats,
        lambda: kernels.grouped_closed_aggregate(
            relation, all_tids, key_columns, measures, True
        ),
    )
    grouped_python = _time(
        args.repeats,
        lambda: kernels.grouped_closed_aggregate_python(
            relation, all_tids, key_columns, measures, True
        ),
    )
    repair_vector = _time(
        args.repeats, lambda: kernels.repair_pairs(pairs, relation, measures)
    )
    repair_python = _time(
        args.repeats, lambda: kernels.repair_pairs_python(pairs, relation, measures)
    )

    def _ratio(reference: float, vector: float) -> float:
        return reference / vector if vector > 0 else float("inf")

    aggregate_speedup = _ratio(agg_python, agg_vector)
    grouped_speedup = _ratio(grouped_python, grouped_vector)
    repair_speedup = _ratio(repair_python, repair_vector)
    speedup = min(aggregate_speedup, grouped_speedup)
    passed = fallback_matches and (
        not vectorized
        or (speedup >= args.min_speedup and repair_speedup >= args.repair_floor)
    )

    print(f"backend: {backend.name} (vectorized={vectorized})")
    print(f"relation: {args.tuples} tuples x {args.dims} dims "
          f"(C={args.cardinality}), {len(groups)} groups, "
          f"{len(grouped_fast)} grouped keys, {len(pairs)} pairs")
    print(f"paths agree on every group, key, and pair: {fallback_matches}")
    print(f"{'kernel':<12} {'per-tuple':>12} {'vectorized':>12} {'speedup':>9}")
    for name, ref, fast, ratio in (
        ("aggregate", agg_python, agg_vector, aggregate_speedup),
        ("grouped", grouped_python, grouped_vector, grouped_speedup),
        ("repair", repair_python, repair_vector, repair_speedup),
    ):
        print(f"{name:<12} {ref * 1e3:>10.1f}ms {fast * 1e3:>10.1f}ms "
              f"{ratio:>8.1f}x")
    if vectorized:
        verdict = "PASS" if passed else "FAIL"
        print(f"{verdict}: reduction kernels {speedup:.1f}x "
              f"(need >= {args.min_speedup:.1f}x), repair {repair_speedup:.1f}x "
              f"(floor {args.repair_floor:.1f}x)")
    else:
        verdict = "PASS" if passed else "FAIL"
        print(f"{verdict}: pure-python backend — correctness gated only")

    write_report(
        args.json,
        "bench_vector",
        config={
            "tuples": args.tuples,
            "dims": args.dims,
            "cardinality": args.cardinality,
            "skew": args.skew,
            "pairs": args.pairs,
            "group_dims": args.group_dims,
            "repeats": args.repeats,
            "seed": args.seed,
            "backend": backend.name,
        },
        passed=passed,
        vectorized=vectorized,
        fallback_matches=fallback_matches,
        aggregate_speedup=aggregate_speedup,
        grouped_speedup=grouped_speedup,
        repair_speedup=repair_speedup,
        speedup=speedup,
        min_speedup=args.min_speedup,
        repair_floor=args.repair_floor,
        aggregate_vector_seconds=agg_vector,
        aggregate_python_seconds=agg_python,
        grouped_vector_seconds=grouped_vector,
        grouped_python_seconds=grouped_python,
        repair_vector_seconds=repair_vector,
        repair_python_seconds=repair_python,
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
