"""Validate benchmark-gate JSON reports against their documented thresholds.

Every ``bench_*.py`` gate writes one JSON report (``--json``, assembled by
:func:`bench_helpers.write_report`).  This checker re-derives each gate's
verdict from the numbers in the file — it does not trust the ``passed`` flag,
it cross-checks it — so a gate script whose pass logic drifts from its
recorded thresholds fails loudly here.  Both CI jobs run it: the PR-size
``tests`` job over the reduced-size artifacts, and the scheduled
``bench-full`` job over the documented full-size runs.

Usage::

    python benchmarks/check_gates.py bench-artifacts/
    python benchmarks/check_gates.py a.json b.json --merge bench-trajectory.json
    python benchmarks/check_gates.py bench-artifacts/ \\
        --diff benchmarks/baselines/bench-trajectory.json --max-regression 0.4

``--merge`` additionally writes every validated report into one merged
trajectory file (keyed by benchmark name, stamped with the run time) — the
single artifact the scheduled job uploads, so the perf trajectory across
runs is one download per run instead of five.  ``--diff`` compares this
run's reports against a committed baseline trajectory and fails on any
gate that regressed past its allowance (see ``TRAJECTORY``) — absolute
thresholds catch falling off a cliff, the diff catches sliding downhill.
``--update-baseline`` rewrites the committed baseline from this run's
reports (after a deliberate perf change), but only when every gate passes
its absolute thresholds — a failing run can never become the new normal::

    python benchmarks/check_gates.py bench-artifacts/ \\
        --update-baseline benchmarks/baselines/bench-trajectory.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Sequence, Tuple

#: Per-gate validation: report -> (ok, human-readable detail).
#: Thresholds ride inside each report (the gate's CLI defaults are the
#: documented values; reduced-size CI runs record their adjusted bars).
GateRule = Callable[[Dict], Tuple[bool, str]]


def _speedup_rule(report: Dict) -> Tuple[bool, str]:
    speedup = float(report["speedup"])
    floor = float(report["min_speedup"])
    return speedup >= floor, f"speedup {speedup:.2f}x (needs >= {floor:.2f}x)"


def _overhead_rule(report: Dict) -> Tuple[bool, str]:
    overhead = float(report["overhead"])
    ceiling = float(report["max_overhead"])
    return (
        overhead <= ceiling,
        f"overhead {overhead * 100:+.1f}% (allows <= {ceiling * 100:.0f}%)",
    )


def _snapshot_rule(report: Dict) -> Tuple[bool, str]:
    ok, detail = _speedup_rule(report)
    peak_ratio = float(report["peak_ratio"])
    peak_ceiling = float(report["max_peak_ratio"])
    peak_ok = peak_ratio <= peak_ceiling
    detail += f", peak {peak_ratio:.2f}x (allows <= {peak_ceiling:.2f}x)"
    return ok and peak_ok, detail


def _load_slo_rule(report: Dict) -> Tuple[bool, str]:
    p99_ms = float(report["query_p99_ms"])
    slo_ms = float(report["slo_p99_ms"])
    errors = int(report["errors"])
    return (
        p99_ms <= slo_ms and errors == 0,
        f"query p99 {p99_ms:.1f}ms (SLO <= {slo_ms:.0f}ms), "
        f"{errors} errors (allows 0)",
    )


def _vector_rule(report: Dict) -> Tuple[bool, str]:
    matches = bool(report["fallback_matches"])
    detail = f"paths agree: {matches}"
    if not bool(report["vectorized"]):
        # Pure-python backend: the fallback is the reference implementation,
        # so only correctness is gated (see the bench_vector docstring).
        return matches, detail + " (pure-python backend, correctness only)"
    ok, speed_detail = _speedup_rule(report)
    repair = float(report["repair_speedup"])
    floor = float(report["repair_floor"])
    repair_ok = repair >= floor
    detail += (
        f", {speed_detail}, repair {repair:.2f}x (floor >= {floor:.2f}x)"
    )
    return matches and ok and repair_ok, detail


def _rollup_router_rule(report: Dict) -> Tuple[bool, str]:
    ok, detail = _speedup_rule(report)
    verified = bool(report["verified"])
    stale = int(report["stale_reads"])
    grains = int(report["grains"])
    detail += (
        f", verified={verified}, stale_reads={stale} (allows 0), "
        f"{grains} grains (needs > 0)"
    )
    return ok and verified and stale == 0 and grains > 0, detail


def _replication_rule(report: Dict) -> Tuple[bool, str]:
    caught_up = bool(report["caught_up"])
    catchup = float(report["catchup_seconds"])
    bound = float(report["max_catchup_seconds"])
    mismatches = int(report["mismatches"])
    compared = int(report["compared"])
    errors = int(report["errors"])
    followers = int(report["config"]["followers"])
    return (
        caught_up and catchup <= bound and mismatches == 0 and compared > 0
        and errors == 0 and followers >= 2,
        f"catch-up {catchup:.2f}s (bound <= {bound:.0f}s, "
        f"caught_up={caught_up}), {mismatches}/{compared} read mismatches "
        f"(allows 0), {errors} errors (allows 0), "
        f"{followers} followers (needs >= 2)",
    )


GATES: Dict[str, GateRule] = {
    "bench_query_throughput": _speedup_rule,
    "bench_api_overhead": _overhead_rule,
    "bench_incremental": _speedup_rule,
    "bench_concurrent_serving": _speedup_rule,
    "bench_snapshot": _snapshot_rule,
    "bench_load_slo": _load_slo_rule,
    "bench_vector": _vector_rule,
    "bench_rollup_router": _rollup_router_rule,
    "bench_replication": _replication_rule,
}


#: What ``--diff`` compares per gate: ``(metric, direction, allowance)``.
#: ``higher`` — regression when current < baseline * (1 - allowance);
#: ``lower``  — regression when current > baseline * (1 + allowance);
#: ``delta``  — absolute points: regression when current > baseline + allowance.
#: ``allowance=None`` means use the CLI ``--max-regression``.  Latency gets a
#: generous fixed multiple (absolute milliseconds swing with runner hardware
#: and with where the append merge lands inside the window); API overhead is
#: a percentage near zero, so it compares in absolute points.
TRAJECTORY: Dict[str, Tuple[str, str, object]] = {
    "bench_query_throughput": ("speedup", "higher", None),
    "bench_api_overhead": ("overhead", "delta", 0.05),
    "bench_incremental": ("speedup", "higher", None),
    "bench_concurrent_serving": ("speedup", "higher", None),
    "bench_snapshot": ("speedup", "higher", None),
    "bench_load_slo": ("query_p99_ms", "lower", 3.0),
    "bench_vector": ("speedup", "higher", None),
    "bench_rollup_router": ("speedup", "higher", None),
    # Catch-up is near-instant on a healthy run; absolute seconds of slack
    # absorb runner jitter without letting a stuck tailer slide through.
    "bench_replication": ("catchup_seconds", "delta", 5.0),
}


def diff_trajectories(
    baseline: Dict, current: Dict, max_regression: float
) -> List[Tuple[str, bool, str]]:
    """Compare two ``bench-trajectory.json`` payloads gate by gate.

    A gate present in the baseline must still be present and must not have
    regressed past its allowance.  A gate the baseline has never seen passes
    with a note (the next baseline refresh adopts it).  Runs whose recorded
    ``config`` differs from the baseline's are skipped, not compared — a
    reduced-size PR run must not be judged against full-size numbers.
    """
    results: List[Tuple[str, bool, str]] = []
    baseline_gates = baseline.get("gates", {})
    current_gates = current.get("gates", {})
    for name, (metric, direction, allowance) in sorted(TRAJECTORY.items()):
        base = baseline_gates.get(name)
        now = current_gates.get(name)
        if base is None and now is None:
            continue
        if base is None:
            results.append((name, True, "new gate, no baseline yet"))
            continue
        if now is None:
            results.append((name, False, "gate present in baseline but "
                            "missing from this run"))
            continue
        if base.get("config") != now.get("config"):
            results.append((name, True, "config differs from baseline; "
                            "trajectory not comparable, skipped"))
            continue
        try:
            base_value = float(base[metric])
            now_value = float(now[metric])
        except (KeyError, TypeError, ValueError) as exc:
            results.append((name, False, f"malformed trajectory entry: "
                            f"{exc!r}"))
            continue
        slack = max_regression if allowance is None else float(allowance)
        if direction == "higher":
            ok = now_value >= base_value * (1.0 - slack)
            bound = f">= {base_value * (1.0 - slack):.3g}"
        elif direction == "lower":
            ok = now_value <= base_value * (1.0 + slack)
            bound = f"<= {base_value * (1.0 + slack):.3g}"
        else:
            ok = now_value <= base_value + slack
            bound = f"<= {base_value + slack:.3g}"
        results.append((name, ok, (
            f"{metric} {now_value:.3g} vs baseline {base_value:.3g} "
            f"(allows {bound})"
        )))
    return results


def collect_reports(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into gate-report JSON paths."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            found.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".json") and name != "bench-trajectory.json"
            )
        else:
            found.append(path)
    return found


def check_report(path: str) -> Tuple[str, bool, str]:
    """Validate one report file; returns (benchmark, ok, detail)."""
    with open(path) as handle:
        report = json.load(handle)
    benchmark = report.get("benchmark", "?")
    rule = GATES.get(benchmark)
    if rule is None:
        return benchmark, False, f"unknown gate {benchmark!r} in {path}"
    try:
        ok, detail = rule(report)
    except (KeyError, TypeError, ValueError) as exc:
        return benchmark, False, f"malformed report {path}: {exc!r}"
    recorded = report.get("passed")
    if recorded is not None and bool(recorded) != ok:
        return benchmark, False, (
            f"{detail}; recorded passed={recorded} disagrees with the "
            "thresholds in the same file"
        )
    return benchmark, ok, detail


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="gate report files and/or directories of them")
    parser.add_argument("--merge", type=str, default=None,
                        help="write all validated reports into one "
                        "trajectory JSON file")
    parser.add_argument("--diff", type=str, default=None,
                        help="compare this run against a committed baseline "
                        "bench-trajectory.json and fail on regression")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="default fractional regression allowance for "
                        "--diff (per-gate overrides in TRAJECTORY)")
    parser.add_argument("--update-baseline", type=str, default=None,
                        help="rewrite the committed baseline trajectory from "
                        "this run's reports; refused unless every gate "
                        "passes its absolute thresholds")
    args = parser.parse_args(argv)

    files = collect_reports(args.paths)
    if not files:
        print("no gate reports found", file=sys.stderr)
        return 1
    results: List[Tuple[str, bool, str]] = []
    merged: Dict[str, Dict] = {}
    for path in files:
        benchmark, ok, detail = check_report(path)
        results.append((benchmark, ok, detail))
        if benchmark in GATES:
            with open(path) as handle:
                merged[benchmark] = json.load(handle)

    width = max(len(name) for name, _, _ in results)
    for benchmark, ok, detail in results:
        print(f"{'PASS' if ok else 'FAIL'}  {benchmark:<{width}}  {detail}")
    all_ok = all(ok for _, ok, _ in results)

    if args.merge:
        trajectory = {
            "schema": 1,
            "generated_at": time.time(),
            "passed": all_ok,
            "gates": merged,
        }
        directory = os.path.dirname(os.path.abspath(args.merge))
        os.makedirs(directory, exist_ok=True)
        with open(args.merge, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
        print(f"wrote {args.merge} ({len(merged)} gates)")

    if args.diff:
        with open(args.diff) as handle:
            baseline = json.load(handle)
        current = {"gates": merged}
        print(f"\ntrajectory vs baseline {args.diff}:")
        diffs = diff_trajectories(baseline, current, args.max_regression)
        width = max((len(name) for name, _, _ in diffs), default=1)
        for name, ok, detail in diffs:
            print(f"{'PASS' if ok else 'FAIL'}  {name:<{width}}  {detail}")
        all_ok = all_ok and all(ok for _, ok, _ in diffs)

    if args.update_baseline:
        if not all_ok:
            print("refusing to update the baseline from a failing run",
                  file=sys.stderr)
            return 1
        trajectory = {
            "schema": 1,
            "generated_at": time.time(),
            "passed": True,
            "gates": merged,
        }
        directory = os.path.dirname(os.path.abspath(args.update_baseline))
        os.makedirs(directory, exist_ok=True)
        with open(args.update_baseline, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
        print(f"baseline refreshed: {args.update_baseline} "
              f"({len(merged)} gates)")

    if not all_ok:
        print("gate validation failed", file=sys.stderr)
        return 1
    print(f"all {len(results)} gates within their thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
