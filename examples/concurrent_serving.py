"""Concurrent multi-cube serving: catalog + asyncio server walkthrough.

The single-cube session API scales up to a small OLAP server in three moves:

1. register cubes by name in a :class:`repro.catalog.CubeCatalog` — a durable
   directory of per-cube snapshots and append streams;
2. front the catalog with :class:`repro.server.AsyncCubeServer` — batched
   queries with back-pressure, and copy-on-publish appends that never block
   the read hot path;
3. (optionally) expose it over TCP with ``python -m repro.server DIR``.

This script exercises 1 and 2 in-process: two cubes served concurrently,
queries interleaving with appends, versioned read snapshots, and the
durability round trip.  Run with ``PYTHONPATH=src python
examples/concurrent_serving.py``.
"""

from __future__ import annotations

import asyncio
import os
import tempfile

from repro import AsyncCubeServer, CubeCatalog, CubeSession, Sum

SALES_ROWS = [
    ("nyc", "espresso", "mon", 3.5),
    ("nyc", "latte", "mon", 4.5),
    ("nyc", "espresso", "tue", 3.5),
    ("sf", "espresso", "mon", 3.8),
    ("sf", "latte", "tue", 4.8),
    ("sf", "latte", "tue", 4.8),
]
SALES_SCHEMA = {"dimensions": ["store", "product", "day"], "measures": ["price"]}

CLICK_ROWS = [
    ("u1", "/home"), ("u1", "/pricing"), ("u2", "/home"),
    ("u3", "/docs"), ("u2", "/docs"), ("u1", "/home"),
]
CLICK_SCHEMA = ["user", "page"]


async def serve(catalog: CubeCatalog) -> None:
    async with AsyncCubeServer(catalog, query_workers=2) as server:
        # -- Queries on two cubes flow through one server ------------------ #
        answer = await server.query("sales", {"store": "nyc"})
        print(f"sales nyc: count={answer.count}, "
              f"revenue={answer.measure('sum(price)'):.2f}")
        rollup = await server.execute(
            "clicks", {"op": "rollup", "dims": ["page"]}
        )
        print("clicks by page:",
              {a.coordinates_dict()["page"]: a.count for a in rollup})

        # -- A version-pinned view survives later appends ------------------ #
        sales = catalog.open("sales")
        pinned = sales.read_snapshot()

        # -- Appends interleave with queries without blocking them --------- #
        append_task = asyncio.get_running_loop().create_task(
            server.append("sales", [("nyc", "mocha", "wed", 5.0),
                                    ("sf", "mocha", "wed", 5.2)])
        )
        while not append_task.done():
            # The read hot path keeps answering while the merge runs.
            await server.query("sales", {"store": "sf"})
            await asyncio.sleep(0)
        report = await append_task
        print(f"append served by {report.mode!r} "
              f"(version {sales.version}, {report.appended_rows} rows)")

        latest = await server.query("sales", {"product": "mocha"})
        print(f"latest sees mocha: count={latest.count}; "
              f"pinned view (version {pinned.version}) sees: "
              f"count={pinned.point({'product': 'mocha'}).count}")

        batched = await server.execute_many("sales", [
            {"store": "nyc"},
            {"op": "slice", "fixed": {"day": "mon"}, "group_by": ["store"]},
            {"op": "rollup", "dims": ["product"]},
        ])
        print(f"batched: nyc count={batched[0].count}, "
              f"mon slice has {len(batched[1])} groups, "
              f"product rollup has {len(batched[2])} cells")
        print("server counters:", (await _stats(server))["counters"])


async def _stats(server: AsyncCubeServer) -> dict:
    return server.stats()


def main() -> None:
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "cubes")
        catalog = CubeCatalog(path)

        # Register two cubes: raw rows, or a configured session (settings
        # travel into the catalog and its snapshots).
        session = (
            CubeSession.from_rows(SALES_ROWS, schema=SALES_SCHEMA)
            .closed(min_sup=1)
            .measures(Sum("price"))
        )
        session.build_into(catalog, "sales")
        catalog.create("clicks", CLICK_ROWS, schema=CLICK_SCHEMA)
        print(f"catalog {path!r} serves {catalog.list()}")

        asyncio.run(serve(catalog))

        # -- Durability: appends were journaled; a new catalog replays them  #
        reopened = CubeCatalog(path)
        cube = reopened.open("sales")
        print(f"reopened catalog: mocha count="
              f"{cube.point({'product': 'mocha'}).count} "
              f"(pending appends replayed: "
              f"{reopened.describe('sales')['pending_appends']} batches)")


if __name__ == "__main__":
    main()
