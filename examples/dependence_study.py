"""Closed pruning vs iceberg pruning: a miniature of the paper's Section 5.3.

The script generates synthetic datasets with increasing *data dependence*
(functional-dependence rules injected by the generator), then shows:

* how the gap between the iceberg cube and the closed iceberg cube widens as
  dependence grows (the paper's Figure 13),
* which algorithm — C-Cubing(MM) or C-Cubing(Star) — wins at each
  (dependence, min_sup) combination (the paper's Figure 15 in miniature),
* the partitioned-computation driver (Section 6.3) producing the identical
  closed cube while holding only one partition's tuples "in memory".

Run with::

    python examples/dependence_study.py
"""

from __future__ import annotations

from repro import run_algorithm
from repro.core.validate import reference_closed_cube, reference_iceberg_cube
from repro.datagen.synthetic import SyntheticConfig, generate_relation
from repro.storage.partition import PartitionedCubeComputer


def dataset(dependence: float, seed: int = 5):
    config = SyntheticConfig.uniform(
        num_tuples=500, num_dims=6, cardinality=8, skew=0.0,
        dependence=dependence, seed=seed,
    )
    return generate_relation(config)


def main() -> None:
    min_sup = 6

    print("Cube size vs data dependence (min_sup =", min_sup, ")")
    print(f"{'R':>4}  {'iceberg cells':>14}  {'closed cells':>13}  {'closed/iceberg':>14}")
    for dependence in (0.0, 1.0, 2.0, 3.0):
        relation = dataset(dependence)
        iceberg = reference_iceberg_cube(relation, min_sup)
        closed = reference_closed_cube(relation, min_sup)
        ratio = len(closed) / max(len(iceberg), 1)
        print(f"{dependence:>4}  {len(iceberg):>14}  {len(closed):>13}  {ratio:>14.2f}")
    print()

    print("Best algorithm per (dependence, min_sup):")
    header = "R \\ M" + "".join(f"{m:>12}" for m in (1, 4, 16))
    print(header)
    for dependence in (0.0, 2.0):
        cells = [f"{dependence:<5}"]
        relation = dataset(dependence)
        for min_sup_point in (1, 4, 16):
            timings = {}
            for name in ("c-cubing-mm", "c-cubing-star"):
                result = run_algorithm(relation, name, min_sup=min_sup_point, closed=True)
                timings[name] = result.elapsed_seconds
            winner = min(timings, key=timings.get)
            cells.append(f"{winner.replace('c-cubing-', ''):>12}")
        print("".join(cells))
    print()

    relation = dataset(2.0)
    computer = PartitionedCubeComputer(
        algorithm="c-cubing-star", min_sup=min_sup, closed=True, memory_budget_tuples=100
    )
    cube, report = computer.compute(relation)
    expected = reference_closed_cube(relation, min_sup)
    print("Partitioned computation (Section 6.3):")
    print(f"  partitions={report.num_partitions} largest={report.largest_partition} "
          f"spilled_files={report.spilled_files}")
    print(f"  partitioned result matches the in-memory result: {expected.same_cells(cube)}")


if __name__ == "__main__":
    main()
