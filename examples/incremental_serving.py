"""Incremental serving: build, serve, append, snapshot, reload, serve again.

The lifecycle of a long-lived serving cube:

1. build a closed cube over yesterday's fact stream and answer queries,
2. ``append()`` today's rows — a delta cube over only the new tuples is
   merged in with aggregation-based closedness repair (no recomputation),
3. ``save()`` a versioned snapshot to disk,
4. ``load()`` it back (as a restarted process would) and keep serving — and
   keep appending: the reloaded cube retains full maintenance abilities.

Run with::

    python examples/incremental_serving.py
"""

from __future__ import annotations

import os
import random
import tempfile

from repro import CubeSession, ServingCube, Sum

STORES = ["nyc", "sfo", "chi", "aus"]
PRODUCTS = ["shoe", "sock", "hat", "belt", "scarf"]


def day_rows(day: str, num_rows: int, seed: int):
    """One day of retail facts: (store, product, day, price)."""
    rng = random.Random(seed)
    rows = []
    for _ in range(num_rows):
        store = rng.choices(STORES, weights=(5, 3, 2, 1))[0]
        product = rng.choices(PRODUCTS, weights=(1, 4, 2, 2, 1))[0]
        price = round(rng.uniform(3.0, 60.0), 2)
        rows.append((store, product, day, price))
    return rows


def show(cube, label):
    nyc = cube.point({"store": "nyc"})
    shoes = cube.point({"product": "shoe"})
    print(f"  [{label}] nyc: count={nyc.count} sum={nyc.measure('sum(price)'):.2f}; "
          f"shoes: count={shoes.count}; cells={len(cube)} "
          f"rows={cube.relation.num_tuples}")


def main() -> None:
    schema = {"dimensions": ["store", "product", "day"], "measures": ["price"]}

    print("1) build over the first three days and serve")
    history = [row for day in range(3) for row in day_rows(f"day{day}", 400, day)]
    cube = (
        CubeSession.from_rows(history, schema=schema)
        .closed(min_sup=1)
        .measures(Sum("price"))
        .using("auto")
        .build()
    )
    show(cube, "built")

    print("2) append day3 incrementally (delta cube + closedness-repair merge)")
    report = cube.append(day_rows("day3", 400, seed=3))
    print("  " + report.describe().replace("\n", "\n  "))
    show(cube, "appended")

    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "retail.cube")
        print("3) snapshot to disk")
        size = cube.save(path)
        print(f"  wrote {size} bytes to {os.path.basename(path)}")

        print("4) reload (simulating a process restart) and serve again")
        reloaded = ServingCube.load(path)
        show(reloaded, "reloaded")
        assert reloaded.point({"store": "nyc"}).count == cube.point({"store": "nyc"}).count

        print("5) the reloaded cube keeps appending")
        report = reloaded.append(day_rows("day4", 400, seed=4))
        print(f"  append after reload served by {report.mode} "
              f"({report.appended_rows} rows)")
        show(reloaded, "day4")

    print("cache stats:", reloaded.cache_info()["answers"])


if __name__ == "__main__":
    main()
