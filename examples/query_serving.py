"""Serving batch queries over a partitioned closed cube.

The ROADMAP's north star is a cube *service*, not just a cube builder.  This
example walks the whole serving path on a synthetic web-analytics fact table
(region, site, device, browser, day):

1. materialise the closed iceberg cube partition by partition with the
   Section 6.3 driver (:func:`repro.open_partitioned_query_engine` wraps
   :class:`repro.storage.partition.PartitionedCubeComputer`),
2. shard the materialised cells on the partitioning dimension and open a
   routing :class:`repro.PartitionedQueryEngine` over the shards,
3. answer a mixed batch of point / roll-up / slice queries with
   ``execute_many`` — queries pinning the partitioning dimension touch one
   shard, the rest fan out and merge,
4. show the serving statistics (shard layout, cache behaviour).

Run with::

    python examples/query_serving.py
"""

from __future__ import annotations

import random

from repro import (
    PointQuery,
    Relation,
    RollupQuery,
    SliceQuery,
)
from repro.query import open_partitioned_query_engine

REGIONS = ["emea", "amer", "apac"]
DEVICES = ["desktop", "mobile", "tablet"]
BROWSERS = ["chromium", "firefox", "safari"]
DAYS = [f"day{d:02d}" for d in range(1, 8)]


def build_relation(num_hits: int = 3000, seed: int = 2026) -> Relation:
    """Synthesise the page-hit fact table (sites belong to one region)."""
    rng = random.Random(seed)
    sites = {f"site{s}": rng.choice(REGIONS) for s in range(12)}
    rows = []
    for _ in range(num_hits):
        site = rng.choice(list(sites))
        rows.append((
            sites[site],
            site,
            rng.choice(DEVICES),
            # Mobile traffic skews towards one browser: a dependence the
            # closed cube collapses into fewer cells.
            rng.choice(BROWSERS[:2]) if rng.random() < 0.7 else rng.choice(BROWSERS),
            rng.choice(DAYS),
        ))
    return Relation.from_rows(
        rows, ["region", "site", "device", "browser", "day"]
    )


def encode(relation: Relation, dim_name: str, raw: object) -> int:
    """Dictionary code of a raw value (how clients address query cells)."""
    dim = relation.schema.dimension_index(dim_name)
    for code, value in relation.decoders[dim].items():
        if value == raw:
            return code
    raise KeyError(f"{raw!r} never appears in dimension {dim_name!r}")


def describe(relation: Relation, answer) -> str:
    from repro.core.cell import format_cell

    rendered = format_cell(
        answer.cell, relation.schema.dimension_names, relation.decoders
    )
    if not answer.found:
        return f"{rendered} : below the iceberg threshold (not served)"
    return f"{rendered} : count={answer.count}"


def main() -> None:
    relation = build_relation()
    print(f"fact table: {relation.num_tuples} page hits, "
          f"cardinalities {relation.cardinalities()}")

    engine, report = open_partitioned_query_engine(
        relation, algorithm="c-cubing-star", min_sup=25
    )
    pdim = report.partition_dim
    pdim_name = relation.schema.dimension_names[pdim]
    print(f"partitioned on {pdim_name!r}: {report.num_partitions} partitions, "
          f"largest held {report.largest_partition} tuples")
    print(f"closed cube: {len(engine.cube)} cells across "
          f"{len(engine.shards)} serving shards\n")

    num_dims = relation.num_dimensions
    region = relation.schema.dimension_index("region")
    device = relation.schema.dimension_index("device")
    browser = relation.schema.dimension_index("browser")

    def cell_for(**raw_values):
        cell = [None] * num_dims
        for name, raw in raw_values.items():
            cell[relation.schema.dimension_index(name)] = encode(relation, name, raw)
        return tuple(cell)

    batch = [
        # Point: total traffic of one region (touches one shard when the
        # partitioning dimension is fixed by the query).
        PointQuery(cell_for(region="emea")),
        # Point on a non-materialised cell: answered via its closure.
        PointQuery(cell_for(region="amer", device="mobile")),
        # Roll-up: start from (emea, desktop) and collapse the device.
        RollupQuery(cell_for(region="emea", device="desktop"), (device,)),
        # Slice: mobile traffic grouped by browser, across all shards.
        SliceQuery.of({device: encode(relation, "device", "mobile")}, [browser]),
        # Slice pinned to one region, grouped by device: one shard only.
        SliceQuery.of({region: encode(relation, "region", "apac")}, [device]),
    ]

    results = engine.execute_many(batch)
    for query, result in zip(batch, results):
        print(f"{type(query).__name__}:")
        answers = result if isinstance(result, list) else [result]
        for answer in answers:
            print("   ", describe(relation, answer))
        print()

    stats = engine.stats()
    print(f"shard layout ({pdim_name!r} value -> cells): {stats['shard_sizes']}")
    print(f"cache after the batch: {stats['cache']}")


if __name__ == "__main__":
    main()
