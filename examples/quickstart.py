"""Quickstart: compute a closed iceberg cube on the paper's running example.

This reproduces Example 1 / Table 1 of the paper: a four-attribute relation,
measure ``count``, iceberg constraint ``count >= 2``.  The closed iceberg cube
contains exactly two cells — ``(a1, b1, c1, *)`` and ``(a1, *, *, *)`` — while
the covered cell ``(a1, *, c1, *)`` and the infrequent cell
``(a1, b2, c2, d2)`` are not materialised.

This walkthrough uses the *positional* facade (encoded cells); see
``examples/session_quickstart.py`` for the named-schema session API most
applications should start from.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Relation, compute_closed_cube, compute_cube, open_query_engine


def main() -> None:
    rows = [
        ("a1", "b1", "c1", "d1"),
        ("a1", "b1", "c1", "d3"),
        ("a1", "b2", "c2", "d2"),
    ]
    relation = Relation.from_rows(rows, ["A", "B", "C", "D"])

    print("Base table:")
    for row in rows:
        print("   ", row)
    print()

    closed = compute_closed_cube(relation, min_sup=2)
    print("Closed iceberg cube (count >= 2):")
    print(closed.format(relation))
    print()

    iceberg = compute_cube(relation, min_sup=2, algorithm="buc")
    print(f"The plain iceberg cube has {len(iceberg)} cells; "
          f"the closed iceberg cube has {len(closed)} cells.")
    print()

    # Quotient-cube semantics: the closed cube still answers every query.
    # The serving layer (repro.query) resolves the closure through an
    # inverted index; see examples/query_serving.py for the full tour.
    engine = open_query_engine(closed)
    query = (0, None, 0, None)  # (a1, *, c1, *) — not materialised, but answerable.
    answer = engine.point(query)
    print("Query on the non-materialised cell (a1, *, c1, *):",
          f"count = {answer.count} (carried by closed cell {answer.closure})")


if __name__ == "__main__":
    main()
