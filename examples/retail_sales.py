"""Retail OLAP scenario: closed iceberg cubes with payload measures.

A small synthetic point-of-sale fact table (store region, store, product
category, product, month) is cubed three ways:

* a plain iceberg cube with BUC,
* a closed iceberg cube with C-Cubing(MM), carrying ``sum(revenue)`` and
  ``avg(revenue)`` payload measures,
* a comparison of the two cube sizes — the compression the paper is after.

The script also shows drill-down style queries answered from the closed cube
alone (quotient semantics).

Run with::

    python examples/retail_sales.py
"""

from __future__ import annotations

import random

from repro import (
    AvgMeasure,
    Relation,
    SumMeasure,
    compute_closed_cube,
    compute_cube,
)

REGIONS = ["north", "south", "east", "west"]
CATEGORIES = ["grocery", "electronics", "clothing"]
MONTHS = ["jan", "feb", "mar", "apr"]


def build_relation(num_sales: int = 600, seed: int = 2026) -> Relation:
    """Synthesise the point-of-sale table.

    Stores belong to a region and products to a category (functional
    dependences, exactly the structure closed cubes compress well).
    """
    rng = random.Random(seed)
    stores = [f"store{i}" for i in range(12)]
    store_region = {store: REGIONS[i % len(REGIONS)] for i, store in enumerate(stores)}
    products = [f"sku{i}" for i in range(30)]
    product_category = {
        product: CATEGORIES[i % len(CATEGORIES)] for i, product in enumerate(products)
    }

    rows = []
    revenue = []
    for _ in range(num_sales):
        store = rng.choice(stores)
        product = rng.choice(products)
        month = rng.choice(MONTHS)
        rows.append(
            (store_region[store], store, product_category[product], product, month)
        )
        revenue.append(round(rng.uniform(5, 500), 2))
    return Relation.from_rows(
        rows,
        ["region", "store", "category", "product", "month"],
        measures={"revenue": revenue},
    )


def main() -> None:
    relation = build_relation()
    min_sup = 5

    iceberg = compute_cube(relation, min_sup=min_sup, algorithm="buc")
    closed = compute_closed_cube(
        relation,
        min_sup=min_sup,
        algorithm="c-cubing-mm",
        measures=[SumMeasure("revenue"), AvgMeasure("revenue")],
    )

    print(f"Sales facts          : {relation.num_tuples}")
    print(f"Iceberg cube cells   : {len(iceberg)} (~{iceberg.size_megabytes():.3f} MB)")
    print(f"Closed iceberg cells : {len(closed)} (~{closed.size_megabytes():.3f} MB)")
    print(f"Compression          : {len(closed) / len(iceberg):.2%} of the iceberg cube")
    print()

    print("Top revenue cells by region (answered from the closed cube):")
    for region_code in range(len(REGIONS)):
        cell = (region_code, None, None, None, None)
        stats = closed.closure_query(cell)
        if stats is None:
            continue
        region = relation.decode(0, region_code)
        print(f"  region={region:<6} sales={stats.count:<4} "
              f"revenue={stats.measures.get('sum(revenue)', float('nan')):.2f}")
    print()

    print("Drill-down north -> grocery (non-materialised cells still answerable):")
    north = relation.schema.dimension_index("region")
    category = relation.schema.dimension_index("category")
    cell = [None] * relation.num_dimensions
    cell[north] = 0
    cell[category] = 0
    stats = closed.closure_query(tuple(cell))
    if stats is not None:
        print(f"  count={stats.count} avg(revenue)="
              f"{stats.measures.get('avg(revenue)', float('nan')):.2f}")


if __name__ == "__main__":
    main()
