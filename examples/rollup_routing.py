"""Adaptive rollups: record a workload, materialise its hot grains, route.

A serving cube watches its own query stream.  This walkthrough:

1. builds a closed cube and replays a skewed dashboard workload (most
   queries slice ``store x product``, a long tail touches everything else),
2. asks the advisor what it *would* materialise (``advise_rollups()``),
3. materialises the hot grains under a byte budget
   (``enable_rollups()``) — subsequent queries matching an installed
   grain are answered from flat pre-aggregated tables, the rest fall
   back to the closed-cube engine, answers identical either way,
4. appends new rows — the rollup tables are maintained from the same
   delta the cube merge consumes, so routed answers stay fresh,
5. prints the router's per-grain hit statistics.

Run with::

    python examples/rollup_routing.py
"""

from __future__ import annotations

import random

from repro import Avg, CubeSession, Sum

STORES = [f"store{i}" for i in range(12)]
PRODUCTS = [f"product{i}" for i in range(10)]
REGIONS = ["west", "east", "north", "south"]
DAYS = [f"day{i}" for i in range(7)]


def fact_rows(num_rows: int, seed: int):
    rng = random.Random(seed)
    return [
        (
            rng.choice(STORES),
            rng.choice(PRODUCTS),
            rng.choice(REGIONS),
            rng.choice(DAYS),
            round(rng.uniform(3.0, 60.0), 2),
        )
        for _ in range(num_rows)
    ]


def dashboard_traffic(cube, queries: int, seed: int) -> None:
    """The skewed workload: 80% store/product dashboards, 20% tail."""
    rng = random.Random(seed)
    for _ in range(queries):
        if rng.random() < 0.8:
            cube.slice({"store": rng.choice(STORES)}, group_by=["product"])
        else:
            cube.slice({"region": rng.choice(REGIONS)}, group_by=["day"])


def main() -> None:
    schema = {
        "dimensions": ["store", "product", "region", "day"],
        "measures": ["price"],
    }
    cube = (
        CubeSession.from_rows(fact_rows(6000, seed=1), schema=schema)
        .closed(min_sup=1)
        .measures(Sum("price"), Avg("price"))
        .build()
    )
    print(f"1) built a closed cube: {len(cube)} cells over "
          f"{cube.relation.num_tuples} rows")

    print("2) replay a skewed workload, then ask the advisor (dry run)")
    dashboard_traffic(cube, queries=400, seed=2)
    advice = cube.advise_rollups(budget_bytes=256_000, top_k=4)
    for choice in advice["choices"]:
        if choice["reason"] != "selected":
            continue
        print(f"   would materialise grain {tuple(choice['dims'])}: "
              f"~{choice['estimated_rows']} rows, "
              f"{choice['estimated_bytes']:,} bytes")

    print("3) enable routing (materialise under the budget)")
    report = cube.enable_rollups(budget_bytes=256_000, top_k=4)
    print(f"   installed {len(report['installed'])} grains, "
          f"{report['total_bytes']:,} bytes total")

    sample = cube.slice({"store": "store3"}, group_by=["product"])
    print(f"   routed slice store3 x product: {len(sample)} cells, e.g. "
          f"{sample[0].coordinates_dict()} count={sample[0].count}")

    print("4) append fresh rows; rollups ride the same delta as the cube")
    append = cube.append(fact_rows(1500, seed=3))
    print(f"   appended {append.appended_rows} rows via {append.mode}")
    after = cube.slice({"store": "store3"}, group_by=["product"])
    total_before = sum(answer.count for answer in sample)
    total_after = sum(answer.count for answer in after)
    print(f"   store3 dashboard count {total_before} -> {total_after} "
          "(no cache staleness, no rebuild)")

    print("5) router statistics")
    stats = cube.rollup_stats()
    print(f"   routed {stats['routed_slices']} slices "
          f"({stats['exact_grain']} exact, {stats['reaggregated']} "
          f"reaggregated), {stats['fallbacks']} fallbacks")
    for grain, entry in sorted(stats["tables"].items()):
        print(f"   grain [{', '.join(entry['dimensions'])}]: "
              f"{entry['rows']} rows, {entry['hits']} hits")


if __name__ == "__main__":
    main()
