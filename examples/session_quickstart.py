"""Session quickstart: from raw string rows to named queries, end to end.

The tour of the named-schema API (:mod:`repro.session`):

1. build a :class:`CubeSession` straight from raw rows (no hand-encoding),
2. let ``using("auto")`` plan the C-Cubing variant from the relation's shape,
3. query by dimension *names* and raw values — point, slice, roll-up, batch,
4. ask ``explain()`` which materialised closed cell covered each answer.

Run with::

    python examples/session_quickstart.py
"""

from __future__ import annotations

import random

from repro import Avg, CubeSession, Sum


def retail_rows(num_rows: int = 2000, seed: int = 7):
    """A small retail fact table: (store, product, day, price)."""
    rng = random.Random(seed)
    stores = ["nyc", "sfo", "chi"]
    products = ["shoe", "sock", "hat", "belt"]
    days = ["mon", "tue", "wed", "thu", "fri"]
    rows = []
    for _ in range(num_rows):
        store = rng.choices(stores, weights=(5, 3, 2))[0]
        product = rng.choices(products, weights=(4, 3, 2, 1))[0]
        rows.append((store, product, rng.choice(days), round(rng.uniform(5, 80), 2)))
    return rows


def main() -> None:
    session = (
        CubeSession.from_rows(
            retail_rows(),
            schema={
                "dimensions": ["store", "product", "day"],
                "measures": ["price"],
            },
        )
        .closed(min_sup=5)
        .measures(Sum("price"), Avg("price"))
        .using("auto")
    )

    print("Planner decision:")
    print(session.plan().explain())
    print()

    cube = session.build()
    print(f"Built {cube!r} in {cube.build_seconds:.3f}s")
    print()

    answer = cube.point({"store": "nyc", "product": "shoe"})
    print("point(store=nyc, product=shoe):",
          f"count={answer.count}, sum(price)={answer.measure('sum(price)'):.2f}")

    print("\nrollup to product:")
    for row in cube.rollup(["product"]):
        coords = row.coordinates_dict()
        print(f"  {coords['product']:<5} count={row.count:<5} "
              f"avg(price)={row.measure('avg(price)'):.2f}")

    print("\nslice day=mon grouped by store:")
    for row in cube.slice({"day": "mon"}, group_by=["store"]):
        print(f"  {row.coordinates_dict()['store']:<4} count={row.count}")

    print("\nbatched queries (order-preserving):")
    results = cube.query_many(
        [
            {"store": "sfo"},
            {"op": "rollup", "dims": ["day"]},
            {"op": "slice", "fixed": {"product": "hat"}, "group_by": ["store"]},
        ]
    )
    print(f"  sfo count={results[0].count}, "
          f"{len(results[1])} day cells, {len(results[2])} hat/store cells")

    print("\nexplain(store=chi, product=belt):")
    print(cube.explain({"store": "chi", "product": "belt"}).describe())


if __name__ == "__main__":
    main()
