"""Weather-trace scenario: algorithm selection and dimension ordering.

This example mirrors the paper's real-data experiments on the (simulated)
synoptic weather trace:

* it computes the closed iceberg cube with all three C-Cubing variants plus
  QC-DFS and reports their runtimes and pruning counters,
* it shows how the dimension-ordering heuristics of Section 5.5
  (original / cardinality / entropy) change the StarArray runtime,
* it mines a handful of closed rules (Section 6.2) that expose the
  station -> latitude/longitude dependences baked into the trace.

Run with::

    python examples/weather_station.py
"""

from __future__ import annotations

from repro import run_algorithm
from repro.core.validate import reference_closed_cube
from repro.datagen.weather import WeatherConfig, generate_weather_relation, weather_subset
from repro.rules.closed_rules import compression_report, mine_closed_rules


def main() -> None:
    config = WeatherConfig(num_tuples=900, seed=11)
    relation = weather_subset(generate_weather_relation(config), 6)
    min_sup = 4

    print(f"Weather trace: {relation.num_tuples} reports, "
          f"{relation.num_dimensions} dimensions, cardinalities {relation.cardinalities()}")
    print()

    print(f"Closed iceberg cube, min_sup={min_sup}:")
    results = {}
    for name in ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array", "qc-dfs"):
        result = run_algorithm(relation, name, min_sup=min_sup, closed=True)
        results[name] = result
        pruning = {
            key: value
            for key, value in result.stats.items()
            if "pruned" in key or "shortcut" in key
        }
        print(f"  {name:<22} {result.elapsed_seconds:7.3f}s  "
              f"cells={len(result.cube):<5} pruning={pruning}")
    cubes = [result.cube for result in results.values()]
    assert all(cubes[0].same_cells(cube) for cube in cubes[1:]), "engines disagree!"
    print()

    print("Dimension ordering (C-Cubing(StarArray)):")
    for order in ("original", "cardinality", "entropy"):
        result = run_algorithm(
            relation, "c-cubing-star-array", min_sup=min_sup, closed=True,
            dimension_order=order,
        )
        print(f"  {order:<12} {result.elapsed_seconds:7.3f}s")
    print()

    small = weather_subset(generate_weather_relation(WeatherConfig(num_tuples=300, seed=11)), 5)
    closed = reference_closed_cube(small, min_sup=4)
    rules = mine_closed_rules(small, closed, max_condition_arity=2)
    report = compression_report(closed, rules)
    print(f"Closed rules on a 5-dimension slice: {report['closed_rules']} rules "
          f"for {report['closed_cells']} closed cells "
          f"({report['rules_per_cell']:.2f} rules per cell)")
    print("A few mined rules:")
    for rule in list(sorted(rules, key=lambda r: (len(r.condition), r.condition)))[:5]:
        print("   ", rule.format(small))


if __name__ == "__main__":
    main()
