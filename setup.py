"""Setuptools entry point.

The pyproject.toml carries the project metadata; this file exists so that
editable installs keep working on minimal environments that lack the
``wheel`` package (pip falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
