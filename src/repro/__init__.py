"""repro: a reproduction of "C-Cubing: Efficient Computation of Closed Cubes by
Aggregation-Based Checking" (Xin, Shao, Han, Liu — ICDE 2006).

The package provides:

* a fact-table substrate (:class:`repro.core.relation.Relation`),
* the aggregation-based closedness measure
  (:class:`repro.core.closedness.ClosednessState`),
* the paper's three closed-cubing algorithms — C-Cubing(MM), C-Cubing(Star),
  C-Cubing(StarArray) — together with their iceberg engines (MM-Cubing,
  Star-Cubing, StarArray) and the baselines they are compared against
  (BUC, QC-DFS, output-index checking, a brute-force oracle),
* synthetic and weather-like data generators matching the paper's workloads,
* closed-rule mining (Section 6.2) and partitioned computation (Section 6.3),
* a benchmark harness regenerating every figure of the evaluation section,
* a closure-query serving layer (:mod:`repro.query`) answering point, slice,
  and roll-up queries on any lattice cell from the closed cube alone, via
  per-dimension inverted indexes, an LRU cache, and partition-aware routing,
* a named-schema session API (:mod:`repro.session`) — the documented entry
  point: named dimensions and measures, raw values, a fluent build chain, and
  an algorithm auto-planner,
* incremental cube maintenance (:mod:`repro.incremental`) — append fact rows
  to a served cube and merge a delta cube in with aggregation-based
  closedness repair instead of recomputing, with in-place index maintenance
  and targeted cache invalidation,
* snapshot persistence (:mod:`repro.storage.snapshot`) — a versioned on-disk
  format (``ServingCube.save`` / ``ServingCube.load``) so a cube survives
  process restarts and keeps appending afterwards,
* a multi-cube catalog (:mod:`repro.catalog`) — named serving cubes over one
  durable directory (per-cube snapshots + replayable append streams),
* concurrent serving (:mod:`repro.server`) — an asyncio front end with query
  batching, back-pressure, and copy-on-publish appends (optionally computed
  in a process pool) that never block the read hot path; ``python -m
  repro.server`` exposes it over a line-JSON TCP protocol,
* a replicated serving tier (:mod:`repro.replication`) — per-cube
  single-writer leases held through the catalog manifest (epoch-fenced
  appends), a :class:`~repro.replication.ReplicationTailer` replaying the
  append journal into read-only follower replicas (``python -m
  repro.replication``), and a :class:`~repro.replication.ReplicaSet` client
  routing writes to the leader and load-balancing reads over followers.

Quick start::

    from repro import CubeSession

    rows = [("a1", "b1", "c1", "d1"),
            ("a1", "b1", "c1", "d3"),
            ("a1", "b2", "c2", "d2")]
    cube = (
        CubeSession.from_rows(rows, schema=["A", "B", "C", "D"])
        .closed(min_sup=2)
        .using("auto")
        .build()
    )
    print(cube.point({"A": "a1", "C": "c1"}).count)   # -> 2
    print(cube.explain({"A": "a1", "C": "c1"}).describe())

The positional facade (:func:`repro.core.api.compute_closed_cube` and
friends) remains fully supported as the layer the session delegates to; see
``docs/MIGRATION.md``.
"""

from .core.api import (
    DEFAULT_CLOSED_ALGORITHM,
    DEFAULT_ICEBERG_ALGORITHM,
    compute_closed_cube,
    compute_cube,
    open_query_engine,
    run_algorithm,
)
from .core.cube import CellStats, CubeResult
from .core.errors import ReproError
from .core.measures import (
    AvgMeasure,
    CountMeasure,
    IcebergCondition,
    MaxMeasure,
    MeasureSet,
    MinMeasure,
    SumMeasure,
)
from .core.relation import Relation, Schema
from .algorithms.base import (
    algorithm_capabilities,
    algorithms_supporting_closed,
    available_algorithms,
)
from .session import (
    Avg,
    Count,
    CubeSchema,
    CubeSession,
    CubeView,
    Explanation,
    Max,
    Min,
    NamedAnswer,
    Plan,
    RelationStats,
    ServingConfig,
    ServingCube,
    Sum,
    plan_algorithm,
)
from .catalog import CubeCatalog
from .concurrency import RWLock
from .incremental import (
    AppendReport,
    MergeReport,
    create_refresh_pool,
    merge_closed_cubes,
)
from .server import AsyncCubeServer, serve_tcp
from .replication import (
    CubeFollower,
    CubeLease,
    ReplicaSet,
    ReplicationTailer,
)
from .storage import load_snapshot, save_snapshot
from .query import (
    PartitionedQueryEngine,
    PointQuery,
    QueryAnswer,
    QueryEngine,
    RollupQuery,
    SliceQuery,
    open_partitioned_query_engine,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CubeSession",
    "ServingCube",
    "ServingConfig",
    "CubeView",
    "CubeCatalog",
    "AsyncCubeServer",
    "serve_tcp",
    "CubeFollower",
    "CubeLease",
    "ReplicaSet",
    "ReplicationTailer",
    "RWLock",
    "create_refresh_pool",
    "NamedAnswer",
    "Explanation",
    "CubeSchema",
    "AppendReport",
    "MergeReport",
    "merge_closed_cubes",
    "load_snapshot",
    "save_snapshot",
    "Plan",
    "RelationStats",
    "plan_algorithm",
    "Sum",
    "Min",
    "Max",
    "Avg",
    "Count",
    "Relation",
    "Schema",
    "CubeResult",
    "CellStats",
    "ReproError",
    "compute_cube",
    "compute_closed_cube",
    "run_algorithm",
    "open_query_engine",
    "open_partitioned_query_engine",
    "QueryEngine",
    "PartitionedQueryEngine",
    "QueryAnswer",
    "PointQuery",
    "SliceQuery",
    "RollupQuery",
    "available_algorithms",
    "algorithms_supporting_closed",
    "algorithm_capabilities",
    "DEFAULT_CLOSED_ALGORITHM",
    "DEFAULT_ICEBERG_ALGORITHM",
    "CountMeasure",
    "SumMeasure",
    "MinMeasure",
    "MaxMeasure",
    "AvgMeasure",
    "MeasureSet",
    "IcebergCondition",
]
