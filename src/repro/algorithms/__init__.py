"""Cubing algorithms: the paper's three C-Cubing variants, their engines, and baselines.

Importing this package registers every algorithm with the registry in
:mod:`repro.algorithms.base`, so the public API and benchmark harness can look
them up by name.
"""

from .base import (
    CubingAlgorithm,
    CubingOptions,
    RunResult,
    available_algorithms,
    algorithms_supporting_closed,
    get_algorithm,
    register_algorithm,
)
from .naive import NaiveClosedCubing, NaiveCubing
from .buc import BUC
from .qc_dfs import QCDFS
from .output_based import OutputCheckedClosedCubing
from .multiway import DenseSubspace
from .mm_cubing import MMCubing
from .c_mm import CCubingMM
from .star_cubing import StarCubing
from .star_array import StarArrayCubing
from .c_star import CCubingStar
from .c_star_array import CCubingStarArray

__all__ = [
    "CubingAlgorithm",
    "CubingOptions",
    "RunResult",
    "available_algorithms",
    "algorithms_supporting_closed",
    "get_algorithm",
    "register_algorithm",
    "NaiveCubing",
    "NaiveClosedCubing",
    "BUC",
    "QCDFS",
    "OutputCheckedClosedCubing",
    "DenseSubspace",
    "MMCubing",
    "CCubingMM",
    "StarCubing",
    "StarArrayCubing",
    "CCubingStar",
    "CCubingStarArray",
]
