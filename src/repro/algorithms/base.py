"""Common plumbing for cubing algorithms: options, the ABC, and the registry.

Every algorithm in :mod:`repro.algorithms` is a subclass of
:class:`CubingAlgorithm` and is registered under one or more names (the names
used in the paper's figures, e.g. ``"c-cubing-star"`` or ``"qc-dfs"``).  The
public API (:mod:`repro.core.api`) and the benchmark harness look algorithms up
through :func:`get_algorithm` so that figure specifications can refer to them
by name.
"""

from __future__ import annotations

import difflib
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Type

from ..core.cube import CubeResult
from ..core.errors import AlgorithmError, UnknownAlgorithmError
from ..core.measures import IcebergCondition, MeasureSet
from ..core.ordering import resolve_order
from ..core.relation import Relation


@dataclass(frozen=True)
class CubingOptions:
    """Options shared by every cubing algorithm.

    Attributes
    ----------
    min_sup:
        The iceberg threshold on ``count`` (Definition 2).  ``1`` computes the
        full (closed) cube.
    closed:
        When ``True`` the algorithm emits only closed cells; algorithms that
        cannot compute closed cubes reject this flag.
    measures:
        Payload measures aggregated alongside ``count``.
    iceberg:
        Full iceberg condition; when ``None`` it is derived from ``min_sup``.
    dimension_order:
        Ordering strategy for order-sensitive algorithms — a strategy name
        (``"original"``, ``"cardinality"``, ``"entropy"``), an explicit
        permutation, a callable, or ``None``.
    initial_collapsed:
        Dimensions to treat as collapsed from the start (their output value is
        always ``*``).  Used by the partitioned-computation driver
        (Section 6.3) to compute the ``*``-slice of a partitioning dimension.
    """

    min_sup: int = 1
    closed: bool = False
    measures: MeasureSet = field(default_factory=MeasureSet)
    iceberg: Optional[IcebergCondition] = None
    dimension_order: object = None
    initial_collapsed: Sequence[int] = ()

    def resolved_iceberg(self) -> IcebergCondition:
        """The iceberg condition, built from ``min_sup`` when not given explicitly."""
        if self.iceberg is not None:
            if self.iceberg.min_sup != self.min_sup:
                raise AlgorithmError(
                    "iceberg.min_sup and options.min_sup disagree "
                    f"({self.iceberg.min_sup} vs {self.min_sup})"
                )
            return self.iceberg
        return IcebergCondition(min_sup=self.min_sup)

    def with_overrides(self, **kwargs: object) -> "CubingOptions":
        """A copy of these options with some fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


@dataclass
class RunResult:
    """A cube together with bookkeeping the benchmark harness cares about."""

    cube: CubeResult
    elapsed_seconds: float
    algorithm: str
    stats: Dict[str, int] = field(default_factory=dict)


class CubingAlgorithm(ABC):
    """Base class of every cubing algorithm.

    Subclasses implement :meth:`compute`; the base class provides option
    validation, timing (:meth:`run`), and dimension-order resolution.
    """

    #: Primary registry name.
    name: str = "abstract"
    #: ``True`` when the algorithm can emit closed cubes.
    supports_closed: bool = False
    #: ``True`` when the algorithm can emit non-closed (iceberg) cubes.
    supports_non_closed: bool = True
    #: ``True`` when the algorithm can aggregate payload measures alongside
    #: ``count`` (the star family aggregates count only).
    supports_measures: bool = True
    #: ``True`` when the result depends on the dimension order option.
    order_sensitive: bool = False

    def __init__(self, options: Optional[CubingOptions] = None) -> None:
        self.options = options or CubingOptions()
        #: Per-run counters (pruning events, nodes built, ...) exposed to the
        #: benchmark harness; subclasses update this inside ``compute``.
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------ #

    def validate_options(self) -> None:
        """Reject option combinations the algorithm cannot honour."""
        if self.options.closed and not self.supports_closed:
            raise AlgorithmError(
                f"{self.name} cannot compute closed cubes; "
                "use one of the C-Cubing variants or QC-DFS"
            )
        if not self.options.closed and not self.supports_non_closed:
            raise AlgorithmError(
                f"{self.name} only computes closed cubes; set closed=True"
            )
        if self.options.measures and not self.supports_measures:
            raise AlgorithmError(
                f"{self.name} aggregates count only; payload measures are not "
                "supported (use the MM family, BUC, or the naive oracle)"
            )
        if self.options.min_sup < 1:
            raise AlgorithmError("min_sup must be at least 1")
        collapsed = list(self.options.initial_collapsed)
        if len(set(collapsed)) != len(collapsed):
            raise AlgorithmError("initial_collapsed contains duplicates")

    def validate_against_relation(self, relation: Relation) -> None:
        """Reject options that are inconsistent with the input relation.

        Called by :meth:`run` once the relation is known, so that bad indices
        fail here with a clear message instead of deep inside an algorithm's
        recursion (typically as an opaque ``IndexError``).
        """
        arity = relation.num_dimensions
        bad = [
            dim
            for dim in self.options.initial_collapsed
            if not isinstance(dim, int) or not 0 <= dim < arity
        ]
        if bad:
            raise AlgorithmError(
                f"initial_collapsed references dimensions {bad} outside the "
                f"relation's range 0..{arity - 1} "
                f"(dimensions: {list(relation.schema.dimension_names)})"
            )

    def resolve_order(self, relation: Relation) -> List[int]:
        """Concrete dimension processing order for this run."""
        return resolve_order(relation, self.options.dimension_order)

    # ------------------------------------------------------------------ #

    @abstractmethod
    def compute(self, relation: Relation) -> CubeResult:
        """Compute the (closed) iceberg cube of ``relation``."""

    def run(self, relation: Relation) -> RunResult:
        """Validate options, compute the cube, and time the computation."""
        self.validate_options()
        self.validate_against_relation(relation)
        self.counters = {}
        start = time.perf_counter()
        cube = self.compute(relation)
        elapsed = time.perf_counter() - start
        # Retain the measure set on the result so finalised per-cell values
        # stay reconstructible into mergeable states post-run (the contract
        # incremental maintenance and snapshot reload rely on).
        cube.measure_set = self.options.measures
        return RunResult(cube, elapsed, self.name, dict(self.counters))

    def run_delta(
        self,
        relation: Relation,
        start_tid: int,
        delta_relation: Optional[Relation] = None,
    ) -> RunResult:
        """Compute a cube over only the tuples appended since ``start_tid``.

        The *delta mode* of :meth:`run`: ``relation`` is the already-grown
        fact table (see :meth:`repro.core.relation.Relation.append_rows`) and
        ``start_tid`` the first appended tuple id.  The algorithm runs
        unchanged over the delta window — sharing the relation's (append-only)
        dictionary encoding, so delta cells use the same codes as the base
        cube — and the resulting cube's representative tuple ids are shifted
        back into the full relation's tid space, which is exactly what
        :meth:`repro.core.cube.CubeResult.merge` needs to re-evaluate
        closedness against the combined data.

        ``delta_relation`` lets a caller that already materialised the delta
        window (e.g. to plan the algorithm from its shape) pass it in instead
        of re-selecting it; it must equal
        ``relation.select(range(start_tid, relation.num_tuples))``.
        """
        if not 0 <= start_tid <= relation.num_tuples:
            raise AlgorithmError(
                f"delta start tid {start_tid} outside 0..{relation.num_tuples}"
            )
        if delta_relation is None:
            delta_relation = relation.select(range(start_tid, relation.num_tuples))
        elif delta_relation.num_tuples != relation.num_tuples - start_tid:
            raise AlgorithmError(
                f"delta_relation has {delta_relation.num_tuples} tuples; the "
                f"window {start_tid}..{relation.num_tuples} has "
                f"{relation.num_tuples - start_tid}"
            )
        result = self.run(delta_relation)
        result.cube.shift_rep_tids(start_tid)
        result.stats["delta_tuples"] = relation.num_tuples - start_tid
        return result

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named per-run counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #

_REGISTRY: Dict[str, Type[CubingAlgorithm]] = {}

#: Name reserved for planner-resolved algorithm selection (see
#: :func:`resolve_algorithm`); never a registry key itself.
AUTO_ALGORITHM = "auto"


def register_algorithm(
    cls: Type[CubingAlgorithm], aliases: Iterable[str] = ()
) -> Type[CubingAlgorithm]:
    """Register an algorithm class under its ``name`` and any aliases."""
    for key in [cls.name, *aliases]:
        normalized = key.lower()
        if normalized == AUTO_ALGORITHM:
            raise AlgorithmError(
                f"{AUTO_ALGORITHM!r} is reserved for planner-based selection"
            )
        existing = _REGISTRY.get(normalized)
        if existing is not None and existing is not cls:
            raise AlgorithmError(
                f"algorithm name {normalized!r} already registered for "
                f"{existing.__name__}"
            )
        _REGISTRY[normalized] = cls
    return cls


def get_algorithm(
    name: str, options: Optional[CubingOptions] = None
) -> CubingAlgorithm:
    """Instantiate a registered algorithm by name (primary name or alias)."""
    cls = _REGISTRY.get(name.lower())
    if cls is None:
        suggestions = difflib.get_close_matches(
            name.lower(), sorted(_REGISTRY), n=1, cutoff=0.4
        )
        hint = f"; did you mean {suggestions[0]!r}?" if suggestions else ""
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}{hint} "
            f"(available: {available_algorithms()}; pass {AUTO_ALGORITHM!r} "
            "to let the planner choose)"
        )
    return cls(options)


def available_algorithms(include_aliases: bool = False) -> List[str]:
    """Registered algorithm names.

    By default only *primary* names are returned (one per algorithm, the names
    used in the paper's figures and in error messages); with
    ``include_aliases=True`` every accepted spelling is included.
    """
    if include_aliases:
        return sorted(_REGISTRY)
    return sorted({cls.name for cls in _REGISTRY.values()})


def algorithms_supporting_closed() -> List[str]:
    """Primary names of the algorithms that can emit closed cubes."""
    return sorted({cls.name for cls in _REGISTRY.values() if cls.supports_closed})


def algorithm_capabilities() -> Dict[str, Dict[str, object]]:
    """Capability metadata per primary algorithm name.

    Each entry reports what the planner (and callers) may assume about the
    algorithm: whether it can emit closed / non-closed cubes, whether its
    result depends on the dimension order option, and which alias spellings
    resolve to it.
    """
    capabilities: Dict[str, Dict[str, object]] = {}
    for key, cls in _REGISTRY.items():
        entry = capabilities.setdefault(
            cls.name,
            {
                "supports_closed": cls.supports_closed,
                "supports_non_closed": cls.supports_non_closed,
                "supports_measures": cls.supports_measures,
                "order_sensitive": cls.order_sensitive,
                "aliases": [],
            },
        )
        if key != cls.name.lower():
            entry["aliases"].append(key)  # type: ignore[union-attr]
    for entry in capabilities.values():
        entry["aliases"] = sorted(entry["aliases"])  # type: ignore[arg-type]
    return capabilities


# --------------------------------------------------------------------------- #
# Planner hook                                                                 #
# --------------------------------------------------------------------------- #

#: Signature of an auto-planner: given the input relation and the run options,
#: return the registry name of the algorithm to use.
Planner = Callable[[Relation, CubingOptions], str]

_PLANNER: Optional[Planner] = None


def register_planner(planner: Planner) -> Planner:
    """Install the planner consulted when an algorithm is named ``"auto"``."""
    global _PLANNER
    _PLANNER = planner
    return planner


def resolve_algorithm(name: str, relation: Relation, options: CubingOptions) -> str:
    """Resolve ``name`` to a concrete registry name, planning when ``"auto"``.

    Non-``"auto"`` names pass through unchanged (including unknown ones —
    :func:`get_algorithm` reports those).  ``"auto"`` consults the planner
    registered via :func:`register_planner`; the default planner
    (:mod:`repro.session.planner`) is loaded lazily on first use.
    """
    if name.lower() != AUTO_ALGORITHM:
        return name
    if _PLANNER is None:
        from ..session import planner as _default_planner  # noqa: F401  (self-registers)
    if _PLANNER is None:  # pragma: no cover - defensive
        raise AlgorithmError("no auto-planner is registered")
    return _PLANNER(relation, options)
