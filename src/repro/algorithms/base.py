"""Common plumbing for cubing algorithms: options, the ABC, and the registry.

Every algorithm in :mod:`repro.algorithms` is a subclass of
:class:`CubingAlgorithm` and is registered under one or more names (the names
used in the paper's figures, e.g. ``"c-cubing-star"`` or ``"qc-dfs"``).  The
public API (:mod:`repro.core.api`) and the benchmark harness look algorithms up
through :func:`get_algorithm` so that figure specifications can refer to them
by name.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Type

from ..core.cube import CubeResult
from ..core.errors import AlgorithmError, UnknownAlgorithmError
from ..core.measures import EMPTY_MEASURES, IcebergCondition, MeasureSet
from ..core.ordering import resolve_order
from ..core.relation import Relation


@dataclass(frozen=True)
class CubingOptions:
    """Options shared by every cubing algorithm.

    Attributes
    ----------
    min_sup:
        The iceberg threshold on ``count`` (Definition 2).  ``1`` computes the
        full (closed) cube.
    closed:
        When ``True`` the algorithm emits only closed cells; algorithms that
        cannot compute closed cubes reject this flag.
    measures:
        Payload measures aggregated alongside ``count``.
    iceberg:
        Full iceberg condition; when ``None`` it is derived from ``min_sup``.
    dimension_order:
        Ordering strategy for order-sensitive algorithms — a strategy name
        (``"original"``, ``"cardinality"``, ``"entropy"``), an explicit
        permutation, a callable, or ``None``.
    initial_collapsed:
        Dimensions to treat as collapsed from the start (their output value is
        always ``*``).  Used by the partitioned-computation driver
        (Section 6.3) to compute the ``*``-slice of a partitioning dimension.
    """

    min_sup: int = 1
    closed: bool = False
    measures: MeasureSet = field(default_factory=MeasureSet)
    iceberg: Optional[IcebergCondition] = None
    dimension_order: object = None
    initial_collapsed: Sequence[int] = ()

    def resolved_iceberg(self) -> IcebergCondition:
        """The iceberg condition, built from ``min_sup`` when not given explicitly."""
        if self.iceberg is not None:
            if self.iceberg.min_sup != self.min_sup:
                raise AlgorithmError(
                    "iceberg.min_sup and options.min_sup disagree "
                    f"({self.iceberg.min_sup} vs {self.min_sup})"
                )
            return self.iceberg
        return IcebergCondition(min_sup=self.min_sup)

    def with_overrides(self, **kwargs: object) -> "CubingOptions":
        """A copy of these options with some fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


@dataclass
class RunResult:
    """A cube together with bookkeeping the benchmark harness cares about."""

    cube: CubeResult
    elapsed_seconds: float
    algorithm: str
    stats: Dict[str, int] = field(default_factory=dict)


class CubingAlgorithm(ABC):
    """Base class of every cubing algorithm.

    Subclasses implement :meth:`compute`; the base class provides option
    validation, timing (:meth:`run`), and dimension-order resolution.
    """

    #: Primary registry name.
    name: str = "abstract"
    #: ``True`` when the algorithm can emit closed cubes.
    supports_closed: bool = False
    #: ``True`` when the algorithm can emit non-closed (iceberg) cubes.
    supports_non_closed: bool = True
    #: ``True`` when the result depends on the dimension order option.
    order_sensitive: bool = False

    def __init__(self, options: Optional[CubingOptions] = None) -> None:
        self.options = options or CubingOptions()
        #: Per-run counters (pruning events, nodes built, ...) exposed to the
        #: benchmark harness; subclasses update this inside ``compute``.
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------ #

    def validate_options(self) -> None:
        """Reject option combinations the algorithm cannot honour."""
        if self.options.closed and not self.supports_closed:
            raise AlgorithmError(
                f"{self.name} cannot compute closed cubes; "
                "use one of the C-Cubing variants or QC-DFS"
            )
        if not self.options.closed and not self.supports_non_closed:
            raise AlgorithmError(
                f"{self.name} only computes closed cubes; set closed=True"
            )
        if self.options.min_sup < 1:
            raise AlgorithmError("min_sup must be at least 1")
        collapsed = list(self.options.initial_collapsed)
        if len(set(collapsed)) != len(collapsed):
            raise AlgorithmError("initial_collapsed contains duplicates")

    def resolve_order(self, relation: Relation) -> List[int]:
        """Concrete dimension processing order for this run."""
        return resolve_order(relation, self.options.dimension_order)

    # ------------------------------------------------------------------ #

    @abstractmethod
    def compute(self, relation: Relation) -> CubeResult:
        """Compute the (closed) iceberg cube of ``relation``."""

    def run(self, relation: Relation) -> RunResult:
        """Validate options, compute the cube, and time the computation."""
        self.validate_options()
        self.counters = {}
        start = time.perf_counter()
        cube = self.compute(relation)
        elapsed = time.perf_counter() - start
        return RunResult(cube, elapsed, self.name, dict(self.counters))

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named per-run counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #

_REGISTRY: Dict[str, Type[CubingAlgorithm]] = {}


def register_algorithm(
    cls: Type[CubingAlgorithm], aliases: Iterable[str] = ()
) -> Type[CubingAlgorithm]:
    """Register an algorithm class under its ``name`` and any aliases."""
    for key in [cls.name, *aliases]:
        normalized = key.lower()
        existing = _REGISTRY.get(normalized)
        if existing is not None and existing is not cls:
            raise AlgorithmError(
                f"algorithm name {normalized!r} already registered for "
                f"{existing.__name__}"
            )
        _REGISTRY[normalized] = cls
    return cls


def get_algorithm(
    name: str, options: Optional[CubingOptions] = None
) -> CubingAlgorithm:
    """Instantiate a registered algorithm by name."""
    cls = _REGISTRY.get(name.lower())
    if cls is None:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: {sorted(set(_REGISTRY))}"
        )
    return cls(options)


def available_algorithms() -> List[str]:
    """Primary names of every registered algorithm."""
    return sorted({cls.name for cls in _REGISTRY.values()})


def algorithms_supporting_closed() -> List[str]:
    """Primary names of the algorithms that can emit closed cubes."""
    return sorted({cls.name for cls in _REGISTRY.values() if cls.supports_closed})
