"""BUC: Bottom-Up Computation of sparse and iceberg cubes (Beyer & Ramakrishnan).

BUC expands group-bys dimension by dimension.  Starting from the apex (all
``*``), it partitions the current tuple set on the first unprocessed dimension
and recurses into every partition whose size passes ``min_sup`` — the
Apriori-style pruning that makes BUC effective on sparse data.  Each recursion
level emits one cell (the group-by of the dimensions fixed so far).

This implementation is the substrate for two closed-cubing baselines:

* :class:`repro.algorithms.qc_dfs.QCDFS` layers the Quotient-Cube scan-based
  upper-bound checking on top of the same recursion, and
* :class:`repro.algorithms.output_based.OutputCheckedClosedCubing` layers an
  output-index closedness check on top of it.

To make that layering explicit the partition recursion is factored into
:meth:`BUC._process_partition`, which subclasses override.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.cell import Cell
from ..core.cube import CubeResult
from ..core.relation import Relation
from ..vector import kernels
from .base import CubingAlgorithm, register_algorithm


class BUC(CubingAlgorithm):
    """Iceberg cube computation by bottom-up partitioning with Apriori pruning."""

    name = "buc"
    supports_closed = False
    supports_non_closed = True
    order_sensitive = True

    #: Partition with counting sort over the dimension's full code range, as in
    #: the original BUC (and therefore QC-DFS).  Counting sort pays O(C) per
    #: partitioning call, which is exactly the high-cardinality cost the paper
    #: attributes to QC-DFS; set to ``False`` to use hash partitioning instead.
    counting_sort = True

    def compute(self, relation: Relation) -> CubeResult:
        self._relation = relation
        self._iceberg = self.options.resolved_iceberg()
        self._measures = self.options.measures
        self._num_dims = relation.num_dimensions
        self._cube = CubeResult(self._num_dims, name=self.name)
        collapsed = set(self.options.initial_collapsed)
        self._dims = [
            dim for dim in self.resolve_order(relation) if dim not in collapsed
        ]
        self._code_range = [
            (max(column) + 1 if column else 0) for column in relation.columns
        ]

        all_tids = list(range(relation.num_tuples))
        if self._iceberg.accepts_count(len(all_tids)):
            self._recurse(all_tids, 0, {})
        return self._cube

    # ------------------------------------------------------------------ #
    # Recursion                                                           #
    # ------------------------------------------------------------------ #

    def _recurse(
        self, tids: List[int], dim_index: int, assignment: Dict[int, int]
    ) -> None:
        """Emit the cell for ``assignment`` and expand remaining dimensions.

        ``dim_index`` is the position in the processing order from which
        dimensions may still be fixed; earlier dimensions are either fixed in
        ``assignment`` or permanently ``*`` for this branch (standard BUC).
        """
        if self._process_partition(tids, dim_index, assignment):
            return
        self._expand(tids, dim_index, assignment)

    def _expand(
        self, tids: List[int], dim_index: int, assignment: Dict[int, int]
    ) -> None:
        """Partition on each remaining dimension and recurse (Apriori-pruned)."""
        for position in range(dim_index, len(self._dims)):
            dim = self._dims[position]
            partitions = self._partition(tids, dim)
            for value, part in partitions.items():
                if not self._iceberg.accepts_count(len(part)):
                    self.bump("apriori_pruned")
                    continue
                child_assignment = dict(assignment)
                child_assignment[dim] = value
                self._recurse(part, position + 1, child_assignment)

    def _partition(self, tids: Sequence[int], dim: int) -> Dict[int, List[int]]:
        """Split ``tids`` by their value on ``dim``.

        With :attr:`counting_sort` enabled (the default, matching the original
        BUC) the split allocates one bucket per possible code of the
        dimension, so each call costs O(|tids| + cardinality); the hash-based
        alternative costs O(|tids|) but is not what the paper's baselines do.
        """
        column = self._relation.columns[dim]
        self.bump("partitions_built")
        if not self.counting_sort:
            partitions: Dict[int, List[int]] = {}
            for tid in tids:
                partitions.setdefault(column[tid], []).append(tid)
            return partitions
        buckets: List[List[int]] = [[] for _ in range(self._code_range[dim])]
        self.bump("counting_sort_slots", self._code_range[dim])
        for tid in tids:
            buckets[column[tid]].append(tid)
        return {value: bucket for value, bucket in enumerate(buckets) if bucket}

    # ------------------------------------------------------------------ #
    # Per-partition behaviour (overridden by the closed-cubing subclasses) #
    # ------------------------------------------------------------------ #

    def _process_partition(
        self, tids: List[int], dim_index: int, assignment: Dict[int, int]
    ) -> bool:
        """Emit the cell for this partition.

        Returns ``True`` when the recursion below this partition should be
        skipped entirely (used by QC-DFS pruning); plain BUC always returns
        ``False``.
        """
        self._emit(tids, assignment)
        return False

    # ------------------------------------------------------------------ #
    # Output                                                              #
    # ------------------------------------------------------------------ #

    def _cell_from_assignment(self, assignment: Dict[int, int]) -> Cell:
        values: List[Optional[int]] = [None] * self._num_dims
        for dim, value in assignment.items():
            values[dim] = value
        return tuple(values)

    def _emit(self, tids: Sequence[int], assignment: Dict[int, int]) -> None:
        count = len(tids)
        payload = self._aggregate_measures(tids)
        if not self._iceberg.accepts(count, payload):
            return
        cell = self._cell_from_assignment(assignment)
        self._cube.add(cell, count, payload, rep_tid=min(tids))
        self.bump("cells_emitted")

    def _aggregate_measures(self, tids: Sequence[int]) -> Dict[str, float]:
        # Vectorized over the partition's measure columns when the NumPy
        # backend is active; the per-tuple state fold otherwise.  Shared by
        # the BUC subclasses (qc_dfs, output_based).
        return kernels.aggregate_measures(self._measures, self._relation, tids)


register_algorithm(BUC)
