"""C-Cubing(MM): closed iceberg cubing inside MM-Cubing (Section 3).

The engine is :class:`repro.algorithms.mm_cubing.MMCubing`; switching on
closed output activates exactly the machinery Section 3 describes:

* the closedness measure (Representative Tuple ID + Closed Mask) is aggregated
  together with ``count`` through the MultiWay dense-subspace arrays,
* hidden (masked) values are tracked without rewriting tuples, so the measure
  always consults original values — the role of the paper's Value Mask,
* each cell is checked (``ClosedMask & AllMask == 0``) just before output —
  *closed checking*, as opposed to the Star family's closed *pruning*,
* the subspace-of-size-``min_sup`` short cut emits the closure directly
  instead of enumerating every covered combination (the optimisation behind
  Figure 16's low-``min_sup`` behaviour).
"""

from __future__ import annotations

from typing import Optional

from .base import CubingOptions, register_algorithm
from .mm_cubing import MMCubing


class CCubingMM(MMCubing):
    """Closed iceberg cubing by MM-Cubing plus aggregation-based checking."""

    name = "c-cubing-mm"
    supports_closed = True
    supports_non_closed = False

    def __init__(self, options: Optional[CubingOptions] = None) -> None:
        options = (options or CubingOptions()).with_overrides(closed=True)
        super().__init__(options)


register_algorithm(CCubingMM, aliases=["cc-mm", "ccubing-mm", "c-cubing(mm)"])
