"""C-Cubing(Star): closed iceberg cubing on star trees (Section 4.3).

This is Star-Cubing with the aggregation-based closedness machinery switched
on: every tree node carries the closedness measure (Closed Mask +
Representative Tuple ID), trees carry a Tree Mask, subtree pruning follows
Lemma 5 (``ClosedMask & TreeMask != 0``) and Lemma 6 (single-path / shared
value on the dimension about to be collapsed), and the final output check is
``ClosedMask & AllMask == 0``.

The engine lives in :class:`repro.algorithms.star_cubing.StarCubing`; this
class only fixes the configuration (closed output) and the registry name used
by the paper's figures.
"""

from __future__ import annotations

from typing import Optional

from .base import CubingOptions, register_algorithm
from .star_cubing import StarCubing


class CCubingStar(StarCubing):
    """Closed iceberg cubing by Star-Cubing plus aggregation-based checking."""

    name = "c-cubing-star"
    supports_closed = True
    supports_non_closed = False

    def __init__(self, options: Optional[CubingOptions] = None) -> None:
        options = (options or CubingOptions()).with_overrides(closed=True)
        super().__init__(options)


register_algorithm(CCubingStar, aliases=["cc-star", "ccubing-star", "c-cubing(star)"])
