"""C-Cubing(StarArray): closed iceberg cubing on StarArray structures.

The engine is :class:`repro.algorithms.star_array.StarArrayCubing` (truncated
trees + multiway traversal); this class switches on closed output, which
activates the closedness measure on every node, Lemma 5 / Lemma 6 pruning, and
the output-time ``ClosedMask & AllMask`` check — exactly the configuration the
paper evaluates as C-Cubing(StarArray) and the one it recommends for sparse,
high-cardinality data.
"""

from __future__ import annotations

from typing import Optional

from .base import CubingOptions, register_algorithm
from .star_array import StarArrayCubing


class CCubingStarArray(StarArrayCubing):
    """Closed iceberg cubing by StarArray plus aggregation-based checking."""

    name = "c-cubing-star-array"
    supports_closed = True
    supports_non_closed = False

    def __init__(self, options: Optional[CubingOptions] = None) -> None:
        options = (options or CubingOptions()).with_overrides(closed=True)
        super().__init__(options)


register_algorithm(
    CCubingStarArray,
    aliases=["cc-stararray", "ccubing-stararray", "c-cubing(stararray)"],
)
