"""MM-Cubing: iceberg cubing by factorising the lattice space (Shao et al., SSDBM'04).

MM-Cubing observes that most of a cube's cost sits in a small *dense* part of
the value space.  It classifies each dimension's values by frequency into
dense and sparse sets, computes the subspace spanned by dense values with
MultiWay array aggregation (shared computation, no Apriori pruning needed),
and handles every cell that touches a sparse value by recursing on the
tuples carrying that value — a BUC-like partition step.  Because the two kinds
of subspaces overlap on tuples (a tuple with a sparse value on one dimension
still contributes to ``*`` and dense cells on the others), values that are
"not within the current computation interest" must be prevented from producing
output inside a recursion; the original system rewrites them to a special
identifier and restores them afterwards.  This implementation never rewrites
tuples — it tracks the *hidden* values per dimension explicitly, which is what
C-Cubing(MM)'s Value Mask achieves, so the closedness measure always sees
original tuple values.

Ownership of every cell is decided by the first dimension (in processing
order) on which the cell carries a sparse value: cells with only dense or
``*`` values belong to the dense subspace; all others belong to the sparse
recursion of that first sparse value.  This rule makes the output of the
dense subspace and of every recursion branch disjoint while covering all
cells exactly once.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.cell import Cell, all_mask
from ..core.closedness import closedness_of_tids
from ..core.cube import CubeResult
from ..core.relation import Relation
from ..vector import kernels
from .base import CubingAlgorithm, register_algorithm
from .multiway import DenseSubspace


class MMCubing(CubingAlgorithm):
    """Iceberg cubing by dense/sparse lattice factorisation with MultiWay arrays."""

    name = "mm-cubing"
    supports_closed = False
    supports_non_closed = True
    order_sensitive = False

    #: Upper bound on the number of cells of one dense-subspace array, playing
    #: the role of the paper's 4 MB aggregation-table limit.
    max_dense_cells = 4096

    def compute(self, relation: Relation) -> CubeResult:
        self._relation = relation
        self._iceberg = self.options.resolved_iceberg()
        self._min_sup = self._iceberg.min_sup
        self._closed = self.options.closed
        self._measures = self.options.measures
        self._num_dims = relation.num_dimensions
        self._cube = CubeResult(self._num_dims, name=self.name)

        collapsed = set(self.options.initial_collapsed)
        dims = [d for d in range(relation.num_dimensions) if d not in collapsed]
        hidden: Dict[int, FrozenSet[int]] = {dim: frozenset() for dim in dims}

        all_tids = list(range(relation.num_tuples))
        self._recurse(all_tids, dims, fixed={}, hidden=hidden)
        return self._cube

    # ------------------------------------------------------------------ #
    # Recursive factorisation                                              #
    # ------------------------------------------------------------------ #

    def _recurse(
        self,
        tids: List[int],
        dims: List[int],
        fixed: Dict[int, int],
        hidden: Dict[int, FrozenSet[int]],
    ) -> None:
        if len(tids) < self._min_sup:
            return
        self.bump("subspaces")

        if self._closed and len(tids) == self._min_sup:
            # C-Cubing(MM) short cut (Section 5.4): every cell this subspace
            # could emit aggregates exactly these tuples, so only the closure
            # can be closed — emit it directly instead of enumerating.
            self._emit_closure(tids, dims, fixed, hidden)
            self.bump("closure_shortcuts")
            return

        frequencies = self._frequencies(tids, dims)
        dense = self._select_dense(frequencies, hidden, dims)

        self._compute_dense_subspace(tids, dims, fixed, dense)

        for position, dim in enumerate(dims):
            partitions = self._partition(tids, dim)
            child_dims = dims[:position] + dims[position + 1:]
            for value, part in partitions.items():
                if value in dense[dim] or value in hidden[dim]:
                    continue
                if len(part) < self._min_sup:
                    self.bump("apriori_pruned")
                    continue
                child_hidden = dict(hidden)
                for earlier in dims[:position]:
                    sparse_here = frozenset(
                        v for v in frequencies[earlier] if v not in dense[earlier]
                    )
                    child_hidden[earlier] = hidden[earlier] | sparse_here
                del child_hidden[dim]
                child_fixed = dict(fixed)
                child_fixed[dim] = value
                self._recurse(part, child_dims, child_fixed, child_hidden)

    # ------------------------------------------------------------------ #
    # Dense / sparse classification                                        #
    # ------------------------------------------------------------------ #

    def _frequencies(self, tids: Sequence[int], dims: Sequence[int]) -> Dict[int, Counter]:
        columns = self._relation.columns
        frequencies: Dict[int, Counter] = {}
        for dim in dims:
            column = columns[dim]
            frequencies[dim] = Counter(column[tid] for tid in tids)
        return frequencies

    def _partition(self, tids: Sequence[int], dim: int) -> Dict[int, List[int]]:
        column = self._relation.columns[dim]
        partitions: Dict[int, List[int]] = {}
        for tid in tids:
            partitions.setdefault(column[tid], []).append(tid)
        return partitions

    def _select_dense(
        self,
        frequencies: Dict[int, Counter],
        hidden: Dict[int, FrozenSet[int]],
        dims: Sequence[int],
    ) -> Dict[int, List[int]]:
        """Pick the dense values of each dimension for this subspace.

        A value is a dense candidate when it is not hidden, passes the iceberg
        threshold, and is at least as frequent as the dimension's average
        value frequency (the adaptive part of MM-Cubing's heuristic).  The
        combined array size is then capped at :attr:`max_dense_cells` by
        evicting the least frequent candidates, mirroring the bounded
        aggregation table of the original system.
        """
        dense: Dict[int, List[int]] = {}
        candidates: List[Tuple[int, int, int]] = []  # (frequency, dim, value)
        for dim in dims:
            counts = frequencies[dim]
            if not counts:
                dense[dim] = []
                continue
            average = sum(counts.values()) / len(counts)
            threshold = max(self._min_sup, average)
            selected = [
                value
                for value, count in counts.items()
                if value not in hidden[dim] and count >= threshold
            ]
            dense[dim] = selected
            candidates.extend((counts[value], dim, value) for value in selected)

        def array_cells() -> int:
            cells = 1
            for dim in dims:
                cells *= len(dense[dim]) + 1
            return cells

        if array_cells() > self.max_dense_cells:
            candidates.sort()
            for _, dim, value in candidates:
                if array_cells() <= self.max_dense_cells:
                    break
                dense[dim].remove(value)
                self.bump("dense_evictions")
        return dense

    # ------------------------------------------------------------------ #
    # Dense subspace (MultiWay)                                            #
    # ------------------------------------------------------------------ #

    def _compute_dense_subspace(
        self,
        tids: Sequence[int],
        dims: Sequence[int],
        fixed: Dict[int, int],
        dense: Dict[int, List[int]],
    ) -> None:
        subspace = DenseSubspace(
            self._relation,
            tids,
            dims,
            dense,
            track_closedness=self._closed,
            measures=self._measures,
        )
        self.bump("dense_subspaces")
        for assignment, agg in subspace.iter_output_cells():
            if not self._iceberg.accepts_count(agg.count):
                continue
            cell_assignment = dict(fixed)
            cell_assignment.update(assignment)
            cell = self._cell_from_assignment(cell_assignment)
            if self._closed and agg.closed is not None:
                if not agg.closed.is_closed(all_mask(cell)):
                    self.bump("closed_check_rejected")
                    continue
            payload = (
                self._measures.values(agg.measures)
                if self._measures and agg.measures is not None
                else {}
            )
            if not self._iceberg.accepts(agg.count, payload):
                continue
            rep = agg.closed.rep_tid if agg.closed is not None else None
            self._cube.add(cell, agg.count, payload, rep_tid=rep)
            self.bump("cells_emitted")

    # ------------------------------------------------------------------ #
    # Closed short cut                                                     #
    # ------------------------------------------------------------------ #

    def _emit_closure(
        self,
        tids: List[int],
        dims: Sequence[int],
        fixed: Dict[int, int],
        hidden: Dict[int, FrozenSet[int]],
    ) -> None:
        """Emit the closure of ``tids`` over the remaining dimensions, if owned here."""
        columns = self._relation.columns
        assignment = dict(fixed)
        for dim in dims:
            column = columns[dim]
            value = column[tids[0]]
            if all(column[tid] == value for tid in tids):
                if value in hidden[dim]:
                    # The closure fixes a value owned by another subspace, so
                    # no cell owned here is closed.
                    return
                assignment[dim] = value
        cell = self._cell_from_assignment(assignment)
        closed_state = closedness_of_tids(tids, self._relation)
        if not closed_state.is_closed(all_mask(cell)):
            # A dimension outside this subspace (already collapsed) still
            # shares a value, so even the closure is covered.
            return
        payload = self._payload_for(tids)
        if not self._iceberg.accepts(len(tids), payload):
            return
        self._cube.add(cell, len(tids), payload, rep_tid=closed_state.rep_tid)
        self.bump("cells_emitted")

    # ------------------------------------------------------------------ #
    # Helpers                                                              #
    # ------------------------------------------------------------------ #

    def _cell_from_assignment(self, assignment: Dict[int, int]) -> Cell:
        values: List[Optional[int]] = [None] * self._num_dims
        for dim, value in assignment.items():
            values[dim] = value
        return tuple(values)

    def _payload_for(self, tids: Sequence[int]) -> Dict[str, float]:
        # Vectorized over the group's measure columns when the NumPy backend
        # is active; the per-tuple state fold otherwise.
        return kernels.aggregate_measures(self._measures, self._relation, tids)


register_algorithm(MMCubing, aliases=["mm", "mmcubing"])
