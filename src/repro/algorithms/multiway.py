"""MultiWay simultaneous array aggregation (Zhao et al., SIGMOD'97).

MultiWay computes every cuboid of a (small, dense) space at once by
aggregating a multi-dimensional array: the base cuboid is materialised as an
array indexed by dimension value slots, and each coarser cuboid is produced by
collapsing one axis of an already-computed finer cuboid, so each input cell is
read a bounded number of times.  MM-Cubing (Section 2.1.3 and 3 of the paper)
uses exactly this engine for its *dense subspace*; the closedness measure of
C-Cubing(MM) rides along with ``count`` through the same aggregation.

The implementation here is value-slot based rather than chunked: every
dimension of the subspace gets one slot per *dense* value plus one shared
``OTHER`` slot holding everything else (sparse or masked values).  Cells whose
coordinates touch the ``OTHER`` slot participate in aggregation (they must —
they contribute to ``*`` coordinates) but are never emitted, which is how
MM-Cubing avoids duplicate outputs between the dense subspace and the sparse
recursions.  Unlike the original implementation, tuples are never rewritten to
a special identifier: the closedness measure always consults original tuple
values through the Representative Tuple ID, so the paper's *Value Mask* fix is
obtained by construction.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.closedness import ClosednessState
from ..core.columns import column_store, get_backend
from ..core.measures import MeasureSet, MeasureState
from ..core.relation import Relation
from ..vector import kernels

#: Slot index shared by every non-dense (or masked) value of a dimension.
OTHER_SLOT = 0


class AggCell:
    """One cell of the dense array: count, closedness, and payload measures."""

    __slots__ = ("count", "closed", "measures")

    def __init__(
        self,
        count: int = 0,
        closed: Optional[ClosednessState] = None,
        measures: Optional[List[MeasureState]] = None,
    ) -> None:
        self.count = count
        self.closed = closed
        self.measures = measures

    def merge(self, other: "AggCell", relation: Relation, measure_set: MeasureSet) -> None:
        """Fold another disjoint cell into this one."""
        self.count += other.count
        if other.closed is not None:
            if self.closed is None:
                self.closed = ClosednessState.empty(relation.num_dimensions)
            self.closed.merge(other.closed, relation)
        if other.measures is not None:
            if self.measures is None:
                self.measures = measure_set.clone_states(other.measures)
            else:
                measure_set.merge_states(self.measures, other.measures)


class DenseSubspace:
    """A MultiWay aggregation over the dense values of a set of dimensions.

    Parameters
    ----------
    relation:
        The base relation (used for tuple values and closedness merging).
    tids:
        The tuples of the current subspace.
    dims:
        The remaining dimensions of the subspace, in processing order.
    dense_values:
        Per dimension (keyed by dimension id), the list of *dense* values that
        own an array slot; everything else falls into the ``OTHER`` slot.
    track_closedness:
        Aggregate the closedness measure alongside ``count``.
    measures:
        Payload measures to aggregate.
    """

    def __init__(
        self,
        relation: Relation,
        tids: Sequence[int],
        dims: Sequence[int],
        dense_values: Dict[int, Sequence[int]],
        track_closedness: bool,
        measures: MeasureSet,
    ) -> None:
        self.relation = relation
        self.dims = list(dims)
        self.track_closedness = track_closedness
        self.measures = measures
        self._slot_maps: List[Dict[int, int]] = []
        self._slot_values: List[List[Optional[int]]] = []
        for dim in self.dims:
            slots = {value: index + 1 for index, value in enumerate(dense_values.get(dim, ()))}
            self._slot_maps.append(slots)
            values: List[Optional[int]] = [None] * (len(slots) + 1)
            for value, slot in slots.items():
                values[slot] = value
            self._slot_values.append(values)
        self._base = self._aggregate_base(tids)

    # ------------------------------------------------------------------ #
    # Base cuboid                                                          #
    # ------------------------------------------------------------------ #

    def _aggregate_base(self, tids: Sequence[int]) -> Dict[Tuple[int, ...], AggCell]:
        base = self._aggregate_base_vector(tids)
        if base is not None:
            return base
        relation = self.relation
        columns = relation.columns
        measures = self.measures
        base = {}
        for tid in tids:
            coords = tuple(
                self._slot_maps[axis].get(columns[dim][tid], OTHER_SLOT)
                for axis, dim in enumerate(self.dims)
            )
            cell = base.get(coords)
            if cell is None:
                cell = AggCell(0, None, None)
                base[coords] = cell
            cell.count += 1
            if self.track_closedness:
                if cell.closed is None:
                    cell.closed = ClosednessState.for_tuple(tid, relation.num_dimensions)
                else:
                    cell.closed.add_tuple(tid, relation)
            if measures:
                states = measures.create_states(relation, tid)
                if cell.measures is None:
                    cell.measures = states
                else:
                    measures.merge_states(cell.measures, states)
        return base

    def _aggregate_base_vector(
        self, tids: Sequence[int]
    ) -> Optional[Dict[Tuple[int, ...], AggCell]]:
        """Base cuboid via the fused grouped-aggregation kernel, or ``None``.

        The per-tuple slot-map lookups become one table gather per axis, and
        the group-by + closedness + measure fold collapses into
        :func:`repro.vector.kernels.grouped_closed_aggregate` — the states
        are then reconstructed per *group* (Closed Mask + representative
        tuple id for closedness, the exact state scalars for measures), so
        the resulting :class:`AggCell` values are identical to the per-tuple
        loop's.
        """
        backend = get_backend()
        if (
            backend.np is None
            or len(tids) < kernels.MIN_GROUPED_TIDS
            or (self.measures and not kernels.vectorizable_measures(self.measures))
        ):
            return None
        np = backend.np
        relation = self.relation
        store = column_store(relation)
        tid_index = np.asarray(tids, dtype=np.int64)
        keys: List[object] = []
        for axis, dim in enumerate(self.dims):
            column = store.dimension(dim)[tid_index]
            slots = self._slot_maps[axis]
            if not slots:
                keys.append(np.zeros(len(tids), dtype=np.int64))
                continue
            # Dense-value -> slot as a gather table; every other value (and
            # every masked one) stays on the shared OTHER slot.
            table = np.zeros(int(column.max()) + 1, dtype=np.int64)
            for value, slot in slots.items():
                if 0 <= value < len(table):
                    table[value] = slot
            keys.append(table[column])
        grouped = kernels.grouped_closed_aggregate(
            relation, tid_index, keys, self.measures, self.track_closedness
        )
        measures = self.measures
        base: Dict[Tuple[int, ...], AggCell] = {}
        for coords, (count, rep, mask, row) in grouped.items():
            closed = (
                ClosednessState(rep_tid=rep, closed_mask=mask)
                if self.track_closedness
                else None
            )
            states = (
                kernels.states_from_row(measures, row, count)
                if measures
                else None
            )
            base[coords] = AggCell(count, closed, states)
        return base

    # ------------------------------------------------------------------ #
    # Simultaneous aggregation over all axis subsets                       #
    # ------------------------------------------------------------------ #

    def views(self) -> Iterator[Tuple[Tuple[int, ...], Dict[Tuple[int, ...], AggCell]]]:
        """Yield ``(axis_subset, view)`` pairs for every subset of the axes.

        ``axis_subset`` lists the positions (into ``self.dims``) that remain
        grouped in the view; the view maps the coordinates on those axes to
        the aggregated cell.  Views are produced from the finest (all axes)
        to the coarsest (the apex of the subspace), each computed from a
        single already-computed parent with one more axis — the MultiWay
        single-parent aggregation pattern.
        """
        num_axes = len(self.dims)
        full = tuple(range(num_axes))
        views: Dict[Tuple[int, ...], Dict[Tuple[int, ...], AggCell]] = {full: self._base}
        yield full, self._base
        for size in range(num_axes - 1, -1, -1):
            for subset in combinations(range(num_axes), size):
                missing = next(axis for axis in range(num_axes) if axis not in subset)
                parent_axes = tuple(sorted(subset + (missing,)))
                parent = views[parent_axes]
                drop_position = parent_axes.index(missing)
                view = self._collapse(parent, drop_position)
                views[subset] = view
                yield subset, view

    def _collapse(
        self, parent: Dict[Tuple[int, ...], AggCell], drop_position: int
    ) -> Dict[Tuple[int, ...], AggCell]:
        """Aggregate a parent view along one of its axes."""
        relation = self.relation
        measures = self.measures
        view: Dict[Tuple[int, ...], AggCell] = {}
        for coords, cell in parent.items():
            reduced = coords[:drop_position] + coords[drop_position + 1:]
            target = view.get(reduced)
            if target is None:
                target = AggCell(0, None, None)
                view[reduced] = target
            target.merge(cell, relation, measures)
        return view

    # ------------------------------------------------------------------ #
    # Emission helpers                                                     #
    # ------------------------------------------------------------------ #

    def iter_output_cells(
        self,
    ) -> Iterator[Tuple[Dict[int, int], AggCell]]:
        """Yield ``(assignment, cell)`` for every emittable cell of the subspace.

        The assignment maps dimension id to the *dense* value of the cell on
        the axes that remain grouped in its view; cells with an ``OTHER``
        coordinate are skipped (they belong to a sparse recursion).
        """
        for subset, view in self.views():
            for coords, cell in view.items():
                if any(coord == OTHER_SLOT for coord in coords):
                    continue
                assignment = {
                    self.dims[axis]: self._slot_values[axis][coord]
                    for axis, coord in zip(subset, coords)
                }
                yield assignment, cell
