"""Oracle cubing: straightforward per-cuboid grouping.

This module is the correctness reference every other algorithm is tested
against.  It enumerates all ``2^D`` cuboids explicitly, groups tuples per
cuboid with a dictionary, applies the iceberg condition, and — for closed
cubes — checks closedness directly from each group's tuple-id list (does any
``*`` dimension have a single shared value?).

It is intentionally free of the machinery the paper introduces (no closedness
measure, no trees, no subspace factorisation) so that an error in that
machinery cannot hide here.  Complexity is ``O(2^D * T)``, fine for the test
and benchmark scales used in this repository.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cell import Cell
from ..core.cube import CubeResult
from ..core.measures import MeasureState
from ..core.relation import Relation
from .base import CubingAlgorithm, CubingOptions, register_algorithm


class NaiveCubing(CubingAlgorithm):
    """Reference full / iceberg / closed cube computation by exhaustive grouping."""

    name = "naive"
    supports_closed = True
    supports_non_closed = True
    order_sensitive = False

    def compute(self, relation: Relation) -> CubeResult:
        options = self.options
        iceberg = options.resolved_iceberg()
        measures = options.measures
        num_dims = relation.num_dimensions
        collapsed = set(options.initial_collapsed)
        groupable_dims = [d for d in range(num_dims) if d not in collapsed]

        cube = CubeResult(num_dims, name=self.name)
        columns = relation.columns
        num_tuples = relation.num_tuples

        for arity in range(len(groupable_dims) + 1):
            for dims in combinations(groupable_dims, arity):
                groups: Dict[Tuple[int, ...], List[int]] = {}
                for tid in range(num_tuples):
                    key = tuple(columns[dim][tid] for dim in dims)
                    groups.setdefault(key, []).append(tid)
                for key, tids in groups.items():
                    count = len(tids)
                    if not iceberg.accepts_count(count):
                        continue
                    cell = self._cell_for(num_dims, dims, key)
                    if options.closed and not self._group_is_closed(
                        relation, cell, tids
                    ):
                        self.bump("non_closed_rejected")
                        continue
                    payload = self._aggregate_measures(relation, measures, tids)
                    if not iceberg.accepts(count, payload):
                        continue
                    cube.add(cell, count, payload, rep_tid=min(tids))
                    self.bump("cells_emitted")
        return cube

    @staticmethod
    def _cell_for(
        num_dims: int, dims: Sequence[int], key: Sequence[int]
    ) -> Cell:
        values: List[Optional[int]] = [None] * num_dims
        for dim, value in zip(dims, key):
            values[dim] = value
        return tuple(values)

    @staticmethod
    def _group_is_closed(relation: Relation, cell: Cell, tids: Sequence[int]) -> bool:
        """Directly check Definition 3 via shared values on ``*`` dimensions."""
        columns = relation.columns
        first = tids[0]
        for dim, value in enumerate(cell):
            if value is not None:
                continue
            shared = columns[dim][first]
            if all(columns[dim][tid] == shared for tid in tids):
                return False
        return True

    @staticmethod
    def _aggregate_measures(relation, measures, tids) -> Dict[str, float]:
        if not measures:
            return {}
        states: List[MeasureState] = measures.create_states(relation, tids[0])
        for tid in tids[1:]:
            measures.merge_states(states, measures.create_states(relation, tid))
        return measures.values(states)


class NaiveClosedCubing(NaiveCubing):
    """Convenience registration of the oracle pre-configured for closed cubes."""

    name = "naive-closed"
    supports_non_closed = False

    def __init__(self, options: Optional[CubingOptions] = None) -> None:
        options = (options or CubingOptions()).with_overrides(closed=True)
        super().__init__(options)


register_algorithm(NaiveCubing, aliases=["oracle", "bruteforce"])
register_algorithm(NaiveClosedCubing, aliases=["oracle-closed"])
