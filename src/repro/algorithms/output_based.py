"""Output-based closedness checking: the closed-pattern-mining style baseline.

Sections 1 and 2.2.2 of the paper describe the second pre-existing approach to
closedness checking (besides QC-DFS's raw-data scanning): keep an index over
the *already emitted* closed cells and test every new candidate against it,
the way CLOSET+/CHARM test candidate closed itemsets against a result tree or
hash table.  The paper argues this is a poor fit for cubing because the output
(even the closed cube) can dwarf the input, so the index becomes the
bottleneck — this module exists so that claim can be measured.

The implementation layers the check on top of BUC:

* candidates are the iceberg cells produced by the BUC recursion;
* the index maps ``(count, representative tuple id)`` to the cells already
  believed closed with that signature;
* a candidate is *subsumed* (non-closed) if the index holds a strict
  specialisation of it with the same count — equal count plus specialisation
  implies an identical tuple set, hence coverage (Definition 3);
* symmetrically, a new candidate evicts any indexed cell it covers, so the
  index converges to exactly the closed cells.

The ``index_probes`` and ``index_size_peak`` counters expose the overhead the
paper talks about.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.cell import Cell, is_strict_specialisation
from ..core.cube import CubeResult
from ..core.relation import Relation
from .base import CubingOptions, register_algorithm
from .buc import BUC

#: Index signature: cells with identical tuple sets necessarily share it.
Signature = Tuple[int, int]


class OutputCheckedClosedCubing(BUC):
    """Closed iceberg cubing with CLOSET-style result-index subsumption checks."""

    name = "output-checked"
    supports_closed = True
    supports_non_closed = False
    order_sensitive = True

    def __init__(self, options: Optional[CubingOptions] = None) -> None:
        options = (options or CubingOptions()).with_overrides(closed=True)
        super().__init__(options)

    def compute(self, relation: Relation) -> CubeResult:
        # Index of candidate closed cells: signature -> {cell: payload}
        self._index: Dict[Signature, Dict[Cell, Dict[str, float]]] = {}
        super().compute(relation)
        return self._materialise()

    # ------------------------------------------------------------------ #
    # BUC hook: route emissions through the output index                  #
    # ------------------------------------------------------------------ #

    def _emit(self, tids, assignment) -> None:
        count = len(tids)
        payload = self._aggregate_measures(tids)
        if not self._iceberg.accepts(count, payload):
            return
        cell = self._cell_from_assignment(assignment)
        signature: Signature = (count, min(tids))
        bucket = self._index.setdefault(signature, {})

        for existing in bucket:
            self.bump("index_probes")
            if is_strict_specialisation(cell, existing):
                # An already-found cell covers the candidate: not closed.
                self.bump("candidates_subsumed")
                return

        evicted = [
            existing
            for existing in bucket
            if is_strict_specialisation(existing, cell)
        ]
        for existing in evicted:
            del bucket[existing]
            self.bump("index_evictions")

        bucket[cell] = payload
        self.bump("cells_indexed")
        size = sum(len(cells) for cells in self._index.values())
        if size > self.counters.get("index_size_peak", 0):
            self.counters["index_size_peak"] = size

    # ------------------------------------------------------------------ #
    # Final materialisation                                               #
    # ------------------------------------------------------------------ #

    def _materialise(self) -> CubeResult:
        cube = CubeResult(self._num_dims, name=self.name)
        for (count, rep_tid), bucket in self._index.items():
            for cell, payload in bucket.items():
                cube.add(cell, count, payload, rep_tid=rep_tid)
        self.counters["cells_emitted"] = len(cube)
        return cube


register_algorithm(OutputCheckedClosedCubing, aliases=["output-based", "closet-style"])
