"""QC-DFS: Quotient-Cube style closed cubing with raw-data scan checking.

This is the paper's main competitor (Section 2.2.1, Figures 3-7).  QC-DFS is
derived from BUC: it performs the same depth-first partitioning, but before
emitting a cell it *scans the partition* over every dimension outside the
current group-by to find dimensions on which all tuples share a single value.

* If such a dimension exists and lies **before** the current expansion front
  in the processing order, the partition's upper bound has already been (or
  will be) produced from another branch, so the whole partition is skipped.
* Otherwise the cell is **extended** by fixing every shared value (the
  "closure jump"), the extended cell — an upper bound / closed cell — is
  emitted, and the recursion continues below the extended cell.

The per-partition scanning is exactly the overhead the paper attributes to
QC-DFS: the scan of a dimension stops at the first discrepancy, but when a
dimension does share a value the scan must touch the entire partition.  The
``scan_steps`` counter exposes that cost to the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.relation import Relation
from ..core.cube import CubeResult
from .base import CubingOptions, register_algorithm
from .buc import BUC


class QCDFS(BUC):
    """Closed (iceberg) cubing by BUC partitioning plus scan-based closure jumps."""

    name = "qc-dfs"
    supports_closed = True
    supports_non_closed = False
    order_sensitive = True

    def __init__(self, options: Optional[CubingOptions] = None) -> None:
        options = (options or CubingOptions()).with_overrides(closed=True)
        super().__init__(options)

    def compute(self, relation: Relation) -> CubeResult:
        self._order_position = {}
        return super().compute(relation)

    # ------------------------------------------------------------------ #
    # QC-DFS partition handling                                           #
    # ------------------------------------------------------------------ #

    def _recurse(
        self, tids: List[int], dim_index: int, assignment: Dict[int, int]
    ) -> None:
        """Closure-jump before emitting, prune duplicate branches, then expand.

        Unlike plain BUC the expansion below this partition must skip the
        dimensions absorbed by the closure jump, so the whole step is
        reimplemented here rather than split across ``_process_partition``.
        """
        shared = self._scan_shared_dimensions(tids, assignment)

        if self._is_duplicate_branch(shared, dim_index):
            self.bump("duplicate_branches_pruned")
            return

        extended = dict(assignment)
        extended.update(shared)
        self._emit(tids, extended)

        for position in range(dim_index, len(self._dims)):
            dim = self._dims[position]
            if dim in extended:
                continue
            partitions = self._partition(tids, dim)
            for value, part in partitions.items():
                if not self._iceberg.accepts_count(len(part)):
                    self.bump("apriori_pruned")
                    continue
                child_assignment = dict(extended)
                child_assignment[dim] = value
                self._recurse(part, position + 1, child_assignment)

    # ------------------------------------------------------------------ #
    # Scanning                                                            #
    # ------------------------------------------------------------------ #

    def _scan_shared_dimensions(
        self, tids: Sequence[int], assignment: Dict[int, int]
    ) -> Dict[int, int]:
        """Scan every non-group-by dimension for a single shared value.

        Returns a mapping from dimension to the shared value.  The scan of a
        dimension terminates at the first discrepancy (as described in the
        paper), but dimensions that do share a value cost a full pass over the
        partition — this is QC-DFS's raw-data checking overhead.
        """
        columns = self._relation.columns
        first = tids[0]
        shared: Dict[int, int] = {}
        steps = 0
        for dim in self._dims:
            if dim in assignment:
                continue
            column = columns[dim]
            value = column[first]
            is_shared = True
            for tid in tids:
                steps += 1
                if column[tid] != value:
                    is_shared = False
                    break
            if is_shared:
                shared[dim] = value
        self.bump("scan_steps", steps)
        return shared

    def _is_duplicate_branch(self, shared: Dict[int, int], dim_index: int) -> bool:
        """True when a shared dimension precedes the expansion front.

        Such a partition is reachable (with the identical tuple set) from the
        branch that fixes the earlier shared dimension, so its upper bound is
        produced there; re-emitting it here would duplicate output.
        """
        if not shared:
            return False
        prior_dims = set(self._dims[:dim_index])
        return any(dim in prior_dims for dim in shared)


register_algorithm(QCDFS, aliases=["qcdfs", "quotient-cube"])
