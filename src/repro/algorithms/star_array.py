"""StarArray: the paper's extension of Star-Cubing for sparse data (Section 4).

Star-Cubing's full star trees become expensive on sparse, high-cardinality
data: lower tree levels gain nothing from sharing yet still pay node
construction and multiway-aggregation bookkeeping.  StarArray changes two
things (Sections 4.1-4.2):

* **Truncation** — a branch whose count drops below ``min_sup`` is not
  expanded; its tuple ids are kept in a pool attached to the truncated node
  (the array part of the hybrid ``<A, T>`` structure).
* **Multiway traversal** — child trees are built one at a time.  For each
  child tree the branches of the parent below the seeding node are re-read
  (so the parent is traversed once *per child tree*), but the child tree
  itself is touched exactly once while being built.  This trades repeated
  parent reads for never re-traversing the (large, in sparse data) child
  trees, which Section 4.2's cost analysis shows is the right trade-off when
  data is sparse.

In this implementation a child tree is built by gathering the tuple ids below
the seeding node (a walk over the node's subtree pools — the "parent
traversal") and regrouping them over the remaining dimensions in one pass (the
single "child traversal").  The closed variant
:class:`repro.algorithms.c_star_array.CCubingStarArray` adds the same Lemma 5
/ Lemma 6 pruning and output-time closedness checks as C-Cubing(Star).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cell import Cell, all_mask
from ..core.closedness import closed_pruning_applies, tree_mask_after_collapse
from ..core.cube import CubeResult
from ..core.errors import AlgorithmError
from ..core.relation import Relation
from .base import CubingAlgorithm, register_algorithm
from .star_tree import (
    STAR,
    CuboidTree,
    TreeNode,
    build_star_tables,
    build_tree_from_tids,
    collect_tids,
)


class StarArrayCubing(CubingAlgorithm):
    """Iceberg cubing over truncated StarArray trees with multiway traversal."""

    name = "star-array"
    supports_closed = False
    supports_non_closed = True
    supports_measures = False
    order_sensitive = True

    #: Whether globally infrequent values are star-reduced (no effect at min_sup=1).
    star_reduction = True

    def compute(self, relation: Relation) -> CubeResult:
        if self.options.measures:
            raise AlgorithmError(
                f"{self.name} aggregates count only; payload measures are not supported"
            )
        self._relation = relation
        self._iceberg = self.options.resolved_iceberg()
        self._min_sup = self._iceberg.min_sup
        self._closed = self.options.closed
        self._num_dims = relation.num_dimensions
        self._cube = CubeResult(self._num_dims, name=self.name)

        collapsed = list(self.options.initial_collapsed)
        initial_mask = 0
        for dim in collapsed:
            initial_mask |= 1 << dim
        dims = [d for d in self.resolve_order(relation) if d not in set(collapsed)]

        self._star_tables = None
        if self.star_reduction and self._min_sup > 1:
            self._star_tables = build_star_tables(relation, self._min_sup, dims)

        all_tids = list(range(relation.num_tuples))
        self._process(all_tids, dims, fixed={}, tree_mask=initial_mask, emit_root=True)
        return self._cube

    # ------------------------------------------------------------------ #
    # Recursive computation                                                #
    # ------------------------------------------------------------------ #

    def _process(
        self,
        tids: List[int],
        dims: Sequence[int],
        fixed: Dict[int, int],
        tree_mask: int,
        emit_root: bool,
    ) -> None:
        """Build the StarArray over ``dims`` for ``tids`` and emit / recurse."""
        tree = build_tree_from_tids(
            self._relation,
            tids,
            dims,
            fixed=fixed,
            tree_mask=tree_mask,
            min_sup=self._min_sup,
            track_closedness=self._closed,
            star_tables=self._star_tables,
            truncate=True,
        )
        self.bump("trees_built")

        root = tree.root
        if self._is_blocked(tree, root):
            # Lemma 5 at the root: every cell this computation could emit is
            # covered through an already-collapsed dimension.
            return

        if emit_root:
            self._maybe_emit(tree, root, path=())

        # The root's own child computation collapses the first remaining
        # dimension; deeper ones are seeded from the walk below.
        self._maybe_recurse(tree, root, depth=0, path=())
        self._walk(tree, root, depth=0, path=(), blocked=False)

    def _walk(
        self,
        tree: CuboidTree,
        node: TreeNode,
        depth: int,
        path: Tuple[int, ...],
        blocked: bool,
    ) -> None:
        """Depth-first walk emitting cells and seeding child computations."""
        dims = tree.dims
        for child in node.children.values():
            child_blocked = blocked or self._is_blocked(tree, child)
            child_path = path + (child.value,)
            if not child_blocked:
                self._maybe_emit(tree, child, child_path)
                self._maybe_recurse(tree, child, depth + 1, child_path)
                self._walk(tree, child, depth + 1, child_path, child_blocked)
            # A blocked child (star value or Lemma 5) emits nothing and seeds
            # nothing below it, so the walk stops here; its tuples have already
            # contributed to this tree's ancestors through the pools.

    def _maybe_recurse(
        self, tree: CuboidTree, node: TreeNode, depth: int, path: Tuple[int, ...]
    ) -> None:
        """Seed the child computation that collapses the dimension below ``node``.

        This is the multiway-traversal step: the tuple ids below the node are
        gathered by walking its subtree (re-reading the parent tree once per
        child computation) and handed to a fresh :meth:`_process` call, which
        builds the child StarArray in a single pass.
        """
        dims = tree.dims
        if depth > len(dims) - 2:
            return
        if node.count < self._min_sup:
            self.bump("apriori_pruned_trees")
            return
        collapse_dim = dims[depth]
        if self._closed and node.closed is not None:
            if node.closed.closed_mask & (1 << collapse_dim):
                self.bump("lemma6_pruned")
                return
        fixed = dict(tree.fixed)
        for level, value in enumerate(path):
            fixed[dims[level]] = value
        tids = collect_tids(node) if node.pool is None else list(node.pool)
        self.bump("parent_traversal_tids", len(tids))
        self._process(
            tids,
            dims[depth + 1:],
            fixed=fixed,
            tree_mask=tree_mask_after_collapse(tree.tree_mask, collapse_dim),
            emit_root=False,
        )

    # ------------------------------------------------------------------ #
    # Pruning and emission                                                 #
    # ------------------------------------------------------------------ #

    def _is_blocked(self, tree: CuboidTree, node: TreeNode) -> bool:
        """Star-reduced nodes and Lemma-5-pruned nodes emit nothing below them."""
        if node.value == STAR:
            self.bump("star_blocked")
            return True
        if self._closed and node.closed is not None:
            if closed_pruning_applies(node.closed.closed_mask, tree.tree_mask):
                self.bump("lemma5_pruned")
                return True
        return False

    def _cell_for(self, tree: CuboidTree, path: Tuple[int, ...]) -> Cell:
        values: List[Optional[int]] = [None] * self._num_dims
        for dim, value in tree.fixed.items():
            values[dim] = value
        for level, value in enumerate(path):
            values[tree.dims[level]] = value
        return tuple(values)

    def _maybe_emit(self, tree: CuboidTree, node: TreeNode, path: Tuple[int, ...]) -> None:
        if not self._iceberg.accepts_count(node.count):
            return
        cell = self._cell_for(tree, path)
        if self._closed and node.closed is not None:
            if not node.closed.is_closed(all_mask(cell)):
                self.bump("closed_check_rejected")
                return
        rep = node.closed.rep_tid if node.closed is not None else None
        self._cube.add(cell, node.count, rep_tid=rep)
        self.bump("cells_emitted")


register_algorithm(StarArrayCubing, aliases=["stararray", "star-array-cubing"])
