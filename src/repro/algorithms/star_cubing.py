"""Star-Cubing: iceberg cubing by shared tree aggregation (Xin et al., VLDB'03).

Star-Cubing organises the computation as a family of *cuboid trees* (see
:mod:`repro.algorithms.star_tree`).  The base tree holds all tuples over the
full dimension order; every node of a tree corresponds to one group-by cell,
and *child trees* — obtained by collapsing the dimension right below a node —
cover the group-bys that skip that dimension.  The distinguishing feature of
Star-Cubing is **multiway aggregation**: one depth-first traversal of a parent
tree simultaneously constructs and aggregates *all* of its child trees, so the
parent is read exactly once.

The traversal keeps, for every ancestor that created a child tree, a *cursor*
into that child tree; visiting a parent node advances each cursor to the node
keyed by the visited value and folds the visited node's count (and, for the
closed variant, its closedness state) into it.  This is the mechanism the
paper's Section 4.2 contrasts with StarArray's multiway traversal.

The closed variant :class:`repro.algorithms.c_star.CCubingStar` enables, on top
of this engine:

* output-time closedness checking through the aggregated closedness measure,
* Lemma 5 pruning — a node whose Closed Mask intersects the Tree Mask emits
  nothing and seeds no child trees (its tuples still aggregate upward),
* Lemma 6 pruning — a node whose tuples all share one value on the dimension
  about to be collapsed seeds no child tree (the single-path rule).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.cell import Cell, all_mask
from ..core.closedness import closed_pruning_applies, tree_mask_after_collapse
from ..core.cube import CubeResult
from ..core.errors import AlgorithmError
from ..core.relation import Relation
from .base import CubingAlgorithm, register_algorithm
from .star_tree import (
    STAR,
    CuboidTree,
    TreeNode,
    build_star_tables,
    build_tree_from_tids,
)


class StarCubing(CubingAlgorithm):
    """Iceberg cubing over star trees with multiway (shared) aggregation."""

    name = "star-cubing"
    supports_closed = False
    supports_non_closed = True
    supports_measures = False
    order_sensitive = True

    #: Whether globally infrequent values are star-reduced (no effect at min_sup=1).
    star_reduction = True

    def compute(self, relation: Relation) -> CubeResult:
        if self.options.measures:
            raise AlgorithmError(
                f"{self.name} aggregates count only; payload measures are not supported"
            )
        self._relation = relation
        self._iceberg = self.options.resolved_iceberg()
        self._min_sup = self._iceberg.min_sup
        self._closed = self.options.closed
        self._num_dims = relation.num_dimensions
        self._cube = CubeResult(self._num_dims, name=self.name)

        collapsed = list(self.options.initial_collapsed)
        initial_mask = 0
        for dim in collapsed:
            initial_mask |= 1 << dim
        dims = [d for d in self.resolve_order(relation) if d not in set(collapsed)]

        star_tables = None
        if self.star_reduction and self._min_sup > 1:
            star_tables = build_star_tables(relation, self._min_sup, dims)

        all_tids = list(range(relation.num_tuples))
        base_tree = build_tree_from_tids(
            relation,
            all_tids,
            dims,
            fixed={},
            tree_mask=initial_mask,
            min_sup=self._min_sup,
            track_closedness=self._closed,
            star_tables=star_tables,
            truncate=False,
        )
        self.bump("trees_built")
        self._process_tree(base_tree, emit_root=True)
        return self._cube

    # ------------------------------------------------------------------ #
    # Tree processing                                                      #
    # ------------------------------------------------------------------ #

    def _process_tree(self, tree: CuboidTree, emit_root: bool) -> None:
        """Emit this tree's cells, build all its child trees in one pass, recurse."""
        root = tree.root
        root_blocked = self._is_blocked(tree, root)

        if emit_root and not root_blocked:
            self._maybe_emit(tree, root, path=())

        child_trees: List[CuboidTree] = []
        pending: Optional[TreeNode] = None
        if not root_blocked:
            root_child = self._maybe_create_child_tree(tree, root, depth=0, path=())
            if root_child is not None:
                child_trees.append(root_child)
                pending = root_child.root

        if tree.dims:
            for child in tree.root.children.values():
                self._dfs(
                    tree, child, depth=1, path=(child.value,), cursors=[],
                    pending=pending, child_trees=child_trees, blocked=root_blocked,
                )

        for child_tree in child_trees:
            self.bump("trees_built")
            self._process_tree(child_tree, emit_root=False)

    def _dfs(
        self,
        tree: CuboidTree,
        node: TreeNode,
        depth: int,
        path: Tuple[int, ...],
        cursors: List[TreeNode],
        pending: Optional[TreeNode],
        child_trees: List[CuboidTree],
        blocked: bool,
    ) -> None:
        """Visit one parent-tree node: feed ancestor child trees, emit, recurse.

        ``cursors`` are the positions in ancestor child trees this node must
        advance; ``pending`` is the child tree created by this node's parent —
        this node's own dimension is the one that tree collapsed, so the node
        passes it through unadvanced and its children activate it.
        """
        relation = self._relation
        advanced: List[TreeNode] = []
        for cursor in cursors:
            target = cursor.get_or_create_child(node.value)
            target.add_contribution(node.count, node.closed, relation)
            advanced.append(target)
        self.bump("cursor_advances", len(cursors))

        node_blocked = blocked or self._is_blocked(tree, node)

        if not node_blocked:
            self._maybe_emit(tree, node, path)

        my_child_root: Optional[TreeNode] = None
        if not node_blocked:
            child_tree = self._maybe_create_child_tree(tree, node, depth, path)
            if child_tree is not None:
                child_trees.append(child_tree)
                my_child_root = child_tree.root

        if node.children:
            next_cursors = advanced if pending is None else advanced + [pending]
            for child in node.children.values():
                self._dfs(
                    tree, child, depth + 1, path + (child.value,), next_cursors,
                    my_child_root, child_trees, node_blocked,
                )

    # ------------------------------------------------------------------ #
    # Pruning, emission, child-tree creation                               #
    # ------------------------------------------------------------------ #

    def _is_blocked(self, tree: CuboidTree, node: TreeNode) -> bool:
        """True when this node and everything below it must not emit output.

        Star-reduced nodes carry a fabricated value, so neither they nor their
        descendants may emit or seed child trees.  In closed mode, Lemma 5
        blocks a node whose Closed Mask intersects the Tree Mask.  Blocked
        nodes still aggregate into ancestors' child trees.
        """
        if node.value == STAR:
            self.bump("star_blocked")
            return True
        if self._closed and node.closed is not None:
            if closed_pruning_applies(node.closed.closed_mask, tree.tree_mask):
                self.bump("lemma5_pruned")
                return True
        return False

    def _cell_for(self, tree: CuboidTree, path: Tuple[int, ...]) -> Cell:
        values: List[Optional[int]] = [None] * self._num_dims
        for dim, value in tree.fixed.items():
            values[dim] = value
        for level, value in enumerate(path):
            values[tree.dims[level]] = value
        return tuple(values)

    def _maybe_emit(self, tree: CuboidTree, node: TreeNode, path: Tuple[int, ...]) -> None:
        if not self._iceberg.accepts_count(node.count):
            return
        cell = self._cell_for(tree, path)
        if self._closed and node.closed is not None:
            if not node.closed.is_closed(all_mask(cell)):
                self.bump("closed_check_rejected")
                return
        rep = node.closed.rep_tid if node.closed is not None else None
        self._cube.add(cell, node.count, rep_tid=rep)
        self.bump("cells_emitted")

    def _maybe_create_child_tree(
        self, tree: CuboidTree, node: TreeNode, depth: int, path: Tuple[int, ...]
    ) -> Optional[CuboidTree]:
        """Create the child tree obtained by collapsing the dimension below ``node``.

        The child tree is only worth creating when at least one dimension
        remains below the collapsed one, the node passes the iceberg count
        (Apriori pruning), and — in closed mode — its tuples do not all share
        one value on the collapsed dimension (Lemma 6 / single-path pruning).
        """
        dims = tree.dims
        if depth > len(dims) - 2:
            return None
        if node.count < self._min_sup:
            self.bump("apriori_pruned_trees")
            return None
        collapse_dim = dims[depth]
        if self._closed and node.closed is not None:
            if node.closed.closed_mask & (1 << collapse_dim):
                self.bump("lemma6_pruned")
                return None
        fixed = dict(tree.fixed)
        for level, value in enumerate(path):
            fixed[dims[level]] = value
        child = CuboidTree(
            dims[depth + 1:],
            fixed,
            tree_mask_after_collapse(tree.tree_mask, collapse_dim),
        )
        child.root.count = node.count
        child.root.closed = node.closed.copy() if node.closed is not None else None
        return child


register_algorithm(StarCubing, aliases=["star", "starcubing"])
