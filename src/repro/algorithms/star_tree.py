"""Tree structures shared by the Star-Cubing / StarArray family (Section 4).

A *cuboid tree* represents one sub-computation of the cube: an ordered list of
remaining dimensions (one tree level per dimension), a *fixed* assignment
(the values inherited from the node the tree was created from), and a *Tree
Mask* recording which dimensions have already been collapsed to ``*``
(Section 4.3).  Every node at depth ``j`` of a tree corresponds to exactly one
group-by cell: the fixed assignment plus the first ``j`` remaining dimensions
set to the node's path values.

Two node flavours are provided:

* :class:`TreeNode` — the plain star-tree node used by Star-Cubing, holding a
  count, optional closedness state, and children keyed by dimension value.
* StarArray trees reuse the same node class but additionally carry a *pool* of
  tuple ids on truncated nodes (Section 4.1): when a node's count drops below
  ``min_sup`` its sub-branches are not expanded and the tuple ids are kept so
  that later child trees can still aggregate them.

The module also implements *star reduction*: dimension values whose global
frequency is below ``min_sup`` can never appear in an iceberg cell, so they
are mapped to the :data:`STAR` sentinel and share a single node per level.
Star nodes are never emitted and never seed child trees, but they still
participate in aggregation (their tuples count toward ``*`` cells).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..core.closedness import ClosednessState, closedness_of_tids
from ..core.relation import Relation

#: Sentinel value used for star-reduced (globally infrequent) dimension values.
STAR = -1


class TreeNode:
    """One node of a cuboid tree.

    Attributes
    ----------
    value:
        The dimension value of this node (``STAR`` for star-reduced values,
        ``None`` only for tree roots).
    count:
        Number of base tuples aggregated below this node.
    children:
        Mapping from dimension value to child node (next tree level).
    closed:
        Closedness state of the node's tuple group, present only when the
        owning algorithm computes closed cubes.
    pool:
        Tuple-id pool for truncated StarArray nodes (``None`` elsewhere).
    """

    __slots__ = ("value", "count", "children", "closed", "pool")

    def __init__(self, value: Optional[int] = None) -> None:
        self.value = value
        self.count = 0
        self.children: Dict[int, "TreeNode"] = {}
        self.closed: Optional[ClosednessState] = None
        self.pool: Optional[List[int]] = None

    def child(self, value: int) -> Optional["TreeNode"]:
        return self.children.get(value)

    def get_or_create_child(self, value: int) -> "TreeNode":
        node = self.children.get(value)
        if node is None:
            node = TreeNode(value)
            self.children[value] = node
        return node

    def add_contribution(
        self,
        count: int,
        closed: Optional[ClosednessState],
        relation: Relation,
    ) -> None:
        """Fold another disjoint group (count + closedness) into this node."""
        self.count += count
        if closed is not None:
            if self.closed is None:
                self.closed = ClosednessState.empty(relation.num_dimensions)
            self.closed.merge(closed, relation)

    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including this node)."""
        total = 1
        for child in self.children.values():
            total += child.subtree_size()
        return total

    def iter_pool_tids(self) -> Iterator[int]:
        """Yield every tuple id stored in pools anywhere below this node."""
        if self.pool is not None:
            yield from self.pool
        for child in self.children.values():
            yield from child.iter_pool_tids()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeNode(value={self.value}, count={self.count}, "
            f"children={len(self.children)}, pool={None if self.pool is None else len(self.pool)})"
        )


class CuboidTree:
    """A cuboid tree: a root node plus the sub-computation's bookkeeping.

    Attributes
    ----------
    root:
        Root :class:`TreeNode` (its cell is the fixed assignment alone).
    dims:
        The remaining dimensions, one per tree level, in processing order.
    fixed:
        Mapping from dimension to the value inherited from ancestors.
    tree_mask:
        Bit set of dimensions already collapsed to ``*`` (Tree Mask).
    """

    __slots__ = ("root", "dims", "fixed", "tree_mask")

    def __init__(
        self,
        dims: Sequence[int],
        fixed: Dict[int, int],
        tree_mask: int,
    ) -> None:
        self.root = TreeNode(None)
        self.dims = list(dims)
        self.fixed = dict(fixed)
        self.tree_mask = tree_mask

    @property
    def depth(self) -> int:
        """Number of tree levels (remaining dimensions)."""
        return len(self.dims)

    def size(self) -> int:
        """Number of nodes in the tree."""
        return self.root.subtree_size()


# --------------------------------------------------------------------------- #
# Star reduction                                                               #
# --------------------------------------------------------------------------- #


def build_star_tables(
    relation: Relation, min_sup: int, dims: Iterable[int]
) -> Dict[int, Dict[int, int]]:
    """Per-dimension value remapping implementing star reduction.

    A value whose global frequency in the base table is below ``min_sup``
    cannot appear in any iceberg cell, so it is remapped to :data:`STAR`;
    frequent values map to themselves.  With ``min_sup == 1`` every value maps
    to itself and the tables are effectively identity maps.
    """
    tables: Dict[int, Dict[int, int]] = {}
    for dim in dims:
        counts: Dict[int, int] = {}
        for value in relation.columns[dim]:
            counts[value] = counts.get(value, 0) + 1
        tables[dim] = {
            value: (value if count >= min_sup else STAR)
            for value, count in counts.items()
        }
    return tables


def mapped_value(
    star_tables: Optional[Dict[int, Dict[int, int]]], dim: int, value: int
) -> int:
    """Value after star reduction (identity when reduction is disabled)."""
    if star_tables is None:
        return value
    return star_tables[dim].get(value, STAR)


# --------------------------------------------------------------------------- #
# Tree construction                                                            #
# --------------------------------------------------------------------------- #


def build_tree_from_tids(
    relation: Relation,
    tids: Sequence[int],
    dims: Sequence[int],
    fixed: Dict[int, int],
    tree_mask: int,
    min_sup: int,
    track_closedness: bool,
    star_tables: Optional[Dict[int, Dict[int, int]]] = None,
    truncate: bool = False,
) -> CuboidTree:
    """Build a cuboid tree (or StarArray) over ``dims`` from an explicit tid list.

    ``truncate=False`` builds a full star tree: every tuple is expanded down to
    the last dimension.  ``truncate=True`` builds a StarArray: a branch whose
    count falls below ``min_sup`` is not expanded further and keeps its tuple
    ids in the node's pool (Section 4.1); nodes at the last level always keep
    their pool so child trees can be rebuilt from tuple ids.
    """
    tree = CuboidTree(dims, fixed, tree_mask)
    root = tree.root
    root.count = len(tids)
    if track_closedness:
        root.closed = closedness_of_tids(list(tids), relation)
    if not dims:
        root.pool = list(tids)
        return tree
    _expand_node(
        relation, root, list(tids), dims, 0, min_sup, track_closedness,
        star_tables, truncate,
    )
    return tree


def _expand_node(
    relation: Relation,
    node: TreeNode,
    tids: List[int],
    dims: Sequence[int],
    level: int,
    min_sup: int,
    track_closedness: bool,
    star_tables: Optional[Dict[int, Dict[int, int]]],
    truncate: bool,
) -> None:
    """Recursively group ``tids`` on ``dims[level]`` and attach child nodes."""
    if level >= len(dims):
        node.pool = tids
        return
    dim = dims[level]
    column = relation.columns[dim]
    groups: Dict[int, List[int]] = {}
    for tid in tids:
        value = column[tid]
        if star_tables is not None:
            value = star_tables[dim].get(value, STAR)
        groups.setdefault(value, []).append(tid)
    for value, group in groups.items():
        child = node.get_or_create_child(value)
        child.count = len(group)
        if track_closedness:
            child.closed = closedness_of_tids(group, relation)
        if truncate and len(group) < min_sup:
            # StarArray truncation: keep the tuple ids, do not expand below.
            child.pool = group
            continue
        _expand_node(
            relation, child, group, dims, level + 1, min_sup, track_closedness,
            star_tables, truncate,
        )


def collect_tids(node: TreeNode) -> List[int]:
    """All tuple ids below a StarArray node (walks the pools of its subtree)."""
    return list(node.iter_pool_tids())
