"""Benchmark harness: workloads, runner, figure registry, report rendering."""

from .figures import FigureResult, available_figures, get_figure, run_figure
from .harness import ExperimentRunner, Measurement, SweepResult
from .report import render_figure, render_table, rows_to_csv
from .workloads import (
    Workload,
    mixed_cardinality_workload,
    synthetic_workload,
    weather_workload,
)

__all__ = [
    "FigureResult",
    "available_figures",
    "get_figure",
    "run_figure",
    "ExperimentRunner",
    "Measurement",
    "SweepResult",
    "render_figure",
    "render_table",
    "rows_to_csv",
    "Workload",
    "mixed_cardinality_workload",
    "synthetic_workload",
    "weather_workload",
]
