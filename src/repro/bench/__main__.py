"""Command-line entry point: regenerate the paper's figures.

Examples
--------
List the available experiments::

    python -m repro.bench --list

Regenerate one figure::

    python -m repro.bench --figure fig03

Regenerate everything (takes several minutes)::

    python -m repro.bench --all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from .figures import available_figures, run_figure
from .report import render_figure, rows_to_csv


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the C-Cubing evaluation figures.",
    )
    parser.add_argument("--figure", action="append", default=[],
                        help="figure id to run (repeatable), e.g. fig03")
    parser.add_argument("--all", action="store_true", help="run every registered experiment")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of text tables")
    args = parser.parse_args(argv)

    if args.list:
        for figure in available_figures():
            print(figure)
        return 0

    figures = list(args.figure)
    if args.all:
        figures = available_figures()
    if not figures:
        parser.error("specify --figure FIG (repeatable), --all, or --list")

    for figure in figures:
        start = time.perf_counter()
        result = run_figure(figure)
        elapsed = time.perf_counter() - start
        if args.csv:
            print(rows_to_csv(result.rows), end="")
        else:
            print(render_figure(result))
            print(f"(regenerated in {elapsed:.1f}s)")
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
