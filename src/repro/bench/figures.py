"""Figure registry: one runnable experiment per figure of the paper's evaluation.

Every entry regenerates the data series of one figure (Figures 3-18) or one of
the Section 6 extension experiments, at the scaled-down sizes documented in
DESIGN.md / EXPERIMENTS.md.  Each experiment returns a :class:`FigureResult`
containing tidy rows (one per measurement) plus a short interpretation used by
the report renderer; ``python -m repro.bench --figure fig03`` prints them.

The sweeps follow the paper's parameterisation: which quantity is varied, what
is held fixed, which algorithms are compared, and what qualitative shape the
paper reports.  Absolute sizes are reduced so a full run of all experiments
finishes in minutes on a laptop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from ..core.errors import WorkloadError
from ..core.validate import reference_closed_cube, reference_iceberg_cube
from ..datagen.synthetic import SyntheticConfig, generate_relation
from ..rules.closed_rules import compression_report, mine_closed_rules
from ..storage.partition import PartitionedCubeComputer
from .harness import ExperimentRunner
from .workloads import (
    Workload,
    mixed_cardinality_workload,
    synthetic_workload,
    weather_workload,
)

#: Algorithms compared in the full-closed-cube figures (Figures 3-7).
FULL_CLOSED_ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array", "qc-dfs")
#: Algorithms compared in the closed-iceberg figures (Figures 8-11).
ICEBERG_ALGORITHMS = ("c-cubing-mm", "c-cubing-star", "c-cubing-star-array")


@dataclass
class FigureResult:
    """The regenerated data of one figure."""

    figure: str
    title: str
    paper_setting: str
    expected_shape: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class FigureSpec:
    """A registered experiment."""

    figure: str
    title: str
    runner: Callable[[], FigureResult]


_REGISTRY: Dict[str, FigureSpec] = {}


def register_figure(figure: str, title: str) -> Callable[[Callable[[], FigureResult]], Callable[[], FigureResult]]:
    def decorator(func: Callable[[], FigureResult]) -> Callable[[], FigureResult]:
        _REGISTRY[figure] = FigureSpec(figure, title, func)
        return func
    return decorator


def available_figures() -> List[str]:
    return sorted(_REGISTRY)


def get_figure(figure: str) -> FigureSpec:
    try:
        return _REGISTRY[figure]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown figure {figure!r}; available: {available_figures()}"
        ) from exc


def run_figure(figure: str) -> FigureResult:
    return get_figure(figure).runner()


# --------------------------------------------------------------------------- #
# Shared helpers                                                               #
# --------------------------------------------------------------------------- #


def _runtime_sweep(
    figure: str,
    title: str,
    paper_setting: str,
    expected_shape: str,
    points: Sequence[tuple],
    algorithms: Sequence[str],
) -> FigureResult:
    runner = ExperimentRunner()
    sweep = runner.run_sweep(figure, points, algorithms)
    result = FigureResult(figure, title, paper_setting, expected_shape)
    for measurement in sweep.measurements:
        result.rows.append(measurement.as_row())
    for point in sweep.points():
        result.notes.append(f"fastest at {point}: {sweep.winner(point)}")
    return result


# --------------------------------------------------------------------------- #
# Figures 3-7: full closed cube vs QC-DFS                                      #
# --------------------------------------------------------------------------- #


@register_figure("fig03", "Closed cube computation w.r.t. tuples")
def figure_03() -> FigureResult:
    points = []
    for num_tuples in (200, 400, 600, 800):
        workload = synthetic_workload(
            f"T{num_tuples}", num_tuples, num_dims=8, cardinality=20, skew=0.0, min_sup=1
        )
        points.append((f"T={num_tuples}", workload))
    return _runtime_sweep(
        "fig03",
        "Closed cube computation w.r.t. tuples",
        "paper: D=10, C=100, S=0, M=1, T=200K..1000K",
        "all C-Cubing variants beat QC-DFS at every size; gap grows with T",
        points,
        FULL_CLOSED_ALGORITHMS,
    )


@register_figure("fig04", "Closed cube computation w.r.t. dimension")
def figure_04() -> FigureResult:
    points = []
    for num_dims in (4, 5, 6, 7, 8):
        workload = synthetic_workload(
            f"D{num_dims}", 500, num_dims=num_dims, cardinality=20, skew=2.0, min_sup=1
        )
        points.append((f"D={num_dims}", workload))
    return _runtime_sweep(
        "fig04",
        "Closed cube computation w.r.t. dimension",
        "paper: T=1000K, S=2, C=100, M=1, D=6..10",
        "runtime grows with D for every algorithm; QC-DFS stays slowest",
        points,
        FULL_CLOSED_ALGORITHMS,
    )


@register_figure("fig05", "Closed cube computation w.r.t. cardinality")
def figure_05() -> FigureResult:
    points = []
    for cardinality in (5, 10, 50, 200):
        workload = synthetic_workload(
            f"C{cardinality}", 500, num_dims=6, cardinality=cardinality, skew=1.0, min_sup=1
        )
        points.append((f"C={cardinality}", workload))
    return _runtime_sweep(
        "fig05",
        "Closed cube computation w.r.t. cardinality",
        "paper: T=1000K, D=8, S=1, M=1, C=10..10000",
        "CC(Star) best at low C, CC(StarArray) overtakes at high C; QC-DFS degrades most",
        points,
        FULL_CLOSED_ALGORITHMS,
    )


@register_figure("fig06", "Closed cube computation w.r.t. skew")
def figure_06() -> FigureResult:
    points = []
    for skew in (0.0, 1.0, 2.0, 3.0):
        workload = synthetic_workload(
            f"S{skew}", 500, num_dims=6, cardinality=20, skew=skew, min_sup=1
        )
        points.append((f"S={skew}", workload))
    return _runtime_sweep(
        "fig06",
        "Closed cube computation w.r.t. skew",
        "paper: T=1000K, C=100, D=8, M=1, S=0..3",
        "every algorithm speeds up as skew grows; C-Cubing variants stay ahead of QC-DFS",
        points,
        FULL_CLOSED_ALGORITHMS,
    )


@register_figure("fig07", "Closed cube computation on the weather data w.r.t. dimension")
def figure_07() -> FigureResult:
    points = []
    for num_dims in (5, 6, 7, 8):
        workload = weather_workload(f"W{num_dims}", num_dims=num_dims, min_sup=1, num_tuples=1200)
        points.append((f"D={num_dims}", workload))
    return _runtime_sweep(
        "fig07",
        "Closed cube computation, weather data",
        "paper: SEP83L.DAT, first 5..8 dimensions, M=1",
        "C-Cubing variants beat QC-DFS on the real (simulated) trace as well",
        points,
        FULL_CLOSED_ALGORITHMS,
    )


# --------------------------------------------------------------------------- #
# Figures 8-11: closed iceberg cubes                                           #
# --------------------------------------------------------------------------- #


@register_figure("fig08", "Closed iceberg cube w.r.t. min_sup")
def figure_08() -> FigureResult:
    points = []
    for min_sup in (2, 4, 8, 16):
        workload = synthetic_workload(
            f"M{min_sup}", 1200, num_dims=6, cardinality=20, skew=0.0, min_sup=min_sup
        )
        points.append((f"M={min_sup}", workload))
    return _runtime_sweep(
        "fig08",
        "Closed iceberg cube computation w.r.t. min_sup",
        "paper: T=1000K, C=100, S=0, D=8, M=2..16",
        "Star family best at low min_sup; C-Cubing(MM) catches up as min_sup grows",
        points,
        ICEBERG_ALGORITHMS,
    )


@register_figure("fig09", "Closed iceberg cube w.r.t. skew")
def figure_09() -> FigureResult:
    points = []
    for skew in (0.0, 1.0, 2.0, 3.0):
        workload = synthetic_workload(
            f"S{skew}", 1200, num_dims=6, cardinality=20, skew=skew, min_sup=8
        )
        points.append((f"S={skew}", workload))
    return _runtime_sweep(
        "fig09",
        "Closed iceberg cube computation w.r.t. skew",
        "paper: T=1000K, D=8, C=100, M=10, S=0..3",
        "runtimes drop as skew grows; relative order of the three variants is preserved",
        points,
        ICEBERG_ALGORITHMS,
    )


@register_figure("fig10", "Closed iceberg cube w.r.t. cardinality")
def figure_10() -> FigureResult:
    points = []
    for cardinality in (5, 10, 50, 200):
        workload = synthetic_workload(
            f"C{cardinality}", 1200, num_dims=6, cardinality=cardinality, skew=1.0, min_sup=8
        )
        points.append((f"C={cardinality}", workload))
    return _runtime_sweep(
        "fig10",
        "Closed iceberg cube computation w.r.t. cardinality",
        "paper: T=1000K, D=8, S=1, M=10, C=10..10000",
        "CC(StarArray) gains on CC(Star) as cardinality grows",
        points,
        ICEBERG_ALGORITHMS,
    )


@register_figure("fig11", "Closed iceberg cube on the weather data w.r.t. min_sup")
def figure_11() -> FigureResult:
    points = []
    for min_sup in (2, 4, 8, 16):
        workload = weather_workload(f"M{min_sup}", num_dims=8, min_sup=min_sup, num_tuples=1500)
        points.append((f"M={min_sup}", workload))
    return _runtime_sweep(
        "fig11",
        "Closed iceberg cube computation, weather data, w.r.t. min_sup",
        "paper: weather data, D=8, M=2..16",
        "Star family leads at low min_sup; the switch to CC(MM) happens later than on synthetic data",
        points,
        ICEBERG_ALGORITHMS,
    )


# --------------------------------------------------------------------------- #
# Figures 12-15: closed pruning vs iceberg pruning (data dependence)           #
# --------------------------------------------------------------------------- #


def _dependence_workload(dependence: float, min_sup: int, num_tuples: int = 800) -> Workload:
    return synthetic_workload(
        f"R{dependence}-M{min_sup}",
        num_tuples,
        num_dims=7,
        cardinality=8,
        skew=0.0,
        dependence=dependence,
        min_sup=min_sup,
    )


@register_figure("fig12", "Runtime w.r.t. data dependence")
def figure_12() -> FigureResult:
    points = []
    for dependence in (0.0, 1.0, 2.0, 3.0):
        points.append((f"R={dependence}", _dependence_workload(dependence, min_sup=8)))
    return _runtime_sweep(
        "fig12",
        "Cube computation w.r.t. data dependence",
        "paper: T=400K, D=8, C=20, S=0, M=16, R=0..3",
        "CC(Star) improves relative to CC(MM) as dependence grows (more closed pruning)",
        points,
        ("c-cubing-mm", "c-cubing-star"),
    )


@register_figure("fig13", "Cube size w.r.t. data dependence")
def figure_13() -> FigureResult:
    result = FigureResult(
        "fig13",
        "Cube size w.r.t. data dependence",
        "paper: T=400K, D=8, C=20, S=0, M=16, R=0..3",
        "the gap between iceberg and closed iceberg size grows with dependence",
    )
    for dependence in (0.0, 1.0, 2.0, 3.0):
        workload = _dependence_workload(dependence, min_sup=8)
        relation = workload.relation()
        iceberg = reference_iceberg_cube(relation, workload.min_sup)
        closed = reference_closed_cube(relation, workload.min_sup)
        result.rows.append(
            {
                "point": f"R={dependence}",
                "iceberg_cells": len(iceberg),
                "closed_cells": len(closed),
                "iceberg_mb": round(iceberg.size_megabytes(), 4),
                "closed_mb": round(closed.size_megabytes(), 4),
                "closed_to_iceberg_ratio": round(len(closed) / max(len(iceberg), 1), 3),
            }
        )
    return result


@register_figure("fig14", "Cube size w.r.t. min_sup")
def figure_14() -> FigureResult:
    result = FigureResult(
        "fig14",
        "Cube size w.r.t. min_sup",
        "paper: T=400K, D=8, C=20, S=0, R=2, M=1..64",
        "iceberg pruning dominates at high min_sup: iceberg and closed sizes converge",
    )
    for min_sup in (1, 4, 16, 64):
        workload = _dependence_workload(2.0, min_sup=min_sup)
        relation = workload.relation()
        iceberg = reference_iceberg_cube(relation, min_sup)
        closed = reference_closed_cube(relation, min_sup)
        result.rows.append(
            {
                "point": f"M={min_sup}",
                "iceberg_cells": len(iceberg),
                "closed_cells": len(closed),
                "iceberg_mb": round(iceberg.size_megabytes(), 4),
                "closed_mb": round(closed.size_megabytes(), 4),
                "closed_to_iceberg_ratio": round(len(closed) / max(len(iceberg), 1), 3),
            }
        )
    return result


@register_figure("fig15", "Best algorithm over the (min_sup, dependence) grid")
def figure_15() -> FigureResult:
    result = FigureResult(
        "fig15",
        "Best algorithm, varying min_sup and dependence",
        "paper: T=400K, D=8, C=20, S=0, M=1..512, R=1..3",
        "the min_sup at which CC(MM) overtakes CC(Star) increases with dependence",
    )
    runner = ExperimentRunner()
    algorithms = ("c-cubing-mm", "c-cubing-star")
    for dependence in (0.0, 1.0, 2.0, 3.0):
        for min_sup in (1, 4, 16, 64):
            workload = _dependence_workload(dependence, min_sup=min_sup, num_tuples=600)
            measurements = runner.run_point(
                "fig15", f"R={dependence},M={min_sup}", workload, algorithms
            )
            by_name = {m.algorithm: m.seconds for m in measurements}
            winner = min(by_name, key=by_name.get)
            result.rows.append(
                {
                    "point": f"R={dependence},M={min_sup}",
                    "dependence": dependence,
                    "min_sup": min_sup,
                    "winner": winner,
                    **{f"seconds[{name}]": round(seconds, 4) for name, seconds in by_name.items()},
                }
            )
    return result


# --------------------------------------------------------------------------- #
# Figures 16-17: overhead of closed checking / benefit of closed pruning       #
# --------------------------------------------------------------------------- #


def _overhead_sweep(
    figure: str,
    title: str,
    paper_setting: str,
    expected_shape: str,
    closed_algorithm: str,
    plain_algorithm: str,
) -> FigureResult:
    result = FigureResult(figure, title, paper_setting, expected_shape)
    runner = ExperimentRunner()
    for min_sup in (1, 2, 4, 8, 16):
        closed_workload = weather_workload(
            f"M{min_sup}-closed", num_dims=8, min_sup=min_sup, num_tuples=1500, closed=True
        )
        plain_workload = weather_workload(
            f"M{min_sup}-plain", num_dims=8, min_sup=min_sup, num_tuples=1500, closed=False
        )
        relation = closed_workload.relation()
        closed_measure = runner.run_point(
            figure, f"M={min_sup}", closed_workload, [closed_algorithm], relation=relation
        )[0]
        plain_measure = runner.run_point(
            figure, f"M={min_sup}", plain_workload, [plain_algorithm], relation=relation
        )[0]
        ratio = closed_measure.seconds / max(plain_measure.seconds, 1e-9)
        result.rows.append(
            {
                "point": f"M={min_sup}",
                "min_sup": min_sup,
                f"seconds[{closed_algorithm}]": round(closed_measure.seconds, 4),
                f"seconds[{plain_algorithm}]": round(plain_measure.seconds, 4),
                "closed_cells": closed_measure.cells,
                "iceberg_cells": plain_measure.cells,
                "closed_over_plain": round(ratio, 3),
            }
        )
    return result


@register_figure("fig16", "Overhead of closed checking: C-Cubing(MM) vs MM-Cubing")
def figure_16() -> FigureResult:
    return _overhead_sweep(
        "fig16",
        "Overhead of closed checking (MM family), weather data",
        "paper: weather data, D=8, M=1..32, output disabled",
        "CC(MM) can beat MM-Cubing at low min_sup (closure short cut); overhead stays small at high min_sup",
        closed_algorithm="c-cubing-mm",
        plain_algorithm="mm-cubing",
    )


@register_figure("fig17", "Benefit of closed pruning: C-Cubing(StarArray) vs StarArray")
def figure_17() -> FigureResult:
    return _overhead_sweep(
        "fig17",
        "Benefit of closed pruning (StarArray family), weather data",
        "paper: weather data, D=8, M=1..32, output disabled",
        "the closed version is faster than the plain version, most clearly at low min_sup",
        closed_algorithm="c-cubing-star-array",
        plain_algorithm="star-array",
    )


# --------------------------------------------------------------------------- #
# Figure 18: dimension ordering                                                #
# --------------------------------------------------------------------------- #


@register_figure("fig18", "Dimension ordering strategies (StarArray)")
def figure_18() -> FigureResult:
    result = FigureResult(
        "fig18",
        "Cube computation (StarArray) w.r.t. dimension order",
        "paper: T=400K, D=8, C=10 and 1000, S=0..3, M=1..256",
        "entropy ordering <= cardinality ordering <= original ordering",
    )
    for min_sup in (2, 4, 8, 16):
        workload = mixed_cardinality_workload(
            f"M{min_sup}", num_tuples=1000, min_sup=min_sup, high_cardinality=200
        )
        relation = workload.relation()
        row: Dict[str, object] = {"point": f"M={min_sup}", "min_sup": min_sup}
        for order_name in ("original", "cardinality", "entropy"):
            runner = ExperimentRunner(dimension_order=order_name)
            measurement = runner.run_point(
                "fig18", f"M={min_sup}", workload, ["c-cubing-star-array"], relation=relation
            )[0]
            row[f"seconds[{order_name}]"] = round(measurement.seconds, 4)
        result.rows.append(row)
    return result


# --------------------------------------------------------------------------- #
# Section 6 extension experiments                                              #
# --------------------------------------------------------------------------- #


@register_figure("e62", "Closed rules vs closed cells (Section 6.2)")
def experiment_62() -> FigureResult:
    result = FigureResult(
        "e62",
        "Closed rules vs closed cells",
        "paper: weather data, D=8, M=10 — 462k closed cells vs 57k closed rules",
        "the rule set is a small fraction of the closed cell count",
    )
    relation = weather_workload("rules", num_dims=6, min_sup=4, num_tuples=800).relation()
    closed = reference_closed_cube(relation, min_sup=4)
    rules = mine_closed_rules(relation, closed, max_condition_arity=2)
    report = compression_report(closed, rules)
    result.rows.append({"point": "weather D=6 M=4", **report})
    return result


@register_figure("e63", "Partitioned computation (Section 6.3)")
def experiment_63() -> FigureResult:
    result = FigureResult(
        "e63",
        "Partitioned (external) closed cube computation",
        "paper: partition the data on one dimension, compute partitions one by one",
        "the partitioned result equals the in-memory result at every memory budget",
    )
    config = SyntheticConfig.uniform(num_tuples=400, num_dims=5, cardinality=8, skew=1.0, seed=3)
    relation = generate_relation(config)
    expected = reference_closed_cube(relation, min_sup=2)
    for budget in (100, 200, None):
        computer = PartitionedCubeComputer(
            algorithm="c-cubing-star", min_sup=2, closed=True, memory_budget_tuples=budget
        )
        start = time.perf_counter()
        cube, report = computer.compute(relation)
        seconds = time.perf_counter() - start
        result.rows.append(
            {
                "point": f"budget={budget}",
                "seconds": round(seconds, 4),
                "partitions": report.num_partitions,
                "largest_partition": report.largest_partition,
                "spilled_files": report.spilled_files,
                "matches_in_memory": expected.same_cells(cube),
            }
        )
    return result
