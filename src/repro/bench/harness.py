"""Experiment runner used by both the benchmark suite and the CLI.

The harness runs one or more algorithms over a sweep of workloads, records
wall-clock time, output size, and per-algorithm counters, and optionally
verifies every result against the oracle.  Results are plain dataclasses so
the report module can render them as the text tables recorded in
EXPERIMENTS.md and the pytest-benchmark targets can reuse the same plumbing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..algorithms.base import CubingOptions, get_algorithm
from ..core.cube import CubeResult
from ..core.errors import ValidationError, WorkloadError
from ..core.relation import Relation
from ..core.validate import reference_closed_cube, reference_iceberg_cube, verify_cube
from .workloads import Workload


@dataclass
class Measurement:
    """One (workload point, algorithm) measurement."""

    figure: str
    point: str
    algorithm: str
    seconds: float
    cells: int
    min_sup: int
    closed: bool
    counters: Dict[str, int] = field(default_factory=dict)
    verified: Optional[bool] = None

    def as_row(self) -> Dict[str, object]:
        return {
            "figure": self.figure,
            "point": self.point,
            "algorithm": self.algorithm,
            "seconds": round(self.seconds, 4),
            "cells": self.cells,
            "min_sup": self.min_sup,
            "closed": self.closed,
            "verified": self.verified,
        }


@dataclass
class SweepResult:
    """All measurements of one figure, in sweep order."""

    figure: str
    measurements: List[Measurement] = field(default_factory=list)

    def algorithms(self) -> List[str]:
        seen: List[str] = []
        for measurement in self.measurements:
            if measurement.algorithm not in seen:
                seen.append(measurement.algorithm)
        return seen

    def points(self) -> List[str]:
        seen: List[str] = []
        for measurement in self.measurements:
            if measurement.point not in seen:
                seen.append(measurement.point)
        return seen

    def seconds(self, point: str, algorithm: str) -> Optional[float]:
        for measurement in self.measurements:
            if measurement.point == point and measurement.algorithm == algorithm:
                return measurement.seconds
        return None

    def winner(self, point: str) -> Optional[str]:
        """Fastest algorithm at a sweep point."""
        best_name, best_seconds = None, None
        for measurement in self.measurements:
            if measurement.point != point:
                continue
            if best_seconds is None or measurement.seconds < best_seconds:
                best_name, best_seconds = measurement.algorithm, measurement.seconds
        return best_name


class ExperimentRunner:
    """Run algorithms over workload sweeps with optional oracle verification."""

    def __init__(self, verify: bool = False, dimension_order: object = None) -> None:
        self.verify = verify
        self.dimension_order = dimension_order

    # ------------------------------------------------------------------ #

    def run_point(
        self,
        figure: str,
        point: str,
        workload: Workload,
        algorithms: Sequence[str],
        relation: Optional[Relation] = None,
    ) -> List[Measurement]:
        """Run every algorithm on one workload point."""
        if not algorithms:
            raise WorkloadError("at least one algorithm is required")
        relation = relation if relation is not None else workload.relation()
        reference: Optional[CubeResult] = None
        if self.verify:
            reference = (
                reference_closed_cube(relation, workload.min_sup)
                if workload.closed
                else reference_iceberg_cube(relation, workload.min_sup)
            )
        measurements = []
        for name in algorithms:
            options = CubingOptions(
                min_sup=workload.min_sup,
                closed=workload.closed,
                dimension_order=self.dimension_order,
            )
            algorithm = get_algorithm(name, options)
            start = time.perf_counter()
            cube = algorithm.compute(relation)
            seconds = time.perf_counter() - start
            verified: Optional[bool] = None
            if reference is not None:
                try:
                    verify_cube(cube, reference, label=f"{figure}/{point}/{name}")
                    verified = True
                except ValidationError:
                    verified = False
                    raise
            measurements.append(
                Measurement(
                    figure=figure,
                    point=point,
                    algorithm=name,
                    seconds=seconds,
                    cells=len(cube),
                    min_sup=workload.min_sup,
                    closed=workload.closed,
                    counters=dict(algorithm.counters),
                    verified=verified,
                )
            )
        return measurements

    def run_sweep(
        self,
        figure: str,
        points: Sequence[tuple],
        algorithms: Sequence[str],
    ) -> SweepResult:
        """Run a whole sweep: ``points`` is a sequence of (label, workload)."""
        result = SweepResult(figure=figure)
        for label, workload in points:
            result.measurements.extend(
                self.run_point(figure, label, workload, algorithms)
            )
        return result
