"""Plain-text rendering of benchmark results.

The figure runners return tidy rows (lists of dictionaries); this module turns
them into aligned text tables for the CLI and for EXPERIMENTS.md, and can also
write them as CSV for further analysis.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Sequence

from .figures import FigureResult


def render_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render a list of homogeneous-ish dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def render_figure(result: FigureResult) -> str:
    """Full text report of one regenerated figure."""
    lines = [
        f"== {result.figure}: {result.title} ==",
        f"paper setting : {result.paper_setting}",
        f"expected shape: {result.expected_shape}",
        "",
        render_table(result.rows),
    ]
    if result.notes:
        lines.append("")
        lines.extend(f"note: {note}" for note in result.notes)
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Serialise rows as CSV text (used by ``--csv``)."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def render_summary(results: Iterable[FigureResult]) -> str:
    """Concatenate several figure reports."""
    return "\n\n".join(render_figure(result) for result in results)
