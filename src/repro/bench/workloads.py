"""Workload construction for the benchmark harness.

A workload is a named recipe producing a :class:`repro.core.relation.Relation`
plus the cubing parameters (``min_sup``, closed or not) a figure needs.  The
figure registry (:mod:`repro.bench.figures`) composes these into parameter
sweeps.  All sizes are scaled down from the paper's 200K-1M tuple datasets to
Python-friendly sizes; the *relative* parameterisation of each sweep follows
the paper (see DESIGN.md Section 4 and EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.relation import Relation
from ..datagen.synthetic import (
    SyntheticConfig,
    generate_relation,
    mixed_cardinality_config,
)
from ..datagen.weather import WeatherConfig, generate_weather_relation, weather_subset


@dataclass(frozen=True)
class Workload:
    """A dataset recipe plus the cubing parameters of one experiment point."""

    name: str
    build: Callable[[], Relation]
    min_sup: int = 1
    closed: bool = True
    description: str = ""

    def relation(self) -> Relation:
        """Materialise the dataset (cached per call site by the harness)."""
        return self.build()


_WEATHER_CACHE: Dict[WeatherConfig, Relation] = {}


def weather_relation(config: Optional[WeatherConfig] = None) -> Relation:
    """A cached synthetic weather relation (the generator is deterministic)."""
    config = config or WeatherConfig()
    cached = _WEATHER_CACHE.get(config)
    if cached is None:
        cached = generate_weather_relation(config)
        _WEATHER_CACHE[config] = cached
    return cached


def synthetic_workload(
    name: str,
    num_tuples: int,
    num_dims: int,
    cardinality: int,
    skew: float = 0.0,
    dependence: float = 0.0,
    min_sup: int = 1,
    closed: bool = True,
    seed: int = 1,
) -> Workload:
    """A uniform-parameter synthetic workload (the paper's usual T/D/C/S/M point)."""
    config = SyntheticConfig.uniform(
        num_tuples=num_tuples,
        num_dims=num_dims,
        cardinality=cardinality,
        skew=skew,
        dependence=dependence,
        seed=seed,
    )
    return Workload(
        name=name,
        build=lambda config=config: generate_relation(config),
        min_sup=min_sup,
        closed=closed,
        description=config.describe() + f" M={min_sup}",
    )


def weather_workload(
    name: str,
    num_dims: int = 8,
    min_sup: int = 1,
    closed: bool = True,
    num_tuples: int = 2000,
) -> Workload:
    """A workload over the synthetic weather trace (Figures 7, 11, 16, 17)."""
    config = WeatherConfig(num_tuples=num_tuples)
    return Workload(
        name=name,
        build=lambda: weather_subset(weather_relation(config), num_dims),
        min_sup=min_sup,
        closed=closed,
        description=f"weather D={num_dims} T={num_tuples} M={min_sup}",
    )


def mixed_cardinality_workload(
    name: str,
    num_tuples: int,
    min_sup: int,
    low_cardinality: int = 10,
    high_cardinality: int = 200,
    closed: bool = True,
    seed: int = 1,
) -> Workload:
    """The Figure 18 workload: mixed cardinalities and skews across dimensions."""
    config = mixed_cardinality_config(
        num_tuples, low_cardinality=low_cardinality, high_cardinality=high_cardinality, seed=seed
    )
    return Workload(
        name=name,
        build=lambda config=config: generate_relation(config),
        min_sup=min_sup,
        closed=closed,
        description=config.describe() + f" M={min_sup}",
    )
