"""Multi-cube catalog: named serving cubes over one durable directory.

:class:`CubeCatalog` turns the single-cube session API into a small OLAP
server's registry — create/open/load/drop/list cubes by name, with per-cube
snapshots and append streams in a shared directory (see
:mod:`repro.catalog.catalog` for the durability story).  The asyncio front
end (:mod:`repro.server`) serves one of these.
"""

from .catalog import CubeCatalog, CubeSource

__all__ = ["CubeCatalog", "CubeSource"]
