"""The cube catalog: a named, durable registry of serving cubes.

One :class:`CubeCatalog` owns one directory.  Inside it live a JSON manifest
(:mod:`repro.storage.manifest`), one snapshot per cube (the v1 atomic-rename
format of :mod:`repro.storage.snapshot`), and one *append stream* per cube —
a line-JSON journal of the row batches appended since the cube's snapshot
was last written.  Together they make the catalog crash-consistent without
ever rewriting a snapshot per append: a reopened catalog loads each cube's
snapshot and replays its stream, landing exactly where the process died.

    catalog = CubeCatalog("/var/lib/cubes")
    catalog.create("sales", rows, schema={"dimensions": ["store", "product"]})
    catalog.append("sales", more_rows)          # journaled + merged
    catalog.save("sales")                       # snapshot, stream truncated
    ...
    catalog = CubeCatalog("/var/lib/cubes")     # later / elsewhere
    catalog.open("sales").point({"store": "nyc"})

``create`` accepts raw rows (with an optional schema), a configured
:class:`~repro.session.session.CubeSession` (build settings travel with it),
or an already-built :class:`~repro.session.serving.ServingCube`.  ``open``
returns the live in-memory cube, loading it on first use; ``load`` forces a
fresh load from disk.  All catalog state (manifest, instance table, journal
offsets) is guarded by one reentrant lock, while the cubes themselves rely
on their own serving locks — so appends to *different* cubes overlap, which
is the point of a multi-cube server.

The snapshot payloads are pickle (see :mod:`repro.storage.snapshot`): only
open catalog directories you trust.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from ..core.errors import CatalogError
from ..session.serving import ServingCube
from ..session.session import CubeSession
from ..storage.manifest import (
    CatalogManifest,
    CubeEntry,
    appends_filename,
    snapshot_filename,
    validate_cube_name,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor

    from ..incremental.maintainer import AppendReport

#: What :meth:`CubeCatalog.create` accepts as a cube source.
CubeSource = Union[ServingCube, CubeSession, Sequence[object]]


class CubeCatalog:
    """A directory of named serving cubes with durable append streams."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.RLock()
        self._manifest = CatalogManifest.load(self.directory)
        #: Live cubes by name (loaded lazily by :meth:`open`).
        self._cubes: Dict[str, ServingCube] = {}
        #: Per-name guards so a slow snapshot load never runs under (and so
        #: never blocks) the catalog-wide lock — appends and opens on *other*
        #: cubes proceed while one cube loads.
        self._load_guards: Dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------ #
    # Registry operations                                                 #
    # ------------------------------------------------------------------ #

    def create(
        self,
        name: str,
        source: CubeSource,
        schema: Optional[object] = None,
    ) -> ServingCube:
        """Register a new cube under ``name`` and persist its first snapshot.

        ``source`` is raw rows (``schema`` as for :meth:`CubeSession.
        from_rows`), a configured :class:`CubeSession` (built here with its
        own settings), or an existing :class:`ServingCube`.  The snapshot is
        written immediately — a created cube survives a crash without any
        explicit ``save``.
        """
        validate_cube_name(name)
        if isinstance(source, ServingCube):
            if schema is not None:
                raise CatalogError(
                    "schema cannot be overridden when registering a built "
                    "ServingCube"
                )
            cube = source
        elif isinstance(source, CubeSession):
            if schema is not None:
                raise CatalogError(
                    "schema cannot be overridden when building from a "
                    "CubeSession (the session already has one)"
                )
            cube = source.build()
        else:
            cube = CubeSession.from_rows(source, schema=schema).build()
        with self._lock:
            if name in self._manifest.entries:
                raise CatalogError(
                    f"cube {name!r} already exists in catalog "
                    f"{self.directory!r}; drop() it first or pick another name"
                )
            entry = CubeEntry(
                snapshot=snapshot_filename(name),
                appends=appends_filename(name),
                created_at=time.time(),
            )
            self._manifest.entries[name] = entry
            self._cubes[name] = cube
            self._write_snapshot(name, cube, entry)
        return cube

    def open(self, name: str) -> ServingCube:
        """The live cube called ``name``, loading (and replaying) on first use."""
        with self._lock:
            cube = self._cubes.get(name)
            if cube is not None:
                return cube
        return self._load(name)

    def get_loaded(self, name: str) -> Optional[ServingCube]:
        """The live cube if (and only if) it is already in memory.

        Never touches disk — the probe introspection paths (e.g.
        :meth:`repro.server.AsyncCubeServer.stats`) use so they cannot stall
        on a snapshot load.
        """
        with self._lock:
            return self._cubes.get(name)

    def load(self, name: str) -> ServingCube:
        """Force a fresh load of ``name`` from its snapshot + append stream.

        Discards the in-memory instance (unsaved *in-memory only* state of a
        cube appended outside the catalog is lost — catalog appends are
        journaled and therefore replayed).
        """
        with self._lock:
            self._cubes.pop(name, None)
        return self._load(name)

    def drop(self, name: str) -> None:
        """Unregister ``name`` and delete its snapshot and append stream."""
        with self._lock:
            entry = self._entry(name)
            del self._manifest.entries[name]
            self._cubes.pop(name, None)
            self._manifest.save(self.directory)
            for filename in (entry.snapshot, entry.appends):
                try:
                    os.unlink(os.path.join(self.directory, filename))
                except FileNotFoundError:
                    pass

    def list(self) -> List[str]:
        """Registered cube names, sorted."""
        with self._lock:
            return sorted(self._manifest.entries)

    def describe(self, name: str) -> Dict[str, object]:
        """Manifest metadata for one cube (no snapshot is opened)."""
        with self._lock:
            entry = self._entry(name)
            return {
                "name": name,
                "snapshot": entry.snapshot,
                "appends": entry.appends,
                "created_at": entry.created_at,
                "saved_at": entry.saved_at,
                "rows": entry.rows,
                "cells": entry.cells,
                "algorithm": entry.algorithm,
                "dimensions": list(entry.dimensions),
                "loaded": name in self._cubes,
                "pending_appends": self._journal_batches(entry),
            }

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._manifest.entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._manifest.entries)

    # ------------------------------------------------------------------ #
    # Maintenance                                                         #
    # ------------------------------------------------------------------ #

    def append(
        self,
        name: str,
        rows: Sequence[object],
        copy_on_publish: bool = False,
        executor: Optional["Executor"] = None,
    ) -> "AppendReport":
        """Append rows to ``name`` durably: journal first, then merge.

        The batch is written to the cube's append stream before the merge
        runs, so a crash at any later point replays it on the next load; a
        merge *failure* (bad rows) rolls the journal entry back.  Rows must
        be JSON-serialisable (they are for every protocol-fed workload); for
        non-JSON values append on the cube directly and :meth:`save` to
        persist.  ``copy_on_publish`` / ``executor`` pass through to
        :meth:`repro.session.serving.ServingCube.append`.
        """
        cube = self.open(name)
        if not rows:
            return cube.append(rows)
        with self._lock:
            entry = self._entry(name)
            path = os.path.join(self.directory, entry.appends)
        try:
            line = json.dumps({"rows": [self._jsonable_row(row) for row in rows]})
        except (TypeError, ValueError) as exc:
            raise CatalogError(
                f"rows appended through the catalog must be JSON-serialisable "
                f"({exc}); append on the ServingCube directly and save() to "
                "persist non-JSON values"
            ) from exc
        record = line + "\n"
        with self._lock:
            with open(path, "a") as stream:
                offset = stream.tell()
                stream.write(record)
        try:
            return cube.append(
                rows, copy_on_publish=copy_on_publish, executor=executor
            )
        except BaseException:
            # The journal must not replay a batch the cube rejected — but
            # other threads may have journaled *after* this line while the
            # failed merge ran, so a blind truncate(offset) would erase
            # their durably-committed batches.  Truncate only when the file
            # still ends with exactly our record; otherwise rewrite it with
            # one occurrence of the record removed.
            with self._lock:
                self._remove_journal_record(path, offset, record)
            raise

    def save(self, name: Optional[str] = None) -> None:
        """Snapshot one cube (or every loaded cube) and truncate its stream.

        Only *loaded* cubes are written on a catalog-wide save: an unloaded
        cube's snapshot + stream on disk are already its durable state.
        """
        with self._lock:
            names = [name] if name is not None else sorted(self._cubes)
            for cube_name in names:
                entry = self._entry(cube_name)
                cube = self._cubes.get(cube_name)
                if cube is None:
                    if name is not None:
                        raise CatalogError(
                            f"cube {cube_name!r} is not loaded; open() it "
                            "before save(), or rely on its on-disk state"
                        )
                    continue
                self._write_snapshot(cube_name, cube, entry)

    # ------------------------------------------------------------------ #
    # Internals                                                           #
    # ------------------------------------------------------------------ #

    def _entry(self, name: str) -> CubeEntry:
        entry = self._manifest.entries.get(name)
        if entry is None:
            raise CatalogError(
                f"no cube named {name!r} in catalog {self.directory!r}; "
                f"known cubes: {sorted(self._manifest.entries)}"
            )
        return entry

    @staticmethod
    def _jsonable_row(row: object) -> object:
        """A JSON-shaped copy of one raw row (tuples become lists)."""
        if isinstance(row, dict):
            return dict(row)
        return list(row)  # type: ignore[call-overload]

    @staticmethod
    def _remove_journal_record(path: str, offset: int, record: str) -> None:
        """Undo one journal write without touching later writers' records.

        Fast path: the file still ends with our record at our offset —
        truncate it away.  Slow path (another thread appended while our
        merge was failing): rewrite the stream with a single occurrence of
        the record dropped.  Caller holds the catalog lock, so no journal
        write can interleave with the rewrite.
        """
        with open(path, "r+") as stream:
            stream.seek(offset)
            tail = stream.read()
            if tail == record:
                stream.truncate(offset)
                return
        with open(path, "r") as stream:
            lines = stream.readlines()
        try:
            lines.reverse()
            lines.remove(record)
            lines.reverse()
        except ValueError:  # pragma: no cover - record already gone
            return
        with open(path, "w") as stream:
            stream.writelines(lines)

    def _write_snapshot(self, name: str, cube: ServingCube, entry: CubeEntry) -> None:
        """Snapshot + truncate the stream + rewrite the manifest (lock held)."""
        cube.save(os.path.join(self.directory, entry.snapshot))
        open(os.path.join(self.directory, entry.appends), "w").close()
        entry.saved_at = time.time()
        entry.rows = cube.relation.num_tuples
        entry.cells = len(cube)
        entry.algorithm = cube.algorithm
        entry.dimensions = tuple(cube.schema.dimensions)
        self._manifest.save(self.directory)

    def _journal_batches(self, entry: CubeEntry) -> int:
        """Number of journaled batches pending replay for one entry."""
        path = os.path.join(self.directory, entry.appends)
        if not os.path.exists(path):
            return 0
        with open(path, "r") as stream:
            return sum(1 for line in stream if line.strip())

    def _load(self, name: str) -> ServingCube:
        """Load snapshot + replay stream, off the catalog-wide lock.

        The heavy part (unpickling the snapshot, replaying journaled
        batches) runs under a per-name guard only, so appends and opens on
        other cubes — the whole point of a multi-cube catalog — proceed
        while this cube loads.  Duplicate concurrent loads of one name
        serialise on the guard, and the first finished instance wins.
        """
        with self._lock:
            guard = self._load_guards.setdefault(name, threading.Lock())
        with guard:
            with self._lock:
                cube = self._cubes.get(name)
                if cube is not None:
                    return cube
                entry = self._entry(name)
                snapshot_path = os.path.join(self.directory, entry.snapshot)
                batches = self._read_journal(entry)
            cube = ServingCube.load(snapshot_path)
            for batch in batches:
                rows = [
                    tuple(row) if isinstance(row, list) else row for row in batch
                ]
                cube.append(rows)
            with self._lock:
                existing = self._cubes.get(name)
                if existing is not None:
                    return existing
                self._cubes[name] = cube
                return cube

    def _read_journal(self, entry: CubeEntry) -> List[List[object]]:
        """The journaled batches of one cube, tolerating one torn tail line."""
        path = os.path.join(self.directory, entry.appends)
        if not os.path.exists(path):
            return []
        with open(path, "r") as stream:
            lines = stream.readlines()
        batches: List[List[object]] = []
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                batches.append(record["rows"])
            except (ValueError, KeyError, TypeError) as exc:
                if position == len(lines) - 1:
                    # A torn final line is the expected crash artefact of an
                    # interrupted append; everything before it is intact.
                    break
                raise CatalogError(
                    f"corrupt append stream {path!r} at line "
                    f"{position + 1}: {exc}"
                ) from exc
        return batches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CubeCatalog({self.directory!r}, cubes={self.list()!r}, "
            f"loaded={sorted(self._cubes)!r})"
        )
