"""The cube catalog: a named, durable registry of serving cubes.

One :class:`CubeCatalog` owns one directory.  Inside it live a JSON manifest
(:mod:`repro.storage.manifest`), one snapshot per cube (the versioned format
of :mod:`repro.storage.snapshot` — v2 streaming for everything this build
writes, v1 still loadable), optional *delta segments* (compacted journal
folds, see below), and one *append stream* per cube — a line-JSON journal of
the row batches appended since the cube's durable state was last advanced.
Together they make the catalog crash-consistent without ever rewriting a
snapshot per append: a reopened catalog loads each cube's snapshot, folds its
delta segments, and replays the journal tail, landing exactly where the
process died.

    catalog = CubeCatalog("/var/lib/cubes")
    catalog.create("sales", rows, schema={"dimensions": ["store", "product"]})
    catalog.append("sales", more_rows)          # journaled + merged
    catalog.compact("sales")                    # journal folded durably
    catalog.save("sales")                       # full fresh snapshot
    ...
    catalog = CubeCatalog("/var/lib/cubes")     # later / elsewhere
    catalog.open("sales").point({"store": "nyc"})

**Compaction.**  The append journal grows without bound until something folds
it.  :meth:`CubeCatalog.compact` does that fold in one of two modes:
*incremental* (the default when the cube supports exact delta maintenance)
writes a delta segment — the appended rows plus the closed delta cube over
them — next to the base snapshot; *full* rewrites a fresh snapshot under a
new generation file name.  Either way the manifest advances ``journal_offset``
in the same atomic manifest flip that publishes the new file, so a crash at
any point leaves a consistent chain: the half-written file is unreferenced
garbage and the journal tail still replays.  An automatic policy
(``auto_compact_ratio``) triggers compaction from :meth:`append` once the
un-folded journal bytes exceed a configurable fraction of the durable state's
size (never below ``auto_compact_min_bytes``, so small cubes are not churned).

``create`` accepts raw rows (with an optional schema), a configured
:class:`~repro.session.session.CubeSession` (build settings travel with it),
or an already-built :class:`~repro.session.serving.ServingCube`.  ``open``
returns the live in-memory cube, loading it on first use; ``load`` forces a
fresh load from disk.  Catalog state (manifest, instance table) is guarded by
one reentrant lock; the heavy per-cube work — snapshot loads, appends,
compaction folds — serialises on a *per-name* gate instead, so maintenance on
one cube never stalls queries, appends, or loads on another.

The snapshot payloads are pickle (see :mod:`repro.storage.snapshot`): only
open catalog directories you trust.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from ..core.errors import CatalogError, LeaseFencedError
from ..session.serving import ServingCube
from ..session.session import CubeSession
from ..storage import atomic
from ..storage.chain import read_journal_tail
from ..storage.locks import ManifestLock
from ..storage.manifest import (
    CatalogManifest,
    CubeEntry,
    appends_filename,
    segment_filename,
    snapshot_filename,
    validate_cube_name,
)
from ..storage.snapshot import delta_segment_supported

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor

    from ..incremental.maintainer import AppendReport

#: What :meth:`CubeCatalog.create` accepts as a cube source.
CubeSource = Union[ServingCube, CubeSession, Sequence[object]]

#: Default auto-compaction trigger: un-folded journal bytes exceeding this
#: fraction of the durable state's on-disk size.
AUTO_COMPACT_RATIO = 0.5
#: Journals below this many un-folded bytes never auto-compact — folding a
#: few hundred bytes of journal is pure churn on small cubes.
AUTO_COMPACT_MIN_BYTES = 64 * 1024
#: Once a cube's segment chain reaches this length, ``mode="auto"``
#: compaction escalates to a full rewrite instead of stacking another
#: segment — bounding both reopen cost (one merge per segment) and the
#: chain's disk footprint.  Explicit ``mode="incremental"`` is not bounded.
AUTO_COMPACT_MAX_SEGMENTS = 8


class CubeCatalog:
    """A directory of named serving cubes with durable append streams.

    ``auto_compact_ratio`` / ``auto_compact_min_bytes`` configure the
    automatic journal-folding policy (``auto_compact_ratio=None`` disables
    it; see :meth:`compact`).
    """

    def __init__(
        self,
        directory: str,
        auto_compact_ratio: Optional[float] = AUTO_COMPACT_RATIO,
        auto_compact_min_bytes: int = AUTO_COMPACT_MIN_BYTES,
        auto_compact_max_segments: int = AUTO_COMPACT_MAX_SEGMENTS,
    ) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.auto_compact_ratio = auto_compact_ratio
        self.auto_compact_min_bytes = auto_compact_min_bytes
        self.auto_compact_max_segments = auto_compact_max_segments
        self._lock = threading.RLock()
        self._manifest = CatalogManifest.load(self.directory)
        #: Live cubes by name (loaded lazily by :meth:`open`).
        self._cubes: Dict[str, ServingCube] = {}
        #: Per-name gates serialising the heavy per-cube operations (snapshot
        #: load, append fold, compaction) against each other, *off* the
        #: catalog-wide lock — work on one cube never blocks another.
        #: Reentrant so an append-triggered auto-compaction can re-enter.
        self._gates: Dict[str, threading.RLock] = {}
        #: Compaction counters by mode, for server stats.
        self._compactions: Dict[str, int] = {"incremental": 0, "full": 0}

    # ------------------------------------------------------------------ #
    # Registry operations                                                 #
    # ------------------------------------------------------------------ #

    def create(
        self,
        name: str,
        source: CubeSource,
        schema: Optional[object] = None,
    ) -> ServingCube:
        """Register a new cube under ``name`` and persist its first snapshot.

        ``source`` is raw rows (``schema`` as for :meth:`CubeSession.
        from_rows`), a configured :class:`CubeSession` (built here with its
        own settings), or an existing :class:`ServingCube`.  The snapshot is
        written immediately — a created cube survives a crash without any
        explicit ``save``.
        """
        validate_cube_name(name)
        if isinstance(source, ServingCube):
            if schema is not None:
                raise CatalogError(
                    "schema cannot be overridden when registering a built "
                    "ServingCube"
                )
            cube = source
        elif isinstance(source, CubeSession):
            if schema is not None:
                raise CatalogError(
                    "schema cannot be overridden when building from a "
                    "CubeSession (the session already has one)"
                )
            cube = source.build()
        else:
            cube = CubeSession.from_rows(source, schema=schema).build()
        with self._gate(name):
            with self._lock:
                if name in self._manifest.entries:
                    raise CatalogError(
                        f"cube {name!r} already exists in catalog "
                        f"{self.directory!r}; drop() it first or pick another "
                        "name"
                    )
                entry = CubeEntry(
                    snapshot=snapshot_filename(name),
                    appends=appends_filename(name),
                    created_at=time.time(),
                )
                self._manifest.entries[name] = entry
                self._cubes[name] = cube
            try:
                self._write_full_snapshot(name, cube, entry)
            except BaseException:
                with self._lock:
                    self._manifest.entries.pop(name, None)
                    self._cubes.pop(name, None)
                raise
        return cube

    def open(self, name: str) -> ServingCube:
        """The live cube called ``name``, loading (and replaying) on first use."""
        with self._lock:
            cube = self._cubes.get(name)
            if cube is not None:
                return cube
        return self._load(name)

    def get_loaded(self, name: str) -> Optional[ServingCube]:
        """The live cube if (and only if) it is already in memory.

        Never touches disk — the probe introspection paths (e.g.
        :meth:`repro.server.AsyncCubeServer.stats`) use so they cannot stall
        on a snapshot load.
        """
        with self._lock:
            return self._cubes.get(name)

    def load(self, name: str) -> ServingCube:
        """Force a fresh load of ``name`` from its snapshot + append stream.

        Discards the in-memory instance (unsaved *in-memory only* state of a
        cube appended outside the catalog is lost — catalog appends are
        journaled and therefore replayed).
        """
        with self._lock:
            self._cubes.pop(name, None)
        return self._load(name)

    def drop(self, name: str) -> None:
        """Unregister ``name`` and delete its snapshot, segments, and stream."""
        with self._gate(name):
            with self._lock:
                entry = self._entry(name)
                del self._manifest.entries[name]
                self._cubes.pop(name, None)
                self._save_manifest()
                self._unlink(
                    [entry.snapshot, entry.appends, *entry.segments]
                )

    def list(self) -> List[str]:
        """Registered cube names, sorted."""
        with self._lock:
            return sorted(self._manifest.entries)

    def describe(self, name: str) -> Dict[str, object]:
        """Manifest metadata for one cube (no snapshot is opened)."""
        with self._lock:
            entry = self._entry(name)
            return {
                "name": name,
                "snapshot": entry.snapshot,
                "appends": entry.appends,
                "created_at": entry.created_at,
                "saved_at": entry.saved_at,
                "rows": entry.rows,
                "cells": entry.cells,
                "algorithm": entry.algorithm,
                "dimensions": list(entry.dimensions),
                "format": entry.format,
                "generation": entry.generation,
                "segments": list(entry.segments),
                "journal_offset": entry.journal_offset,
                "leader_id": entry.leader_id,
                "leader_epoch": entry.leader_epoch,
                "lease_expires_at": entry.lease_expires_at,
                "durable_bytes": self._durable_bytes(entry),
                "journal_bytes": self._journal_size(entry),
                "loaded": name in self._cubes,
                "pending_appends": self._journal_batches(entry),
            }

    def install(self, name: str, cube: ServingCube) -> ServingCube:
        """Adopt ``cube`` as the live in-memory instance of ``name``.

        The manifest must already know ``name``; nothing is written to disk.
        This is the promotion hook of the replicated tier: a follower that
        has tailed a cube to the chain tip installs its replica here and
        starts serving writes immediately, instead of paying a full reload
        of a chain it already holds in memory.
        """
        with self._lock:
            self._entry(name)  # raises if the manifest does not know it
            self._cubes[name] = cube
        return cube

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._manifest.entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._manifest.entries)

    # ------------------------------------------------------------------ #
    # Maintenance                                                         #
    # ------------------------------------------------------------------ #

    def append(
        self,
        name: str,
        rows: Sequence[object],
        copy_on_publish: bool = False,
        executor: Optional["Executor"] = None,
        lease: Optional[object] = None,
    ) -> "AppendReport":
        """Append rows to ``name`` durably: journal first, then merge.

        The batch is written to the cube's append stream before the merge
        runs, so a crash at any later point replays it on the next load; a
        merge *failure* (bad rows) rolls the journal entry back.  Rows must
        be JSON-serialisable (they are for every protocol-fed workload); for
        non-JSON values append on the cube directly and :meth:`save` to
        persist.  ``copy_on_publish`` / ``executor`` pass through to
        :meth:`repro.session.serving.ServingCube.append`.

        ``lease`` carries the replicated tier's single-writer claim: any
        object with ``holder_id`` / ``epoch`` attributes (in practice a
        :class:`repro.replication.CubeLease`).  When given, the on-disk
        manifest is re-read and the append is *fenced* — it raises
        :class:`~repro.core.errors.LeaseFencedError` before journaling
        anything if the cube's lease has moved to another holder or a higher
        epoch.  ``lease=None`` (the default) keeps the single-process
        behaviour: no fencing, no extra manifest read.

        When the automatic compaction policy is enabled and the un-folded
        journal has outgrown the durable state, the fold runs here, inline,
        before returning (appends to *other* cubes proceed meanwhile).
        """
        cube = self.open(name)
        if not rows:
            return cube.append(rows)
        try:
            line = json.dumps({"rows": [self._jsonable_row(row) for row in rows]})
        except (TypeError, ValueError) as exc:
            raise CatalogError(
                f"rows appended through the catalog must be JSON-serialisable "
                f"({exc}); append on the ServingCube directly and save() to "
                "persist non-JSON values"
            ) from exc
        record = line + "\n"
        with self._gate(name):
            with self._lock:
                entry = self._entry(name)
                if lease is not None:
                    self._check_lease(name, lease)
                path = os.path.join(self.directory, entry.appends)
                with open(path, "a") as stream:
                    offset = stream.tell()
                    stream.write(record)
            try:
                report = cube.append(
                    rows, copy_on_publish=copy_on_publish, executor=executor
                )
            except BaseException:
                # The journal must not replay a batch the cube rejected —
                # but other writers may have journaled *after* this line
                # (e.g. a direct journal injection while the merge failed),
                # so a blind truncate(offset) would erase their records.
                # Truncate only when the file still ends with exactly our
                # record; otherwise rewrite with one occurrence removed.
                with self._lock:
                    self._remove_journal_record(path, offset, record)
                raise
            self._maybe_auto_compact(name, cube)
        return report

    def save(self, name: Optional[str] = None) -> None:
        """Write a fresh full snapshot of one cube (or every loaded cube).

        Folds everything — segments and journal included — into one v2
        snapshot and resets the chain (segments dropped, journal truncated).
        Only *loaded* cubes are written on a catalog-wide save: an unloaded
        cube's snapshot chain on disk is already its durable state.
        """
        if name is not None:
            names = [name]
        else:
            with self._lock:
                names = sorted(self._cubes)
        for cube_name in names:
            with self._gate(cube_name):
                with self._lock:
                    entry = self._manifest.entries.get(cube_name)
                    cube = self._cubes.get(cube_name)
                if entry is None:
                    if name is not None:
                        self._entry(cube_name)  # raises with the known names
                    continue  # dropped since the name snapshot: nothing to save
                if cube is None:
                    if name is not None:
                        raise CatalogError(
                            f"cube {cube_name!r} is not loaded; open() it "
                            "before save(), or rely on its on-disk state"
                        )
                    continue
                self._write_full_snapshot(cube_name, cube, entry)

    def compact(self, name: str, mode: str = "auto") -> Dict[str, object]:
        """Fold ``name``'s append journal into durable snapshot state.

        ``mode``:

        * ``"incremental"`` — write a compacted *delta segment* (the appended
          rows plus the closed delta cube over them) next to the base
          snapshot; the cheap fold, available when the cube supports exact
          delta maintenance (full closed cube, unpartitioned).
        * ``"full"`` — rewrite one fresh v2 snapshot under a new generation
          file name, dropping all segments; always available.
        * ``"auto"`` (default) — incremental when supported, else full;
          escalates to full once the segment chain reaches
          ``auto_compact_max_segments``, so chains stay bounded.

        The new file is written first (atomic rename), then one manifest flip
        publishes it and advances ``journal_offset`` past the folded bytes;
        on any failure the manifest is rolled back and the orphan file
        removed, so the previous chain keeps serving.  Returns a report of
        what was done, including ``{"mode": "none"}`` when nothing needed
        folding.
        """
        if mode not in ("auto", "full", "incremental"):
            raise CatalogError(
                f"unknown compaction mode {mode!r}; use 'auto', "
                "'incremental', or 'full'"
            )
        cube = self.open(name)
        with self._gate(name):
            with self._lock:
                entry = self._entry(name)
            journal_size = self._journal_size(entry)
            pending_bytes = max(0, journal_size - entry.journal_offset)
            start = entry.rows
            total = cube.relation.num_tuples
            reason = delta_segment_supported(cube)
            if mode == "incremental" and reason is not None:
                raise CatalogError(
                    f"cube {name!r} cannot compact incrementally: {reason}"
                )
            if total == start and pending_bytes == 0 and not (
                mode == "full" and (entry.segments or journal_size)
            ):
                return {"name": name, "mode": "none", "folded_rows": 0}
            incremental = (
                mode == "incremental"
                or (
                    mode == "auto"
                    and reason is None
                    and total > start
                    and len(entry.segments) < self.auto_compact_max_segments
                )
            )
            if incremental:
                report = self._write_delta_segment(name, cube, entry, start)
            else:
                report = self._write_full_snapshot(name, cube, entry)
            with self._lock:
                self._compactions[report["mode"]] += 1
            return report

    def compaction_stats(self) -> Dict[str, int]:
        """How many incremental / full folds this catalog instance ran."""
        with self._lock:
            return dict(self._compactions)

    # ------------------------------------------------------------------ #
    # Internals                                                           #
    # ------------------------------------------------------------------ #

    def _gate(self, name: str) -> threading.RLock:
        with self._lock:
            return self._gates.setdefault(name, threading.RLock())

    def _save_manifest(self) -> None:
        """Write the manifest, preserving lease state written by others.

        Lease transitions (:mod:`repro.replication.lease`) are made by other
        *processes* directly against the on-disk manifest; this catalog
        instance's in-memory copy can be arbitrarily stale about them.  Every
        manifest write therefore re-reads the lease triple from disk into the
        in-memory entries, so a chain flip (compaction, save, drop) never
        rolls back a leadership change it did not make.  The whole
        load-merge-save runs under the directory's cross-process
        :class:`~repro.storage.locks.ManifestLock` — the same mutex every
        lease transition holds — so a takeover landing *between* the re-read
        and the save cannot be clobbered either: without the lock that
        window would roll the fence back on disk, letting a deposed leader's
        appends pass while the legitimate leader is rejected.  Caller holds
        the catalog lock.
        """
        with ManifestLock(self.directory):
            try:
                on_disk = CatalogManifest.load(self.directory)
            except CatalogError:
                on_disk = CatalogManifest()
            for name, entry in self._manifest.entries.items():
                disk_entry = on_disk.entries.get(name)
                if disk_entry is None:
                    continue
                entry.leader_id = disk_entry.leader_id
                entry.leader_epoch = disk_entry.leader_epoch
                entry.lease_expires_at = disk_entry.lease_expires_at
            self._manifest.save(self.directory)

    def _check_lease(self, name: str, lease: object) -> None:
        """Fence an append against the *on-disk* lease state (lock held).

        ``lease`` is duck-typed — anything with ``holder_id`` and ``epoch``.
        The check reads the manifest fresh from disk because lease takeovers
        happen in other processes: a paused leader's in-memory view is
        exactly what cannot be trusted.  Expiry alone does not fence (the
        holder may simply be between renewals); only an actually-recorded
        takeover — a different holder or a higher epoch — does.
        """
        holder_id = getattr(lease, "holder_id", None)
        epoch = getattr(lease, "epoch", None)
        if not holder_id or epoch is None:
            raise CatalogError(
                f"append lease must carry holder_id/epoch, got {lease!r}"
            )
        disk_entry = CatalogManifest.load(self.directory).entries.get(name)
        if disk_entry is None:
            raise CatalogError(
                f"cube {name!r} vanished from the on-disk manifest of "
                f"{self.directory!r} while appending"
            )
        if disk_entry.leader_epoch > epoch or (
            disk_entry.leader_id and disk_entry.leader_id != holder_id
        ):
            raise LeaseFencedError(
                f"append to {name!r} fenced: writer {holder_id!r} holds "
                f"epoch {epoch}, but the manifest records leader "
                f"{disk_entry.leader_id!r} at epoch {disk_entry.leader_epoch}"
            )
        # Sync what we just learned so later describe()/saves stay honest.
        entry = self._manifest.entries.get(name)
        if entry is not None:
            entry.leader_id = disk_entry.leader_id
            entry.leader_epoch = disk_entry.leader_epoch
            entry.lease_expires_at = disk_entry.lease_expires_at

    def _entry(self, name: str) -> CubeEntry:
        entry = self._manifest.entries.get(name)
        if entry is None:
            raise CatalogError(
                f"no cube named {name!r} in catalog {self.directory!r}; "
                f"known cubes: {sorted(self._manifest.entries)}"
            )
        return entry

    def _unlink(self, filenames: Sequence[str]) -> None:
        for filename in filenames:
            try:
                os.unlink(os.path.join(self.directory, filename))
            except FileNotFoundError:
                pass

    def _journal_size(self, entry: CubeEntry) -> int:
        path = os.path.join(self.directory, entry.appends)
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def _durable_bytes(self, entry: CubeEntry) -> int:
        """On-disk size of the snapshot chain (base + segments)."""
        total = 0
        for filename in (entry.snapshot, *entry.segments):
            try:
                total += os.path.getsize(os.path.join(self.directory, filename))
            except OSError:
                pass
        return total

    @staticmethod
    def _jsonable_row(row: object) -> object:
        """A JSON-shaped copy of one raw row (tuples become lists)."""
        if isinstance(row, dict):
            return dict(row)
        return list(row)  # type: ignore[call-overload]

    @staticmethod
    def _remove_journal_record(path: str, offset: int, record: str) -> None:
        """Undo one journal write without touching later writers' records.

        Fast path: the file still ends with our record at our offset —
        truncate it away.  Slow path (another writer appended while our
        merge was failing): rewrite the stream with a single occurrence of
        the record dropped.  The rewrite is atomic (temp + rename): the
        journal loader tolerates one torn *tail* line, not a torn middle,
        so an in-place rewrite interrupted by a crash would corrupt records
        other writers own.  Caller holds the catalog lock, so no journal
        write can interleave with the rewrite; our record sits at or past
        the folded ``journal_offset``, so bytes before it keep their
        positions either way.
        """
        with open(path, "r+") as stream:
            stream.seek(offset)
            tail = stream.read()
            if tail == record:
                stream.truncate(offset)
                return
        with open(path) as stream:
            lines = stream.readlines()
        try:
            lines.reverse()
            lines.remove(record)
            lines.reverse()
        except ValueError:  # pragma: no cover - record already gone
            return
        atomic.replace_lines(path, lines)

    def _maybe_auto_compact(self, name: str, cube: ServingCube) -> None:
        """Apply the auto-compaction policy after an append (gate held)."""
        ratio = self.auto_compact_ratio
        if ratio is None:
            return
        with self._lock:
            entry = self._entry(name)
        pending = max(0, self._journal_size(entry) - entry.journal_offset)
        if pending < self.auto_compact_min_bytes:
            return
        if pending > ratio * max(1, self._durable_bytes(entry)):
            self.compact(name, mode="auto")

    def _write_full_snapshot(
        self, name: str, cube: ServingCube, entry: CubeEntry
    ) -> Dict[str, object]:
        """Fold everything into one fresh v2 snapshot (gate held).

        When segments or journal bytes are stacked on the current base, the
        new snapshot lands under a *new generation* file name and one atomic
        manifest flip publishes it — a crash before the flip leaves the old
        chain fully intact, a crash after it leaves only unreferenced
        garbage.  Without anything stacked, the rewrite happens in place
        (the rename itself is the atomic switch).
        """
        journal_size = self._journal_size(entry)
        supersedes_chain = bool(entry.segments) or journal_size > 0
        if supersedes_chain:
            new_generation = entry.generation + 1
            new_snapshot = snapshot_filename(name, new_generation)
        else:
            new_generation = entry.generation
            new_snapshot = entry.snapshot
        folded_rows = cube.relation.num_tuples - entry.rows
        size = cube.save(os.path.join(self.directory, new_snapshot))
        with self._lock:
            stale = [
                filename
                for filename in (entry.snapshot, *entry.segments)
                if filename != new_snapshot
            ]
            rollback = (
                entry.snapshot, entry.generation, entry.format, entry.segments,
                entry.journal_offset, entry.saved_at, entry.rows, entry.cells,
                entry.algorithm, entry.dimensions,
            )
            entry.snapshot = new_snapshot
            entry.generation = new_generation
            entry.format = "v2"
            entry.segments = ()
            entry.journal_offset = journal_size
            entry.saved_at = time.time()
            entry.rows = cube.relation.num_tuples
            entry.cells = len(cube)
            entry.algorithm = cube.algorithm
            entry.dimensions = tuple(cube.schema.dimensions)
            try:
                self._save_manifest()
            except BaseException:
                (
                    entry.snapshot, entry.generation, entry.format,
                    entry.segments, entry.journal_offset, entry.saved_at,
                    entry.rows, entry.cells, entry.algorithm, entry.dimensions,
                ) = rollback
                if new_snapshot != entry.snapshot:
                    self._unlink([new_snapshot])
                raise
            # The flip is durable: superseded files are garbage now, and the
            # folded journal bytes can go (no appends interleave — the gate
            # is held).  A crash in here costs nothing but disk space.
            self._unlink(stale)
            atomic.truncate(os.path.join(self.directory, entry.appends))
            if entry.journal_offset:
                entry.journal_offset = 0
                self._save_manifest()
        return {
            "name": name,
            "mode": "full",
            "snapshot": new_snapshot,
            "bytes": size,
            "folded_rows": folded_rows,
            "folded_journal_bytes": journal_size,
        }

    def _write_delta_segment(
        self, name: str, cube: ServingCube, entry: CubeEntry, start: int
    ) -> Dict[str, object]:
        """Fold the journal tail into one delta segment (gate held)."""
        segment = segment_filename(name, entry.generation, len(entry.segments) + 1)
        size = cube.save_delta(os.path.join(self.directory, segment), start)
        with self._lock:
            journal_size = self._journal_size(entry)
            rollback = (
                entry.segments, entry.journal_offset, entry.saved_at,
                entry.rows, entry.cells,
            )
            entry.segments = (*entry.segments, segment)
            entry.journal_offset = journal_size
            entry.saved_at = time.time()
            entry.rows = cube.relation.num_tuples
            entry.cells = len(cube)
            try:
                self._save_manifest()
            except BaseException:
                (
                    entry.segments, entry.journal_offset, entry.saved_at,
                    entry.rows, entry.cells,
                ) = rollback
                self._unlink([segment])
                raise
            # The flip folded every journal byte (the gate is held, so no
            # append interleaved); reclaim them.  A crash between the
            # truncate and the offset reset reads as an offset past the
            # file's end — an empty tail — so every window stays consistent.
            atomic.truncate(os.path.join(self.directory, entry.appends))
            entry.journal_offset = 0
            self._save_manifest()
        return {
            "name": name,
            "mode": "incremental",
            "segment": segment,
            "bytes": size,
            "folded_rows": entry.rows - start,
            "folded_journal_bytes": journal_size - rollback[1],
        }

    def _journal_batches(self, entry: CubeEntry) -> int:
        """Number of journaled batches pending replay for one entry."""
        path = os.path.join(self.directory, entry.appends)
        if not os.path.exists(path):
            return 0
        with open(path) as stream:
            stream.seek(min(entry.journal_offset, self._journal_size(entry)))
            return sum(1 for line in stream if line.strip())

    def _load(self, name: str) -> ServingCube:
        """Load snapshot chain + replay stream, off the catalog-wide lock.

        The heavy part (reading the snapshot, folding delta segments,
        replaying journaled batches) runs under the per-name gate only, so
        appends and opens on other cubes — the whole point of a multi-cube
        catalog — proceed while this cube loads.  Duplicate concurrent loads
        of one name serialise on the gate, and the first finished instance
        wins.
        """
        with self._gate(name):
            with self._lock:
                cube = self._cubes.get(name)
                if cube is not None:
                    return cube
                entry = self._entry(name)
                snapshot_path = os.path.join(self.directory, entry.snapshot)
                segment_paths = [
                    os.path.join(self.directory, segment)
                    for segment in entry.segments
                ]
                batches = self._read_journal(entry)
            cube = ServingCube.load(snapshot_path, segments=segment_paths)
            for batch in batches:
                rows = [
                    tuple(row) if isinstance(row, list) else row for row in batch
                ]
                cube.append(rows)
            with self._lock:
                existing = self._cubes.get(name)
                if existing is not None:
                    return existing
                self._cubes[name] = cube
                return cube

    def _read_journal(self, entry: CubeEntry) -> List[List[object]]:
        """The un-folded journaled batches, tolerating one torn tail line.

        Bytes before ``entry.journal_offset`` are already folded into the
        snapshot chain (compaction advances the offset atomically with its
        manifest flip) and are skipped; a post-truncation offset past the
        file's end reads as an empty tail.
        """
        path = os.path.join(self.directory, entry.appends)
        batches, _ = read_journal_tail(path, entry.journal_offset)
        return batches

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CubeCatalog({self.directory!r}, cubes={self.list()!r}, "
            f"loaded={sorted(self._cubes)!r})"
        )
