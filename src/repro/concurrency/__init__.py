"""Concurrency primitives shared by the serving layers.

One module, one primitive: :class:`~repro.concurrency.rwlock.RWLock`, the
reader-writer lock behind the copy-on-publish serving discipline (readers
answer queries against the published cube version; a single writer prepares
the next version aside and publishes it under a short exclusive section).
See :mod:`repro.query.engine` and :mod:`repro.session.serving` for the two
layers that apply it, and :mod:`repro.server` for the asyncio front end that
relies on it.
"""

from .rwlock import RWLock

__all__ = ["RWLock"]
