"""A reader-writer lock for the serving hot path.

The serving layers (:mod:`repro.query`, :mod:`repro.session`,
:mod:`repro.server`) follow one concurrency discipline: *many* readers answer
queries against a published cube version while *one* writer prepares the next
version off to the side and publishes it in a short critical section (a few
reference swaps plus cache repair).  :class:`RWLock` is the primitive behind
that discipline — any number of concurrent readers, writers exclusive.

The implementation is a classic condition-variable lock with **writer
preference**: once a writer is waiting, new readers queue behind it.  Without
preference, a steady query stream would starve publishes forever, which is
exactly the wrong failure mode for a serving system (appends would never
land).  Readers hold the lock for one query; writers hold it for one publish
(reference swaps), so writer preference costs readers at most one publish of
latency.

The lock is not reentrant in either mode: a reader acquiring the write side
(or vice versa) deadlocks, as does recursive write acquisition.  Callers
layer locks in one consistent order instead (serving state above engine,
engine above caches) — the layering the serving stack already follows.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Many concurrent readers, one exclusive writer, writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------ #
    # Read side                                                           #
    # ------------------------------------------------------------------ #

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers < 0:
                self._readers = 0
                raise RuntimeError("release_read() without a matching acquire_read()")
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read():`` — shared access for one query."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------ #
    # Write side                                                          #
    # ------------------------------------------------------------------ #

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer:
                raise RuntimeError(
                    "release_write() without a matching acquire_write()"
                )
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write():`` — exclusive access for one publish."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RWLock(readers={self._readers}, writer={self._writer}, "
            f"waiting={self._writers_waiting})"
        )
