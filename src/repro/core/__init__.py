"""Core substrate: relations, cells, measures, closedness, cube results, API."""

from .cell import Cell, all_mask, apex_cell, cell_arity, format_cell, make_cell
from .closedness import ClosednessState, closedness_of_tids
from .cube import CellStats, CubeResult
from .errors import (
    AlgorithmError,
    EncodingError,
    MeasureError,
    PartitionError,
    ReproError,
    SchemaError,
    UnknownAlgorithmError,
    ValidationError,
    WorkloadError,
)
from .measures import (
    AvgMeasure,
    CountMeasure,
    IcebergCondition,
    MaxMeasure,
    MeasureSet,
    MeasureSpec,
    MinMeasure,
    SumMeasure,
)
from .ordering import ORDERINGS, cardinality_order, entropy_order, original_order
from .relation import Relation, Schema

__all__ = [
    "Cell",
    "all_mask",
    "apex_cell",
    "cell_arity",
    "format_cell",
    "make_cell",
    "ClosednessState",
    "closedness_of_tids",
    "CellStats",
    "CubeResult",
    "AlgorithmError",
    "EncodingError",
    "MeasureError",
    "PartitionError",
    "ReproError",
    "SchemaError",
    "UnknownAlgorithmError",
    "ValidationError",
    "WorkloadError",
    "AvgMeasure",
    "CountMeasure",
    "IcebergCondition",
    "MaxMeasure",
    "MeasureSet",
    "MeasureSpec",
    "MinMeasure",
    "SumMeasure",
    "ORDERINGS",
    "cardinality_order",
    "entropy_order",
    "original_order",
    "Relation",
    "Schema",
]
