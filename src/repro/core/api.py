"""Positional facade: one-call cube computation on encoded relations.

.. note::
   Since the named-schema session API landed, :class:`repro.session.CubeSession`
   is the documented entry point for applications — it speaks dimension *names*
   and raw values instead of encoded integers, and plans the algorithm
   automatically.  The functions below remain fully supported as the thin
   positional layer the session delegates to (and the layer benchmarks and
   algorithm research should keep using); see ``docs/MIGRATION.md``.

>>> from repro import Relation, compute_closed_cube
>>> rows = [("a1", "b1", "c1"), ("a1", "b1", "c2"), ("a1", "b2", "c1")]
>>> relation = Relation.from_rows(rows, ["A", "B", "C"])
>>> cube = compute_closed_cube(relation, min_sup=2)
>>> sorted(count for _, count in cube.to_rows())
[2, 3]

Algorithms are addressed by their registry name (``"c-cubing-star"``,
``"c-cubing-mm"``, ``"c-cubing-star-array"``, ``"qc-dfs"``, ``"mm-cubing"``,
``"star-cubing"``, ``"star-array"``, ``"buc"``, ``"naive"``, ...); see
:func:`repro.algorithms.base.available_algorithms`.  The name ``"auto"``
defers the choice to the planner (:mod:`repro.session.planner`), which picks a
C-Cubing variant from the relation's shape (Figure 15 of the paper).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..algorithms import base as _base
from ..algorithms.base import CubingOptions, RunResult
from .cube import CubeResult
from .measures import MeasureSet, MeasureSpec
from .relation import Relation

#: Default engine for closed cubes: the paper's recommendation for general use.
DEFAULT_CLOSED_ALGORITHM = "c-cubing-star"
#: Default engine for plain iceberg cubes.
DEFAULT_ICEBERG_ALGORITHM = "mm-cubing"


def _build_options(
    min_sup: int,
    closed: bool,
    measures: Optional[Sequence[MeasureSpec]],
    dimension_order: object,
    initial_collapsed: Sequence[int],
) -> CubingOptions:
    return CubingOptions(
        min_sup=min_sup,
        closed=closed,
        measures=MeasureSet(measures or ()),
        dimension_order=dimension_order,
        initial_collapsed=tuple(initial_collapsed),
    )


def compute_cube(
    relation: Relation,
    min_sup: int = 1,
    algorithm: str = DEFAULT_ICEBERG_ALGORITHM,
    measures: Optional[Sequence[MeasureSpec]] = None,
    dimension_order: object = None,
    initial_collapsed: Sequence[int] = (),
) -> CubeResult:
    """Compute the (full or iceberg) cube of a relation.

    Parameters
    ----------
    relation:
        The input fact table.
    min_sup:
        Iceberg threshold on ``count``; ``1`` computes the full cube.
    algorithm:
        Registry name of the engine to use.
    measures:
        Optional payload measures (``SumMeasure``, ``AvgMeasure``, ...).
    dimension_order:
        Ordering strategy for order-sensitive engines.
    initial_collapsed:
        Dimensions forced to ``*`` in every output cell.
    """
    options = _build_options(min_sup, False, measures, dimension_order, initial_collapsed)
    algorithm = _base.resolve_algorithm(algorithm, relation, options)
    return _base.get_algorithm(algorithm, options).run(relation).cube


def compute_closed_cube(
    relation: Relation,
    min_sup: int = 1,
    algorithm: str = DEFAULT_CLOSED_ALGORITHM,
    measures: Optional[Sequence[MeasureSpec]] = None,
    dimension_order: object = None,
    initial_collapsed: Sequence[int] = (),
) -> CubeResult:
    """Compute the closed (iceberg) cube of a relation.

    The closed cube keeps only cells not covered by a more specific cell with
    the same aggregate; it is a lossless compression of the iceberg cube
    (use :meth:`repro.core.cube.CubeResult.closure_query` to answer queries on
    non-materialised cells).
    """
    options = _build_options(min_sup, True, measures, dimension_order, initial_collapsed)
    algorithm = _base.resolve_algorithm(algorithm, relation, options)
    return _base.get_algorithm(algorithm, options).run(relation).cube


def open_query_engine(cube: CubeResult, cache_size: int = 1024):
    """Open a serving :class:`repro.query.engine.QueryEngine` over ``cube``.

    The engine answers point, slice, and roll-up queries on *any* cell of the
    lattice — materialised or not — from the closed cube alone, using an
    inverted per-dimension index and an LRU answer cache of ``cache_size``
    entries (``0`` disables caching).  The engine snapshots the cube: add
    cells and call this again to serve them.

    >>> from repro import Relation, compute_closed_cube, open_query_engine
    >>> rows = [("a1", "b1", "c1"), ("a1", "b1", "c2"), ("a1", "b2", "c1")]
    >>> relation = Relation.from_rows(rows, ["A", "B", "C"])
    >>> engine = open_query_engine(compute_closed_cube(relation, min_sup=2))
    >>> engine.point((0, None, 0)).count  # (a1, *, c1) is not materialised
    2
    """
    from ..query.engine import QueryEngine

    return QueryEngine(cube, cache_size=cache_size)


def run_algorithm(
    relation: Relation,
    algorithm: str,
    min_sup: int = 1,
    closed: bool = False,
    measures: Optional[Sequence[MeasureSpec]] = None,
    dimension_order: object = None,
    initial_collapsed: Sequence[int] = (),
) -> RunResult:
    """Run an algorithm and return the cube plus timing and counters.

    This is the entry point the benchmark harness uses; most applications want
    :func:`compute_cube` or :func:`compute_closed_cube` instead.
    """
    options = _build_options(min_sup, closed, measures, dimension_order, initial_collapsed)
    algorithm = _base.resolve_algorithm(algorithm, relation, options)
    return _base.get_algorithm(algorithm, options).run(relation)
