"""Cell model for group-by cells of a data cube.

A *cell* over a ``D``-dimensional relation is represented as a plain tuple of
length ``D`` whose entries are either an integer dimension code or ``None``
(the paper's ``*`` / "all" value).  Plain tuples keep the hot paths of the
cubing algorithms cheap (hashable, comparable, no attribute overhead) while
this module provides the vocabulary around them:

* construction helpers (:func:`make_cell`, :func:`cell_from_mapping`),
* the *All Mask* of a cell (Definition 8 of the paper),
* cover / specialisation relations between cells (Definition 3),
* human-readable formatting against a schema.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import SchemaError

#: Type alias for a group-by cell: one entry per dimension, ``None`` meaning
#: the aggregated ``*`` value.
Cell = Tuple[Optional[int], ...]

#: The symbol used when rendering an aggregated dimension.
STAR = "*"


def make_cell(num_dims: int, assignment: Dict[int, int]) -> Cell:
    """Build a cell with ``num_dims`` dimensions from a sparse assignment.

    ``assignment`` maps dimension index to the fixed value; every other
    dimension becomes ``*``.

    >>> make_cell(4, {0: 3, 2: 1})
    (3, None, 1, None)
    """
    if not all(0 <= dim < num_dims for dim in assignment):
        raise SchemaError(
            f"assignment {assignment!r} references dimensions outside 0..{num_dims - 1}"
        )
    return tuple(assignment.get(dim) for dim in range(num_dims))


def cell_from_mapping(num_dims: int, values: Sequence[Optional[int]]) -> Cell:
    """Coerce a sequence of per-dimension values into a :data:`Cell`.

    The sequence must have exactly ``num_dims`` entries.
    """
    values = tuple(values)
    if len(values) != num_dims:
        raise SchemaError(
            f"cell has {len(values)} entries but the schema has {num_dims} dimensions"
        )
    return values


def apex_cell(num_dims: int) -> Cell:
    """The all-``*`` cell (the apex cuboid's single cell)."""
    return (None,) * num_dims


def cell_dimensions(cell: Cell) -> Tuple[int, ...]:
    """Indices of the dimensions on which ``cell`` is fixed (non-``*``)."""
    return tuple(dim for dim, value in enumerate(cell) if value is not None)


def cell_arity(cell: Cell) -> int:
    """Number of non-``*`` dimensions (the ``k`` of a k-dimensional cell)."""
    return sum(1 for value in cell if value is not None)


def all_mask(cell: Cell) -> int:
    """The *All Mask* of a cell (Definition 8).

    Bit ``d`` is set iff the cell has ``*`` on dimension ``d``.  The mask is
    returned as a Python integer used as a bit set.
    """
    mask = 0
    for dim, value in enumerate(cell):
        if value is None:
            mask |= 1 << dim
    return mask


def fixed_mask(cell: Cell) -> int:
    """The complement of the :func:`all_mask`: bit ``d`` set iff ``d`` is fixed.

    For a *closed* cell this is exactly its Closed Mask (Definition 7): every
    tuple of the cell shares the cell's value on each fixed dimension, and —
    because the cell is closed — no ``*`` dimension has a single shared value.
    That equality is what makes the closedness state of a closed cell
    reconstructible after the fact (see :func:`repro.core.closedness.
    closed_cell_state`) and hence closed cubes mergeable
    (:mod:`repro.incremental`).
    """
    mask = 0
    for dim, value in enumerate(cell):
        if value is not None:
            mask |= 1 << dim
    return mask


def is_specialisation(general: Cell, specific: Cell) -> bool:
    """``True`` iff ``general`` <= ``specific`` in the paper's ``V(c) <= V(c')`` order.

    Every fixed dimension of ``general`` must carry the same value in
    ``specific``; ``specific`` may fix additional dimensions.  A cell is a
    specialisation of itself.
    """
    if len(general) != len(specific):
        raise SchemaError("cells being compared must have the same dimensionality")
    for g_value, s_value in zip(general, specific):
        if g_value is not None and g_value != s_value:
            return False
    return True


def is_strict_specialisation(general: Cell, specific: Cell) -> bool:
    """``True`` iff ``general < specific`` (specialisation and not equal)."""
    return general != specific and is_specialisation(general, specific)


def merge_cells(first: Cell, second: Cell) -> Optional[Cell]:
    """Least upper bound of two cells if they are compatible, else ``None``.

    Two cells are compatible when they agree on every dimension fixed by both.
    The merge fixes the union of their fixed dimensions.
    """
    if len(first) != len(second):
        raise SchemaError("cells being merged must have the same dimensionality")
    merged: List[Optional[int]] = []
    for f_value, s_value in zip(first, second):
        if f_value is None:
            merged.append(s_value)
        elif s_value is None or s_value == f_value:
            merged.append(f_value)
        else:
            return None
    return tuple(merged)


def meet_cells(first: Cell, second: Cell) -> Cell:
    """Greatest common generalisation of two cells (the lattice *meet*).

    A dimension is fixed in the meet iff both cells fix it to the same value;
    every other dimension becomes ``*``.  Unlike :func:`merge_cells` (the
    join, which may not exist) the meet always exists — in the worst case it
    is the apex cell.  Incremental maintenance builds on the fact that every
    closed cell of a union of two relations with support on both sides is the
    meet of a closed cell of each side (see :mod:`repro.incremental.merge`).
    """
    if len(first) != len(second):
        raise SchemaError("cells being met must have the same dimensionality")
    return tuple(
        f_value if f_value is not None and f_value == s_value else None
        for f_value, s_value in zip(first, second)
    )


def generalisations(cell: Cell) -> Iterable[Cell]:
    """All generalisations of ``cell``: every subset of its fixed dimensions kept.

    Yields ``2^arity`` cells, including ``cell`` itself and the apex.  This is
    the single-cell reference enumeration (used by tests as an oracle); the
    incremental merge enumerates generalisations of *many* related cells at
    once through the deduplicating breadth-first walk in
    :func:`repro.incremental.merge.support_generalisations`, which visits
    shared generalisations only once.
    """
    from itertools import combinations

    fixed = [dim for dim, value in enumerate(cell) if value is not None]
    for arity in range(len(fixed) + 1):
        for kept in combinations(fixed, arity):
            keep = set(kept)
            yield tuple(
                value if dim in keep else None for dim, value in enumerate(cell)
            )


def project_cell(cell: Cell, dims: Iterable[int]) -> Cell:
    """Keep only the dimensions in ``dims`` fixed; every other dimension becomes ``*``."""
    keep = set(dims)
    return tuple(value if dim in keep else None for dim, value in enumerate(cell))


def tuple_matches(cell: Cell, row: Sequence[int]) -> bool:
    """``True`` iff the base-table ``row`` aggregates into ``cell``."""
    for value, row_value in zip(cell, row):
        if value is not None and value != row_value:
            return False
    return True


def format_cell(cell: Cell, dimension_names: Optional[Sequence[str]] = None,
                decoders: Optional[Sequence[Dict[int, object]]] = None) -> str:
    """Render a cell as ``(dim=value, ...)`` text.

    ``dimension_names`` supplies labels; ``decoders`` optionally maps integer
    codes back to the original values (as produced by
    :class:`repro.core.relation.Relation`).
    """
    parts = []
    for dim, value in enumerate(cell):
        name = dimension_names[dim] if dimension_names else f"d{dim}"
        if value is None:
            rendered = STAR
        elif decoders is not None:
            rendered = str(decoders[dim].get(value, value))
        else:
            rendered = str(value)
        parts.append(f"{name}={rendered}")
    return "(" + ", ".join(parts) + ")"


def sort_key(cell: Cell) -> Tuple:
    """Stable ordering key: by arity, then by dimension pattern, then values."""
    return (
        cell_arity(cell),
        tuple(0 if value is None else 1 for value in cell),
        tuple(-1 if value is None else value for value in cell),
    )
