"""Aggregation-based closedness checking: the paper's core contribution.

A cell of a data cube is *closed* iff there is no ``*`` dimension on which all
of the cell's tuples share a single value.  Section 3.2 of the paper shows how
to decide this without ever re-reading the cell's tuple list, by carrying two
small summaries through the normal aggregation machinery:

* **Representative Tuple ID** (Definition 6) — the minimum tuple id of the
  group; distributive (Lemma 2).
* **Closed Mask** (Definition 7) — a ``D``-bit mask whose bit ``d`` is set iff
  all tuples of the group share one value on dimension ``d``; algebraic
  (Lemma 3): the merged mask keeps bit ``d`` only if every part has the bit set
  *and* the parts' representative tuples agree on dimension ``d``.

Together with the cell's **All Mask** (Definition 8 — bit set on ``*``
dimensions) the *closedness measure* is ``ClosedMask & AllMask``
(Definition 9): the cell is closed iff this is zero.

This module implements the measure as :class:`ClosednessState` plus the merge
algebra, the per-partition shortcut :func:`closedness_of_tids`, and the *Tree
Mask* bookkeeping used by the Star-family closed pruning (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .cell import Cell, all_mask, fixed_mask
from .errors import IncrementalError
from .relation import Relation


def full_mask(num_dims: int) -> int:
    """A mask with the low ``num_dims`` bits set."""
    return (1 << num_dims) - 1


def prefix_mask(num_bits: int) -> int:
    """A mask with bits ``0 .. num_bits-1`` set (used for tree-level prefixes)."""
    return (1 << num_bits) - 1


@dataclass
class ClosednessState:
    """The closedness measure of one aggregation group.

    Attributes
    ----------
    rep_tid:
        Representative Tuple ID — the smallest tuple id aggregated into the
        group, or ``None`` for an empty group (the paper's ``NULL``).
    closed_mask:
        Closed Mask over all ``D`` dimensions as an integer bit set.  For an
        empty group the mask is the all-ones mask (neutral element of the
        bitwise-and merge).
    """

    rep_tid: Optional[int]
    closed_mask: int

    @classmethod
    def empty(cls, num_dims: int) -> "ClosednessState":
        """The neutral element: merging it into any state leaves it unchanged."""
        return cls(rep_tid=None, closed_mask=full_mask(num_dims))

    @classmethod
    def for_tuple(cls, tid: int, num_dims: int) -> "ClosednessState":
        """State of a single tuple: every dimension trivially shares one value."""
        return cls(rep_tid=tid, closed_mask=full_mask(num_dims))

    def copy(self) -> "ClosednessState":
        return ClosednessState(self.rep_tid, self.closed_mask)

    @property
    def is_empty(self) -> bool:
        return self.rep_tid is None

    def merge(self, other: "ClosednessState", relation: Relation) -> None:
        """Fold ``other`` (a disjoint part) into this state, in place.

        Implements the algebraic recurrence of Lemma 3: bit ``d`` survives only
        if both parts have it set and their representative tuples carry the
        same value on dimension ``d``.  The representative tuple id becomes the
        minimum of the two.
        """
        if other.rep_tid is None:
            return
        if self.rep_tid is None:
            self.rep_tid = other.rep_tid
            self.closed_mask = other.closed_mask
            return

        mask = self.closed_mask & other.closed_mask
        if mask:
            columns = relation.columns
            own_tid = self.rep_tid
            other_tid = other.rep_tid
            dim = 0
            probe = mask
            while probe:
                if probe & 1:
                    if columns[dim][own_tid] != columns[dim][other_tid]:
                        mask &= ~(1 << dim)
                probe >>= 1
                dim += 1
        self.closed_mask = mask
        if other.rep_tid < self.rep_tid:
            self.rep_tid = other.rep_tid

    def add_tuple(self, tid: int, relation: Relation) -> None:
        """Fold a single tuple into this state (a common fast path)."""
        if self.rep_tid is None:
            self.rep_tid = tid
            self.closed_mask = full_mask(relation.num_dimensions)
            return
        mask = self.closed_mask
        if mask:
            columns = relation.columns
            own_tid = self.rep_tid
            dim = 0
            probe = mask
            while probe:
                if probe & 1:
                    if columns[dim][own_tid] != columns[dim][tid]:
                        mask &= ~(1 << dim)
                probe >>= 1
                dim += 1
        self.closed_mask = mask
        if tid < self.rep_tid:
            self.rep_tid = tid

    def closedness(self, cell_all_mask: int) -> int:
        """The closedness measure ``ClosedMask & AllMask`` (Definition 9)."""
        return self.closed_mask & cell_all_mask

    def is_closed(self, cell_all_mask: int) -> bool:
        """``True`` iff the cell owning this state is closed."""
        return (self.closed_mask & cell_all_mask) == 0

    def is_closed_for(self, cell: Cell) -> bool:
        """Convenience wrapper computing the All Mask from the cell itself."""
        return self.is_closed(all_mask(cell))


def closedness_of_tids(tids: Sequence[int], relation: Relation) -> ClosednessState:
    """Closedness state of an explicit tuple-id group.

    This is the non-incremental formulation used by the oracle and by
    algorithms that have a tuple-id list at hand (BUC partitions, StarArray
    leaf pools): bit ``d`` is kept iff all tuples agree with the first tuple on
    dimension ``d``.
    """
    if not tids:
        return ClosednessState.empty(relation.num_dimensions)
    num_dims = relation.num_dimensions
    columns = relation.columns
    first = tids[0]
    rep = min(tids)
    mask = 0
    for dim in range(num_dims):
        column = columns[dim]
        value = column[first]
        if all(column[tid] == value for tid in tids):
            mask |= 1 << dim
    return ClosednessState(rep_tid=rep, closed_mask=mask)


def closed_cell_state(cell: Cell, rep_tid: Optional[int]) -> ClosednessState:
    """Reconstruct the closedness state of a *closed* cell after the fact.

    For a closed cell the Closed Mask needs no recomputation: every tuple of
    the cell shares the cell's value on each fixed dimension (bit set), and
    closedness means no ``*`` dimension has a single shared value (bit
    clear) — so ``ClosedMask == fixed_mask(cell)`` exactly.  Together with the
    representative tuple id the algorithms already record per cell
    (:attr:`repro.core.cube.CellStats.rep_tid`), the full measure state of
    Definition 9 is recovered without touching a single tuple list.

    This is what makes a materialised closed cube *mergeable*: the
    reconstructed states feed straight into :meth:`ClosednessState.merge`
    (Lemma 3), which is how :mod:`repro.incremental.merge` repairs closedness
    when folding a delta cube into a base cube.

    Raises :class:`~repro.core.errors.IncrementalError` when ``rep_tid`` is
    missing — a cube computed without representative-tuple tracking cannot be
    merged incrementally.
    """
    if rep_tid is None:
        raise IncrementalError(
            f"cell {cell!r} carries no representative tuple id; only cubes "
            "computed with rep_tid tracking (the closed algorithms) support "
            "incremental merge"
        )
    return ClosednessState(rep_tid=rep_tid, closed_mask=fixed_mask(cell))


def merge_states(
    states: Iterable[ClosednessState], relation: Relation
) -> ClosednessState:
    """Merge an iterable of part states into a fresh combined state."""
    result = ClosednessState.empty(relation.num_dimensions)
    for state in states:
        result.merge(state, relation)
    return result


def shared_value_dimensions(state: ClosednessState) -> int:
    """Alias making call sites read naturally: the Closed Mask of a state."""
    return state.closed_mask


# --------------------------------------------------------------------------- #
# Tree Mask helpers (Section 4.3)                                              #
# --------------------------------------------------------------------------- #


def tree_mask_after_collapse(tree_mask: int, collapsed_dim: int) -> int:
    """Tree Mask of a child tree: inherit the parent's and set the collapsed bit."""
    return tree_mask | (1 << collapsed_dim)


def closed_pruning_applies(closed_mask: int, tree_mask: int) -> bool:
    """Lemma 5: prune the subtree if ``ClosedMask & TreeMask`` is non-zero.

    A non-zero intersection means some already-collapsed dimension has a value
    shared by every tuple below this node, so every cell the subtree could emit
    is covered by the cell that fixes that shared value.
    """
    return (closed_mask & tree_mask) != 0
