"""Columnar backend seam: NumPy acceleration with a pure-Python fallback.

The hot paths of this package (cubing partition passes, closedness repair in
:mod:`repro.incremental.merge`, slice enumeration in :mod:`repro.query`) are
per-tuple Python loops over :class:`~repro.core.relation.Relation` columns.
This module provides the *one* capability seam those paths accelerate
through:

* :class:`ColumnBackend` — ``numpy`` when the optional dependency is
  importable, else a pure-Python fallback built on :mod:`array` (``'q'`` for
  dimension codes, ``'d'`` for measures).  The package installs with zero
  dependencies on the 3.8 floor; NumPy only ever *speeds things up*.
* :class:`ColumnStore` — cached, append-aware columnar views of one
  relation's dimension and measure columns under a backend.  The relation's
  canonical storage stays plain Python lists (every algorithm indexes
  ``columns[dim][tid]`` directly); the store materialises typed snapshots on
  demand and rebuilds them when the relation grows.

Backend selection is capability-detected once at import and can be forced
for tests and benchmarks: the ``REPRO_COLUMN_BACKEND=python`` environment
variable pins the fallback process-wide, :func:`set_default_backend` /
:func:`use_backend` switch it at runtime.  Every vectorized kernel
(:mod:`repro.vector.kernels`) consults :func:`get_backend` per call, so the
two code paths are swappable under one test — which is exactly how the
lattice-exhaustive suites prove them bit-identical.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence

_FORCED = os.environ.get("REPRO_COLUMN_BACKEND", "").strip().lower()

try:  # pragma: no cover - exercised via both CI matrix legs
    if _FORCED in ("python", "fallback"):
        raise ImportError("REPRO_COLUMN_BACKEND pins the pure-Python fallback")
    import numpy as _numpy
except ImportError:  # pragma: no cover - the no-numpy leg
    _numpy = None

#: Whether the optional NumPy dependency imported successfully.
HAS_NUMPY = _numpy is not None


class ColumnBackend:
    """One columnar capability level: typed arrays plus (maybe) NumPy.

    Attributes
    ----------
    name:
        ``"numpy"`` or ``"python"``.
    np:
        The imported ``numpy`` module, or ``None`` for the fallback.  Kernels
        branch on this exactly once per call; everything downstream of a
        ``None`` check is the per-tuple reference path.
    """

    __slots__ = ("name", "np")

    def __init__(self, name: str, np: Optional[object]) -> None:
        self.name = name
        self.np = np

    @property
    def vectorized(self) -> bool:
        """Whether this backend can run the NumPy kernels."""
        return self.np is not None

    def int_array(self, values: Sequence[int]) -> Sequence[int]:
        """A typed snapshot of integer codes (``int64`` / ``array('q')``)."""
        if self.np is not None:
            return self.np.asarray(values, dtype=self.np.int64)
        return array("q", values)

    def float_array(self, values: Sequence[float]) -> Sequence[float]:
        """A typed snapshot of measure values (``float64`` / ``array('d')``)."""
        if self.np is not None:
            return self.np.asarray(values, dtype=self.np.float64)
        return array("d", values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnBackend({self.name!r})"


#: The accelerated backend, present only when NumPy imported.
NUMPY_BACKEND: Optional[ColumnBackend] = (
    ColumnBackend("numpy", _numpy) if HAS_NUMPY else None
)
#: The dependency-free fallback, always available.
PYTHON_BACKEND = ColumnBackend("python", None)

_default_backend: ColumnBackend = NUMPY_BACKEND or PYTHON_BACKEND


def get_backend() -> ColumnBackend:
    """The process-wide default backend (NumPy when available)."""
    return _default_backend


def set_default_backend(name: str) -> ColumnBackend:
    """Pin the default backend by name (``"numpy"`` / ``"python"``).

    Raises :class:`ValueError` for an unknown name and when ``"numpy"`` is
    requested without the dependency installed.
    """
    global _default_backend
    if name == "python":
        _default_backend = PYTHON_BACKEND
    elif name == "numpy":
        if NUMPY_BACKEND is None:
            raise ValueError("numpy backend requested but numpy is not importable")
        _default_backend = NUMPY_BACKEND
    else:
        raise ValueError(f"unknown column backend {name!r}")
    return _default_backend


@contextmanager
def use_backend(name: str) -> Iterator[ColumnBackend]:
    """Temporarily pin the default backend (test/benchmark scaffolding)."""
    global _default_backend
    previous = _default_backend
    backend = set_default_backend(name)
    try:
        yield backend
    finally:
        _default_backend = previous


class ColumnStore:
    """Cached columnar views of one relation under one backend.

    Views are snapshots keyed by column length: :meth:`repro.core.relation.
    Relation.append_rows` only ever *extends* columns, so a cached view is
    stale exactly when its length no longer matches the column's — the store
    rebuilds on the next access and never hands out a view of half-appended
    data.  Under the fallback backend the dimension/measure accessors return
    the relation's own lists (plain-list indexing *is* the fastest
    dependency-free path), so the store never copies unless it accelerates.
    """

    __slots__ = ("relation", "backend", "_dims", "_measures")

    def __init__(self, relation: object, backend: Optional[ColumnBackend] = None) -> None:
        self.relation = relation
        self.backend = backend if backend is not None else get_backend()
        self._dims: Dict[int, Sequence[int]] = {}
        self._measures: Dict[int, Sequence[float]] = {}

    def dimension(self, dim: int) -> Sequence[int]:
        """Columnar view of one dimension column (current length)."""
        column = self.relation.columns[dim]
        if self.backend.np is None:
            return column
        cached = self._dims.get(dim)
        if cached is None or len(cached) != len(column):
            cached = self.backend.int_array(column)
            self._dims[dim] = cached
        return cached

    def measure(self, index: int) -> Sequence[float]:
        """Columnar view of one measure column (current length)."""
        column = self.relation.measure_columns[index]
        if self.backend.np is None:
            return column
        cached = self._measures.get(index)
        if cached is None or len(cached) != len(column):
            cached = self.backend.float_array(column)
            self._measures[index] = cached
        return cached

    def dimensions(self) -> list:
        """Views of every dimension column, in schema order."""
        return [self.dimension(dim) for dim in range(self.relation.num_dimensions)]


def column_store(relation: object) -> ColumnStore:
    """The relation's cached :class:`ColumnStore` for the current backend.

    One store is stashed per relation; switching the default backend (a test
    concern) transparently replaces it so stale views of the other backend
    can never leak across a :func:`use_backend` boundary.
    """
    store = getattr(relation, "_column_store", None)
    backend = get_backend()
    if store is None or store.backend is not backend:
        store = ColumnStore(relation, backend)
        object.__setattr__(relation, "_column_store", store)
    return store
