"""Cube results: the common output container of every cubing algorithm.

A :class:`CubeResult` maps group-by cells (see :mod:`repro.core.cell`) to
their aggregated statistics (:class:`CellStats`).  Besides acting as the
return type of every algorithm, it provides the operations the evaluation
needs:

* equality / diff between cubes (used by the correctness tests),
* point and roll-up queries,
* the *quotient-cube closure query* — answering a query on any (possibly
  non-materialised) cell from the closed cube alone, which is what makes the
  closed cube a lossless compression,
* cube size accounting in cells and estimated bytes (Figures 13 and 14),
* incremental maintenance — :meth:`CubeResult.merge` folds a delta cube into
  this one with aggregation-based closedness repair
  (:mod:`repro.incremental.merge`), keeping the lazily built closure index
  up to date in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from .cell import (
    Cell,
    cell_arity,
    format_cell,
    is_specialisation,
    sort_key,
    tuple_matches,
)
from .errors import ValidationError
from .measures import MeasureSet
from .relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..incremental.merge import MergeReport


@dataclass
class CellStats:
    """Aggregated statistics of one output cell.

    ``count`` is always present (it is both the iceberg measure and the basis
    of closedness).  ``measures`` holds any payload measure values keyed by
    measure name.  ``rep_tid`` is the representative tuple id when the
    producing algorithm tracked one (the closed algorithms do); it is not part
    of cube equality.
    """

    count: int
    measures: Dict[str, float] = field(default_factory=dict)
    rep_tid: Optional[int] = None

    def key(self) -> Tuple:
        """The part of the stats that participates in cube equality."""
        return (self.count, tuple(sorted(self.measures.items())))


#: Rough per-cell storage cost model used for the cube-size figures: one
#: 32-bit word per dimension value plus one 64-bit word for the count.  The
#: absolute constant does not matter for the figures (they compare sizes of
#: two cubes over the same schema); it just keeps the reported unit in bytes.
BYTES_PER_DIM = 4
BYTES_PER_COUNT = 8


class CubeResult:
    """A set of output cells with their aggregated statistics."""

    def __init__(self, num_dims: int, name: str = "") -> None:
        self.num_dims = num_dims
        self.name = name
        self._cells: Dict[Cell, CellStats] = {}
        #: Lazily built closure index (see :meth:`closure_index`); once built
        #: it is maintained *in place* — every mutation below updates it, so
        #: reads never observe a stale view and serving engines keep their
        #: index across incremental merges.
        self._closure_index: Optional[object] = None
        #: The payload measure set the producing run aggregated, attached by
        #: :meth:`repro.algorithms.base.CubingAlgorithm.run`.  Incremental
        #: maintenance uses it to reconstruct mergeable measure states from
        #: the finalised per-cell values (see :meth:`merge`).
        self.measure_set: Optional[MeasureSet] = None

    # ------------------------------------------------------------------ #
    # Mutation                                                            #
    # ------------------------------------------------------------------ #

    def add(
        self,
        cell: Cell,
        count: int,
        measures: Optional[Dict[str, float]] = None,
        rep_tid: Optional[int] = None,
    ) -> None:
        """Record an output cell.

        Adding the same cell twice is always a bug in a cubing algorithm
        (every group-by cell must be produced exactly once), so it raises
        :class:`ValidationError` rather than silently overwriting.
        """
        if len(cell) != self.num_dims:
            raise ValidationError(
                f"cell {cell!r} has {len(cell)} entries, expected {self.num_dims}"
            )
        if cell in self._cells:
            raise ValidationError(f"cell {cell!r} emitted twice")
        stats = CellStats(count, dict(measures or {}), rep_tid)
        self._cells[cell] = stats
        if self._closure_index is not None:
            self._closure_index.add_cells([(cell, stats)])

    def upsert(
        self,
        cell: Cell,
        count: int,
        measures: Optional[Dict[str, float]] = None,
        rep_tid: Optional[int] = None,
    ) -> bool:
        """Insert a cell, or replace the stats of an existing one in place.

        The maintenance counterpart of :meth:`add` (which treats duplicates as
        algorithm bugs): incremental merge legitimately *updates* cells whose
        groups grew.  Existing :class:`CellStats` objects are mutated rather
        than replaced, so a live closure index — and any serving engine built
        over it — observes the new statistics without rebuilding.  Returns
        ``True`` when the cell was newly added.
        """
        stats = self._cells.get(cell)
        if stats is None:
            self.add(cell, count, measures, rep_tid)
            return True
        stats.count = count
        stats.measures = dict(measures or {})
        stats.rep_tid = rep_tid
        if self._closure_index is not None:
            self._closure_index.touch_cell(cell)
        return False

    def shift_rep_tids(self, offset: int) -> None:
        """Shift every representative tuple id by ``offset`` (in place).

        Used by delta-mode runs: a delta cube is computed over a re-based
        slice of the grown relation, and its rep_tids must be translated back
        into the full relation's tid space before merging.  Counts, measures,
        and the closure index are unaffected.
        """
        if offset == 0:
            return
        for stats in self._cells.values():
            if stats.rep_tid is not None:
                stats.rep_tid += offset

    def remove(self, cell: Cell) -> None:
        """Drop a materialised cell (and its posting-list entries, if indexed)."""
        if cell not in self._cells:
            raise ValidationError(f"cell {cell!r} is not materialised")
        del self._cells[cell]
        if self._closure_index is not None:
            self._closure_index.remove_cells([cell])

    def merge(
        self,
        delta: "CubeResult",
        relation: Relation,
        measures: Optional[MeasureSet] = None,
        delta_tid_offset: int = 0,
        batch_size: Optional[int] = None,
        yield_between_batches: Optional[Callable[[], None]] = None,
    ) -> "MergeReport":
        """Fold a delta closed cube into this one, repairing closedness.

        Both cubes must be *full closed* cubes (``closed=True, min_sup=1``)
        over the same schema, computed with representative-tuple tracking;
        ``relation`` is the combined fact table (base tuples first, delta
        tuples appended) against which closedness is re-evaluated.
        ``delta_tid_offset`` shifts the delta cube's representative tuple ids
        into the combined tid space when the delta was computed over a
        re-based relation (cubes produced by
        :meth:`repro.algorithms.base.CubingAlgorithm.run_delta` are already
        shifted).  ``measures`` overrides the measure set used to merge
        payload values; by default the cube's own :attr:`measure_set` is used.

        Mutates this cube in place (cells added and updated, never removed —
        appending tuples can only create or grow closed cells) and keeps the
        live closure index current.  See :mod:`repro.incremental.merge` for
        the algorithm and the closedness-repair argument; ``batch_size`` /
        ``yield_between_batches`` bound how long the merge runs between
        scheduler yield points (same semantics as
        :func:`~repro.incremental.merge.merge_closed_cubes`).
        """
        from ..incremental.merge import merge_closed_cubes

        return merge_closed_cubes(
            self,
            delta,
            relation,
            measures=measures,
            delta_tid_offset=delta_tid_offset,
            batch_size=batch_size,
            yield_between_batches=yield_between_batches,
        )

    def clone(self) -> "CubeResult":
        """An independent deep copy of the cells (fresh :class:`CellStats`).

        The substrate of copy-on-publish maintenance: the concurrent serving
        path merges a delta into a *clone* while queries keep reading the
        original, then publishes the clone with one reference swap
        (:meth:`repro.query.engine.QueryEngine.publish`).  Cloning a closed
        cube is cheap by design — closedness collapses every equivalence
        class of the quotient lattice to one materialised cell, so the copy
        is proportional to the closed cube, not to the full cube lattice.
        The clone shares nothing mutable with the original (its closure index
        is rebuilt lazily on first use) and carries the same
        :attr:`measure_set`.
        """
        other = CubeResult(self.num_dims, name=self.name)
        cells = other._cells
        for cell, stats in self._cells.items():
            cells[cell] = CellStats(stats.count, dict(stats.measures), stats.rep_tid)
        other.measure_set = self.measure_set
        return other

    # ------------------------------------------------------------------ #
    # Container protocol                                                  #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, cell: Cell) -> bool:
        return cell in self._cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells)

    def __getitem__(self, cell: Cell) -> CellStats:
        return self._cells[cell]

    def get(self, cell: Cell) -> Optional[CellStats]:
        return self._cells.get(cell)

    def items(self) -> Iterable[Tuple[Cell, CellStats]]:
        return self._cells.items()

    def cells(self) -> List[Cell]:
        """All cells in a stable, human-friendly order."""
        return sorted(self._cells, key=sort_key)

    # ------------------------------------------------------------------ #
    # Comparison                                                          #
    # ------------------------------------------------------------------ #

    def same_cells(self, other: "CubeResult") -> bool:
        """``True`` iff both cubes contain exactly the same cells and counts."""
        if self.num_dims != other.num_dims or len(self) != len(other):
            return False
        for cell, stats in self._cells.items():
            other_stats = other.get(cell)
            if other_stats is None or other_stats.key() != stats.key():
                return False
        return True

    def diff(self, other: "CubeResult", limit: int = 20) -> str:
        """Human-readable difference report, used in test failure messages."""
        lines: List[str] = []
        missing = [cell for cell in self._cells if cell not in other._cells]
        extra = [cell for cell in other._cells if cell not in self._cells]
        changed = [
            cell
            for cell, stats in self._cells.items()
            if cell in other._cells and other._cells[cell].key() != stats.key()
        ]
        for label, cells in (("missing", missing), ("extra", extra), ("changed", changed)):
            for cell in sorted(cells, key=sort_key)[:limit]:
                lines.append(f"{label}: {cell}")
        if not lines:
            lines.append("(no differences)")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Queries                                                             #
    # ------------------------------------------------------------------ #

    def count_of(self, cell: Cell) -> Optional[int]:
        """Count of a materialised cell, or ``None`` if it is not in the cube."""
        stats = self._cells.get(cell)
        return stats.count if stats is not None else None

    def closure_index(self):
        """The lazily built inverted index used by :meth:`closure_query`.

        Returns a :class:`repro.query.index.CubeIndex` over the current
        cells, built on first use and thereafter maintained *in place* by
        :meth:`add` / :meth:`upsert` / :meth:`remove` — the same object stays
        valid across incremental merges, which is what lets serving engines
        keep their index warm while the cube grows.  The import is deferred
        to keep the package layering one-way at import time (``repro.query``
        builds on ``repro.core``; the core only reaches back at call time).
        """
        if self._closure_index is None:
            from ..query.index import CubeIndex

            self._closure_index = CubeIndex.from_cube(self)
        return self._closure_index

    def closure_query(self, cell: Cell) -> Optional[CellStats]:
        """Answer a query on ``cell`` from a *closed* cube (quotient semantics).

        The answer for any cell equals the answer of its closure — the most
        specific closed cell that is a specialisation of it with the same
        tuple set.  From the closed cube alone the closure is the closed
        specialisation of ``cell`` with the **maximum count** (any closed cell
        that specialises ``cell`` aggregates a subset of its tuples; the
        closure aggregates all of them).  Returns ``None`` when ``cell`` is
        empty or was pruned by the iceberg condition.

        Resolution is backed by the inverted :meth:`closure_index`; see
        :meth:`closure_query_scan` for the unindexed baseline.
        """
        found = self.closure_index().closure(cell)
        return found[1] if found is not None else None

    def closure_query_scan(self, cell: Cell) -> Optional[CellStats]:
        """Linear-scan closure resolution (the pre-index baseline).

        Kept as the reference implementation: the correctness tests check the
        index against it, and ``benchmarks/bench_query_throughput.py`` uses it
        as the naive per-query cost the serving layer is measured against.
        """
        best: Optional[CellStats] = None
        for other, stats in self._cells.items():
            if is_specialisation(cell, other):
                if best is None or stats.count > best.count:
                    best = stats
        return best

    def cells_at_arity(self, arity: int) -> List[Cell]:
        """Cells of the ``arity``-dimensional cuboids."""
        return [cell for cell in self._cells if cell_arity(cell) == arity]

    # ------------------------------------------------------------------ #
    # Size accounting (Figures 13-14)                                     #
    # ------------------------------------------------------------------ #

    def size_cells(self) -> int:
        """Number of materialised cells."""
        return len(self._cells)

    def size_bytes(self) -> int:
        """Estimated storage footprint under the flat-record cost model."""
        per_cell = self.num_dims * BYTES_PER_DIM + BYTES_PER_COUNT
        return len(self._cells) * per_cell

    def size_megabytes(self) -> float:
        """Estimated storage footprint in MB (the unit used by the paper)."""
        return self.size_bytes() / (1024.0 * 1024.0)

    # ------------------------------------------------------------------ #
    # Rendering                                                           #
    # ------------------------------------------------------------------ #

    def to_rows(self) -> List[Tuple[Cell, int]]:
        """(cell, count) pairs in stable order; convenient for tests and demos."""
        return [(cell, self._cells[cell].count) for cell in self.cells()]

    def to_named_rows(self, relation: Relation) -> List[Tuple[Dict[str, object], int]]:
        """(coordinates, count) pairs with decoded values keyed by dimension name.

        Aggregated (``*``) dimensions are omitted from the coordinate mapping,
        mirroring how the named session API (:mod:`repro.session`) renders
        answers.
        """
        names = relation.schema.dimension_names
        rows: List[Tuple[Dict[str, object], int]] = []
        for cell in self.cells():
            coords = {
                names[dim]: relation.decode(dim, code)
                for dim, code in enumerate(cell)
                if code is not None
            }
            rows.append((coords, self._cells[cell].count))
        return rows

    def format(
        self, relation: Optional[Relation] = None, limit: Optional[int] = None
    ) -> str:
        """Pretty-print the cube, optionally decoding values via ``relation``."""
        names = relation.schema.dimension_names if relation is not None else None
        decoders = relation.decoders if relation is not None else None
        lines = []
        for cell in self.cells()[: limit if limit is not None else len(self._cells)]:
            stats = self._cells[cell]
            rendered = format_cell(cell, names, decoders)
            lines.append(f"{rendered} : count={stats.count}" +
                         ("" if not stats.measures else f" {stats.measures}"))
        if limit is not None and len(self._cells) > limit:
            lines.append(f"... ({len(self._cells) - limit} more cells)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"CubeResult({label} dims={self.num_dims}, cells={len(self._cells)})"


def count_matching_tuples(relation: Relation, cell: Cell) -> int:
    """Count base-table tuples aggregating into ``cell`` (brute force)."""
    return sum(1 for row in relation.rows() if tuple_matches(cell, row))
