"""Exception hierarchy for the C-Cubing reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can guard an entire pipeline with a single ``except ReproError`` clause while
still being able to distinguish configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """Raised when a relation schema is inconsistent or misused.

    Examples: duplicate dimension names, a tuple whose arity does not match
    the schema, or a reference to an unknown dimension.
    """


class EncodingError(ReproError):
    """Raised when dictionary encoding or decoding of dimension values fails."""


class MeasureError(ReproError):
    """Raised when a measure specification is invalid or cannot be aggregated."""


class AlgorithmError(ReproError):
    """Raised when a cubing algorithm is configured or invoked incorrectly."""


class UnknownAlgorithmError(AlgorithmError):
    """Raised when an algorithm name is not present in the registry."""


class ValidationError(ReproError):
    """Raised when a computed cube fails a correctness validation check."""


class WorkloadError(ReproError):
    """Raised when a benchmark workload or figure specification is invalid."""


class PartitionError(ReproError):
    """Raised by the external/partitioned computation driver (Section 6.3)."""


class IncrementalError(ReproError):
    """Raised when incremental cube maintenance (merge / append) cannot proceed.

    Examples: merging cubes of different dimensionality, a delta cube whose
    cells lack representative tuple ids, or a merge requested on a cube whose
    payload measures cannot be reconstructed into mergeable states.
    """


class SnapshotError(ReproError):
    """Raised when a cube snapshot cannot be written or read back.

    Examples: a file that does not start with the snapshot magic, a snapshot
    written by an unsupported format version, or a truncated payload.
    """


class CatalogError(ReproError):
    """Raised when a cube catalog operation cannot proceed.

    Examples: creating a cube under a name already registered, opening a name
    the manifest does not know, an invalid cube name, or a corrupt manifest
    file.
    """


class ServerError(ReproError):
    """Raised by the concurrent serving layer (:mod:`repro.server`).

    Examples: querying a cube the server's catalog does not hold, submitting
    to a server that is shutting down, or a malformed protocol request.
    """


class ServerTimeout(ServerError):
    """Raised when a served request exceeds the server's per-request timeout.

    The timeout covers the whole request — queueing, any per-cube lock
    wait, and execution — so a wedged maintenance task surfaces as a
    counted, answerable error instead of a connection hung forever.  Note
    that a timed-out *append* may still land: the merge thread cannot be
    interrupted, only abandoned.
    """


class ReplicationError(ReproError):
    """Raised by the replicated serving tier (:mod:`repro.replication`).

    Examples: acquiring a lease another process still holds, tailing a cube
    the catalog manifest does not know, or promoting a follower that cannot
    reach the chain tip.
    """


class LeaseFencedError(ReplicationError):
    """Raised when a write arrives under a lease that is no longer current.

    The single-writer contract: every durable append carries the writer's
    ``(holder_id, epoch)`` and the catalog checks it against the manifest
    *before* journaling.  A leader that paused (GC, network partition) past
    its lease expiry and was superseded by a higher epoch gets this error
    instead of silently forking the replication log.
    """


class QueryError(ReproError):
    """Raised when a closure query against a served cube is malformed.

    Examples: a query cell whose arity does not match the cube, a slice whose
    group-by dimensions overlap its fixed dimensions, or a query routed to a
    partitioned engine built over a different schema.
    """
