"""Measure framework: distributive and algebraic aggregate measures.

The paper (Definitions 4 and 5, Section 6.1) distinguishes *distributive*
measures — computable from the measures of sub-parts alone (``count``, ``sum``,
``min``, ``max``) — and *algebraic* measures — computable from a bounded number
of distributive measures of the sub-parts (``avg`` = ``sum`` / ``count``).

Every cubing algorithm in this package aggregates ``count`` (it is both the
iceberg measure and the basis of closedness checking, Lemma 1) and may carry
any number of additional measures from this module as a payload.  Measures are
represented by small *state* objects that support three operations:

``init(tid)``
    the state of a single tuple,
``merge(other)``
    combine with the state of a disjoint part (in place),
``value()``
    the final measure value.

This mirrors the classic Gray-et-al. cube operator formulation and keeps every
aggregation path (arrays, trees, recursion) measure-agnostic.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .errors import MeasureError
from .relation import Relation


class MeasureState(ABC):
    """Running state of one measure over a (partial) group of tuples."""

    __slots__ = ()

    @abstractmethod
    def merge(self, other: "MeasureState") -> None:
        """Fold the state of a disjoint sub-group into this state."""

    @abstractmethod
    def value(self) -> float:
        """Final value of the measure for the group aggregated so far."""


class MeasureSpec(ABC):
    """Declarative description of a measure (name + how to build its state)."""

    #: Human-readable measure name, e.g. ``"sum(price)"``.
    name: str

    #: ``True`` for distributive measures, ``False`` for merely algebraic ones.
    distributive: bool = True

    @abstractmethod
    def create(self, relation: Relation, tid: int) -> MeasureState:
        """State of the measure for the single tuple ``tid``."""

    def reconstruct(self, value: float, count: int) -> MeasureState:
        """Rebuild a mergeable state from a finalised ``value()`` and group count.

        This is the inverse of :meth:`MeasureState.value` and what keeps
        measure states *reconstructible post-run*: a materialised cube stores
        only final measure values, yet incremental maintenance
        (:mod:`repro.incremental`) must merge those values with a delta
        cube's.  Every built-in measure is reconstructible — ``count``,
        ``sum``, ``min``, ``max`` carry their value directly, and ``avg``
        recovers its bounded ``(sum, count)`` pair from ``value * count``.
        Custom specs that cannot be inverted should leave this unimplemented;
        merging such cubes raises.
        """
        raise MeasureError(
            f"measure {self.name!r} does not support state reconstruction; "
            "implement reconstruct() to make cubes carrying it mergeable"
        )

    def describe(self) -> str:
        """One-line description used in reports and ``repr``."""
        kind = "distributive" if self.distributive else "algebraic"
        return f"{self.name} ({kind})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


# --------------------------------------------------------------------------- #
# Count                                                                        #
# --------------------------------------------------------------------------- #


class CountState(MeasureState):
    """State for ``count``: a single integer."""

    __slots__ = ("count",)

    def __init__(self, count: int = 1) -> None:
        self.count = count

    def merge(self, other: MeasureState) -> None:
        if not isinstance(other, CountState):
            raise MeasureError("cannot merge count with a different measure state")
        self.count += other.count

    def value(self) -> float:
        return float(self.count)


class CountMeasure(MeasureSpec):
    """The fundamental ``count`` measure (Lemma 1)."""

    name = "count"
    distributive = True

    def create(self, relation: Relation, tid: int) -> CountState:
        return CountState(1)

    def reconstruct(self, value: float, count: int) -> CountState:
        return CountState(int(value))


# --------------------------------------------------------------------------- #
# Sum / Min / Max over a measure column                                        #
# --------------------------------------------------------------------------- #


class SumState(MeasureState):
    __slots__ = ("total",)

    def __init__(self, total: float) -> None:
        self.total = total

    def merge(self, other: MeasureState) -> None:
        if not isinstance(other, SumState):
            raise MeasureError("cannot merge sum with a different measure state")
        self.total += other.total

    def value(self) -> float:
        return self.total


class SumMeasure(MeasureSpec):
    """Distributive ``sum`` over one measure column of the relation."""

    distributive = True

    def __init__(self, column: str) -> None:
        self.column = column
        self.name = f"sum({column})"

    def create(self, relation: Relation, tid: int) -> SumState:
        index = relation.schema.measure_index(self.column)
        return SumState(relation.measure_value(tid, index))

    def reconstruct(self, value: float, count: int) -> SumState:
        return SumState(value)


class MinState(MeasureState):
    __slots__ = ("minimum",)

    def __init__(self, minimum: float) -> None:
        self.minimum = minimum

    def merge(self, other: MeasureState) -> None:
        if not isinstance(other, MinState):
            raise MeasureError("cannot merge min with a different measure state")
        if other.minimum < self.minimum:
            self.minimum = other.minimum

    def value(self) -> float:
        return self.minimum


class MinMeasure(MeasureSpec):
    """Distributive ``min`` over one measure column."""

    distributive = True

    def __init__(self, column: str) -> None:
        self.column = column
        self.name = f"min({column})"

    def create(self, relation: Relation, tid: int) -> MinState:
        index = relation.schema.measure_index(self.column)
        return MinState(relation.measure_value(tid, index))

    def reconstruct(self, value: float, count: int) -> MinState:
        return MinState(value)


class MaxState(MeasureState):
    __slots__ = ("maximum",)

    def __init__(self, maximum: float) -> None:
        self.maximum = maximum

    def merge(self, other: MeasureState) -> None:
        if not isinstance(other, MaxState):
            raise MeasureError("cannot merge max with a different measure state")
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    def value(self) -> float:
        return self.maximum


class MaxMeasure(MeasureSpec):
    """Distributive ``max`` over one measure column."""

    distributive = True

    def __init__(self, column: str) -> None:
        self.column = column
        self.name = f"max({column})"

    def create(self, relation: Relation, tid: int) -> MaxState:
        index = relation.schema.measure_index(self.column)
        return MaxState(relation.measure_value(tid, index))

    def reconstruct(self, value: float, count: int) -> MaxState:
        return MaxState(value)


# --------------------------------------------------------------------------- #
# Average (algebraic)                                                          #
# --------------------------------------------------------------------------- #


class AvgState(MeasureState):
    """State for ``avg``: the bounded pair (sum, count) of Example 2."""

    __slots__ = ("total", "count")

    def __init__(self, total: float, count: int) -> None:
        self.total = total
        self.count = count

    def merge(self, other: MeasureState) -> None:
        if not isinstance(other, AvgState):
            raise MeasureError("cannot merge avg with a different measure state")
        self.total += other.total
        self.count += other.count

    def value(self) -> float:
        if self.count == 0:
            raise MeasureError("average of an empty group is undefined")
        return self.total / self.count


class AvgMeasure(MeasureSpec):
    """Algebraic ``avg`` over one measure column (sum and count carried)."""

    distributive = False

    def __init__(self, column: str) -> None:
        self.column = column
        self.name = f"avg({column})"

    def create(self, relation: Relation, tid: int) -> AvgState:
        index = relation.schema.measure_index(self.column)
        return AvgState(relation.measure_value(tid, index), 1)

    def reconstruct(self, value: float, count: int) -> AvgState:
        return AvgState(value * count, count)


# --------------------------------------------------------------------------- #
# Measure sets and iceberg conditions                                          #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class IcebergCondition:
    """The iceberg constraint of Definition 2.

    The primary constraint is always ``count >= min_sup`` (the paper's
    setting); an optional secondary predicate over the payload measure values
    can be supplied for complex-measure icebergs (Section 6.1).  The secondary
    predicate is applied at output time only and must be *anti-monotonic* on
    the count lattice for the algorithms' pruning to remain lossless; the
    library does not attempt to verify that property.
    """

    min_sup: int = 1
    payload_predicate: Optional[Callable[[Dict[str, float]], bool]] = None

    def __post_init__(self) -> None:
        if self.min_sup < 1:
            raise MeasureError(f"min_sup must be >= 1, got {self.min_sup}")

    def accepts_count(self, count: int) -> bool:
        """Apriori-usable part of the condition."""
        return count >= self.min_sup

    def accepts(self, count: int, payload: Dict[str, float]) -> bool:
        """Full condition, applied just before a cell is emitted."""
        if count < self.min_sup:
            return False
        if self.payload_predicate is not None:
            return bool(self.payload_predicate(payload))
        return True


class MeasureSet:
    """The payload measures an algorithm aggregates alongside ``count``."""

    def __init__(self, specs: Sequence[MeasureSpec] = ()) -> None:
        self.specs: List[MeasureSpec] = list(specs)
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise MeasureError(f"duplicate measure names: {names}")

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def create_states(self, relation: Relation, tid: int) -> List[MeasureState]:
        """Fresh per-tuple states, one per payload measure."""
        return [spec.create(relation, tid) for spec in self.specs]

    def merge_states(
        self, target: List[MeasureState], source: Sequence[MeasureState]
    ) -> None:
        """Merge ``source`` states into ``target`` states, pairwise."""
        for state, other in zip(target, source):
            state.merge(other)

    def clone_states(self, states: Sequence[MeasureState]) -> List[MeasureState]:
        """Independent copies of a list of states (used by array aggregation)."""
        return [copy.copy(state) for state in states]

    def values(self, states: Sequence[MeasureState]) -> Dict[str, float]:
        """Final measure values keyed by measure name."""
        return {
            spec.name: state.value() for spec, state in zip(self.specs, states)
        }

    def reconstruct_states(
        self, values: Dict[str, float], count: int
    ) -> List[MeasureState]:
        """Rebuild mergeable states from a cell's finalised measure values.

        ``count`` is the cell's group count (the basis algebraic measures such
        as ``avg`` need to invert their final value).  Raises
        :class:`MeasureError` when a value is missing or a spec is not
        reconstructible.
        """
        states: List[MeasureState] = []
        for spec in self.specs:
            if spec.name not in values:
                raise MeasureError(
                    f"cell carries no value for measure {spec.name!r}; cannot "
                    "reconstruct its state"
                )
            states.append(spec.reconstruct(values[spec.name], count))
        return states

    def merge_values(
        self,
        first_values: Dict[str, float],
        first_count: int,
        second_values: Dict[str, float],
        second_count: int,
    ) -> Dict[str, float]:
        """Measure values of the union of two disjoint groups.

        Both groups' states are reconstructed, merged pairwise, and
        re-finalised — the post-run counterpart of the in-run
        :meth:`merge_states` path, used by incremental cube maintenance.
        """
        states = self.reconstruct_states(first_values, first_count)
        self.merge_states(states, self.reconstruct_states(second_values, second_count))
        return self.values(states)


#: A shared, empty measure set for the common count-only configuration.
EMPTY_MEASURES = MeasureSet()
