"""Dimension-ordering heuristics for the Star-family algorithms (Section 5.5).

Star-Cubing and StarArray process dimensions in a fixed order, so the choice
of order affects how early iceberg and closed pruning kick in.  The paper
compares three strategies:

* ``original`` — the order the dimensions appear in the schema,
* ``cardinality`` — distinct-value count, descending (the classic heuristic),
* ``entropy`` — the paper's proposal: order by the entropy surrogate
  ``E(A) = -sum_i |a_i| * log |a_i|`` descending, which prefers dimensions
  whose value distribution is closest to uniform.

Each strategy returns a permutation of dimension indices; callers apply it via
:meth:`repro.core.relation.Relation.reorder_dimensions` or pass it to an
algorithm's ``dimension_order`` option.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Dict, List

from .errors import SchemaError
from .relation import Relation


def original_order(relation: Relation) -> List[int]:
    """Identity order: dimensions as declared in the schema."""
    return list(range(relation.num_dimensions))


def cardinality_order(relation: Relation) -> List[int]:
    """Dimensions sorted by distinct-value count, descending (ties: schema order)."""
    cards = relation.cardinalities()
    return sorted(range(relation.num_dimensions), key=lambda dim: (-cards[dim], dim))


def entropy_score(relation: Relation, dim: int) -> float:
    """The paper's ``E`` surrogate: ``-sum_i |a_i| * log |a_i|``.

    Larger values correspond to more uniform (higher-entropy) distributions.
    Values with a single occurrence contribute zero (``log 1 == 0``).
    """
    counts = Counter(relation.columns[dim])
    return -sum(count * math.log(count) for count in counts.values())


def entropy_order(relation: Relation) -> List[int]:
    """Dimensions sorted by the entropy surrogate ``E``, descending."""
    scores = {dim: entropy_score(relation, dim) for dim in range(relation.num_dimensions)}
    return sorted(
        range(relation.num_dimensions), key=lambda dim: (-scores[dim], dim)
    )


#: Registry of ordering strategies by name (used by the bench harness and API).
ORDERINGS: Dict[str, Callable[[Relation], List[int]]] = {
    "original": original_order,
    "cardinality": cardinality_order,
    "entropy": entropy_order,
}


def resolve_order(relation: Relation, strategy: object) -> List[int]:
    """Resolve an ordering specification into a concrete permutation.

    ``strategy`` may be a name from :data:`ORDERINGS`, an explicit permutation
    of dimension indices, a callable taking the relation, or ``None`` (meaning
    the original order).
    """
    if strategy is None:
        return original_order(relation)
    if callable(strategy):
        order = list(strategy(relation))
    elif isinstance(strategy, str):
        try:
            order = ORDERINGS[strategy](relation)
        except KeyError as exc:
            raise SchemaError(
                f"unknown dimension ordering {strategy!r}; "
                f"expected one of {sorted(ORDERINGS)}"
            ) from exc
    else:
        order = [int(dim) for dim in strategy]  # type: ignore[arg-type]
    if sorted(order) != list(range(relation.num_dimensions)):
        raise SchemaError(f"{order!r} is not a permutation of the dimensions")
    return order
