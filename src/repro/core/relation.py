"""Fact-table substrate: schemas, dictionary encoding, and the Relation class.

Every cubing algorithm in this package operates on a :class:`Relation` — an
in-memory, column-oriented fact table whose dimension values have been
dictionary-encoded to small non-negative integers.  The encoding mirrors what
the original C++ systems (BUC, MM-Cubing, Star-Cubing) assume: dimension values
are dense integer ids, tuples are addressed by tuple id (``tid``), and one or
more numeric measure columns ride along with the dimensions.

The class deliberately keeps its internals simple (lists of ints) so that the
algorithms can index into columns directly without paying attribute or method
dispatch costs inside their hot loops.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .errors import EncodingError, SchemaError


@dataclass(frozen=True)
class Schema:
    """Names and order of the dimension and measure columns of a relation."""

    dimension_names: Tuple[str, ...]
    measure_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = list(self.dimension_names) + list(self.measure_names)
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        if not self.dimension_names:
            raise SchemaError("a schema needs at least one dimension")

    @property
    def num_dimensions(self) -> int:
        return len(self.dimension_names)

    @property
    def num_measures(self) -> int:
        return len(self.measure_names)

    def dimension_index(self, name: str) -> int:
        """Index of the dimension called ``name``."""
        try:
            return self.dimension_names.index(name)
        except ValueError as exc:
            raise SchemaError(f"unknown dimension {name!r}") from exc

    def measure_index(self, name: str) -> int:
        """Index of the measure column called ``name``."""
        try:
            return self.measure_names.index(name)
        except ValueError as exc:
            raise SchemaError(f"unknown measure {name!r}") from exc


@dataclass
class Relation:
    """An integer-encoded fact table.

    Attributes
    ----------
    schema:
        The :class:`Schema` describing the columns.
    columns:
        One list per dimension, each of length ``num_tuples``, holding the
        dictionary-encoded value of that dimension for every tuple.
    measure_columns:
        One list per measure column, each of length ``num_tuples``.
    decoders:
        Per dimension, a mapping from integer code back to the original value.
        Relations built directly from integer data have identity decoders.
    """

    schema: Schema
    columns: List[List[int]]
    measure_columns: List[List[float]] = field(default_factory=list)
    decoders: List[Dict[int, object]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.columns) != self.schema.num_dimensions:
            raise SchemaError(
                f"{len(self.columns)} dimension columns for a schema with "
                f"{self.schema.num_dimensions} dimensions"
            )
        lengths = {len(col) for col in self.columns}
        if len(lengths) > 1:
            raise SchemaError(f"dimension columns have inconsistent lengths: {lengths}")
        if len(self.measure_columns) != self.schema.num_measures:
            raise SchemaError(
                f"{len(self.measure_columns)} measure columns for a schema with "
                f"{self.schema.num_measures} measures"
            )
        for col in self.measure_columns:
            if len(col) != self.num_tuples:
                raise SchemaError("measure column length does not match tuple count")
        if not self.decoders:
            self.decoders = [
                {code: code for code in set(col)} for col in self.columns
            ]

    # ------------------------------------------------------------------ #
    # Construction helpers                                                #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[object]],
        dimension_names: Optional[Sequence[str]] = None,
        measures: Optional[Mapping[str, Sequence[float]]] = None,
    ) -> "Relation":
        """Build a relation from row-oriented raw data, dictionary-encoding values.

        Parameters
        ----------
        rows:
            A sequence of tuples of raw (hashable) dimension values.
        dimension_names:
            Optional column names; defaults to ``d0, d1, ...``.
        measures:
            Optional mapping from measure name to a per-tuple value sequence.
        """
        if not rows:
            raise SchemaError("cannot build a relation from zero rows")
        num_dims = len(rows[0])
        if any(len(row) != num_dims for row in rows):
            raise SchemaError("all rows must have the same number of dimensions")
        if dimension_names is None:
            dimension_names = [f"d{i}" for i in range(num_dims)]
        measures = dict(measures or {})
        schema = Schema(tuple(dimension_names), tuple(measures.keys()))

        encoders: List[Dict[object, int]] = [{} for _ in range(num_dims)]
        columns: List[List[int]] = [[] for _ in range(num_dims)]
        for row in rows:
            for dim, raw in enumerate(row):
                encoder = encoders[dim]
                code = encoder.get(raw)
                if code is None:
                    code = len(encoder)
                    encoder[raw] = code
                columns[dim].append(code)

        measure_columns = []
        for name, values in measures.items():
            values = list(values)
            if len(values) != len(rows):
                raise SchemaError(
                    f"measure {name!r} has {len(values)} values for {len(rows)} rows"
                )
            measure_columns.append([float(v) for v in values])

        decoders = [
            {code: raw for raw, code in encoder.items()} for encoder in encoders
        ]
        return cls(schema, columns, measure_columns, decoders)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[int]],
        dimension_names: Optional[Sequence[str]] = None,
        measures: Optional[Mapping[str, Sequence[float]]] = None,
    ) -> "Relation":
        """Build a relation from already integer-encoded dimension columns."""
        if not columns:
            raise SchemaError("cannot build a relation with zero dimensions")
        if dimension_names is None:
            dimension_names = [f"d{i}" for i in range(len(columns))]
        measures = dict(measures or {})
        schema = Schema(tuple(dimension_names), tuple(measures.keys()))
        int_columns = [list(map(int, col)) for col in columns]
        for col in int_columns:
            if any(v < 0 for v in col):
                raise EncodingError("encoded dimension values must be non-negative")
        measure_columns = [list(map(float, vals)) for vals in measures.values()]
        return cls(schema, int_columns, measure_columns)

    @classmethod
    def from_csv(
        cls,
        path: str,
        dimension_names: Sequence[str],
        measure_names: Sequence[str] = (),
        delimiter: str = ",",
    ) -> "Relation":
        """Load a relation from a CSV file with a header row.

        Columns named in ``dimension_names`` are dictionary-encoded; columns in
        ``measure_names`` are parsed as floats; other columns are ignored.
        """
        rows: List[Tuple[object, ...]] = []
        measure_values: Dict[str, List[float]] = {name: [] for name in measure_names}
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle, delimiter=delimiter)
            if reader.fieldnames is None:
                raise SchemaError(f"CSV file {path!r} has no header row")
            missing = [
                name
                for name in list(dimension_names) + list(measure_names)
                if name not in reader.fieldnames
            ]
            if missing:
                raise SchemaError(f"CSV file {path!r} is missing columns {missing}")
            for record in reader:
                rows.append(tuple(record[name] for name in dimension_names))
                for name in measure_names:
                    measure_values[name].append(float(record[name]))
        return cls.from_rows(rows, dimension_names, measure_values)

    # ------------------------------------------------------------------ #
    # Basic accessors                                                     #
    # ------------------------------------------------------------------ #

    @property
    def num_tuples(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_dimensions(self) -> int:
        return self.schema.num_dimensions

    def column_store(self) -> "object":
        """Cached columnar views of this relation (see :mod:`repro.core.columns`).

        The canonical storage stays plain lists — algorithms index
        ``columns[dim][tid]`` directly — but vectorized kernels go through
        the store's typed snapshots, rebuilt lazily after appends.
        """
        from .columns import column_store

        return column_store(self)

    def cardinality(self, dim: int) -> int:
        """Number of distinct values appearing in dimension ``dim``."""
        from .columns import column_store

        store = column_store(self)
        if store.backend.np is not None and self.num_tuples >= 1024:
            return int(store.backend.np.unique(store.dimension(dim)).size)
        return len(set(self.columns[dim]))

    def cardinalities(self) -> Tuple[int, ...]:
        """Per-dimension distinct value counts."""
        return tuple(self.cardinality(dim) for dim in range(self.num_dimensions))

    def value(self, tid: int, dim: int) -> int:
        """Encoded value of tuple ``tid`` on dimension ``dim``."""
        return self.columns[dim][tid]

    def row(self, tid: int) -> Tuple[int, ...]:
        """The full encoded dimension tuple of tuple ``tid``."""
        return tuple(self.columns[dim][tid] for dim in range(self.num_dimensions))

    def rows(self) -> Iterable[Tuple[int, ...]]:
        """Iterate over all encoded dimension tuples in tid order."""
        for tid in range(self.num_tuples):
            yield self.row(tid)

    def measure_value(self, tid: int, measure: int) -> float:
        """Value of measure column ``measure`` for tuple ``tid``."""
        return self.measure_columns[measure][tid]

    def decode(self, dim: int, code: int) -> object:
        """Original raw value behind an encoded dimension value."""
        try:
            return self.decoders[dim][code]
        except KeyError as exc:
            raise EncodingError(
                f"code {code} is not a known value of dimension "
                f"{self.schema.dimension_names[dim]!r}"
            ) from exc

    def encoder(self, dim: int) -> Dict[object, int]:
        """The value dictionary of dimension ``dim``: raw value -> code.

        The inverse of :attr:`decoders`; built lazily and cached (the
        dictionaries are append-only once the relation exists).  This is the
        encode half of the value-dictionary layer the named session API
        (:mod:`repro.session`) uses to translate raw query values.
        """
        encoders = getattr(self, "_encoders", None)
        if encoders is None:
            encoders = [None] * self.num_dimensions
            object.__setattr__(self, "_encoders", encoders)
        if encoders[dim] is None:
            encoders[dim] = {raw: code for code, raw in self.decoders[dim].items()}
        return encoders[dim]

    def encode(self, dim: int, raw: object) -> int:
        """Code of raw value ``raw`` on dimension ``dim``.

        Raises :class:`EncodingError` when the value never appears in the
        relation; use :meth:`try_encode` for the non-raising variant.
        """
        code = self.encoder(dim).get(raw)
        if code is None:
            raise EncodingError(
                f"value {raw!r} does not appear in dimension "
                f"{self.schema.dimension_names[dim]!r}"
            )
        return code

    def try_encode(self, dim: int, raw: object) -> Optional[int]:
        """Code of ``raw`` on dimension ``dim``, or ``None`` if it never appears."""
        return self.encoder(dim).get(raw)

    def decode_cell(self, cell: Sequence[Optional[int]]) -> Tuple[object, ...]:
        """Decode a group-by cell to raw values (``None`` entries stay ``None``)."""
        return tuple(
            None if code is None else self.decode(dim, code)
            for dim, code in enumerate(cell)
        )

    # ------------------------------------------------------------------ #
    # Append (incremental growth)                                         #
    # ------------------------------------------------------------------ #

    def append_rows(
        self,
        rows: Sequence[Sequence[object]],
        measures: Optional[Mapping[str, Sequence[float]]] = None,
    ) -> Tuple[int, int]:
        """Append raw rows in place, growing the value dictionaries append-only.

        ``rows`` carry raw dimension values (one entry per dimension, schema
        order); values already in a dimension's dictionary reuse their code,
        unseen values are assigned the next free code — existing codes are
        never reassigned, so every previously computed cube, index, and cached
        answer over this relation stays valid.  ``measures`` maps each measure
        column name to the per-row values (required exactly when the schema
        declares measures).

        Returns the ``(start_tid, end_tid)`` half-open tid range of the
        appended tuples — the delta window incremental maintenance
        (:mod:`repro.incremental`) computes its delta cube over.
        """
        start_tid = self.num_tuples
        if not rows:
            # Explicit no-op: an empty append returns the empty tid window
            # without validating measures or touching any column, mirroring
            # the no-op AppendReport of ServingCube.append([]).
            return start_tid, start_tid
        num_dims = self.num_dimensions
        if any(len(row) != num_dims for row in rows):
            raise SchemaError(
                f"appended rows must have {num_dims} dimension values each"
            )
        measures = dict(measures or {})
        if set(measures) != set(self.schema.measure_names):
            raise SchemaError(
                f"appended measures {sorted(measures)} do not match the "
                f"schema's {list(self.schema.measure_names)}"
            )
        measure_values: List[List[float]] = []
        for name in self.schema.measure_names:
            values = [float(v) for v in measures[name]]
            if len(values) != len(rows):
                raise SchemaError(
                    f"measure {name!r} has {len(values)} values for "
                    f"{len(rows)} appended rows"
                )
            measure_values.append(values)

        # Encode into staging buffers first: a mid-row failure (e.g. an
        # unhashable value) must leave the relation untouched, not with
        # unequal column lengths.  Dictionary growth is safe to apply while
        # staging — extra codes for rows that never land are harmless, codes
        # are never reassigned.
        encoders = [self.encoder(dim) for dim in range(num_dims)]
        staged: List[List[int]] = [[] for _ in range(num_dims)]
        for row in rows:
            for dim, raw in enumerate(row):
                encoder = encoders[dim]
                code = encoder.get(raw)
                if code is None:
                    code = len(encoder)
                    encoder[raw] = code
                    self.decoders[dim][code] = raw
                staged[dim].append(code)
        for dim, codes in enumerate(staged):
            self.columns[dim].extend(codes)
        for index, values in enumerate(measure_values):
            self.measure_columns[index].extend(values)
        return start_tid, self.num_tuples

    # ------------------------------------------------------------------ #
    # Transformations                                                     #
    # ------------------------------------------------------------------ #

    def reorder_dimensions(self, order: Sequence[int]) -> "Relation":
        """Return a new relation with dimensions permuted into ``order``.

        ``order`` must be a permutation of ``range(num_dimensions)``.  Measure
        columns are carried over unchanged.  Used by the dimension-ordering
        heuristics of Section 5.5.
        """
        if sorted(order) != list(range(self.num_dimensions)):
            raise SchemaError(f"{order!r} is not a permutation of the dimensions")
        schema = Schema(
            tuple(self.schema.dimension_names[d] for d in order),
            self.schema.measure_names,
        )
        columns = [self.columns[d] for d in order]
        decoders = [self.decoders[d] for d in order]
        return Relation(schema, columns, self.measure_columns, decoders)

    def select(self, tids: Sequence[int]) -> "Relation":
        """Return a new relation containing only the given tuple ids (in order)."""
        if isinstance(tids, range) and tids.step == 1:
            # The delta-window case (appends select a contiguous suffix):
            # one C-speed slice per column instead of a per-tid loop.
            start, stop = tids.start, tids.stop
            columns = [col[start:stop] for col in self.columns]
            measure_columns = [col[start:stop] for col in self.measure_columns]
            return Relation(self.schema, columns, measure_columns, self.decoders)
        from .columns import column_store

        store = column_store(self)
        if store.backend.np is not None and len(tids) >= 1024:
            np = store.backend.np
            index = np.asarray(tids, dtype=np.int64)
            columns = [
                store.dimension(dim)[index].tolist()
                for dim in range(self.num_dimensions)
            ]
            measure_columns = [
                store.measure(m)[index].tolist()
                for m in range(self.schema.num_measures)
            ]
            return Relation(self.schema, columns, measure_columns, self.decoders)
        columns = [[col[tid] for tid in tids] for col in self.columns]
        measure_columns = [[col[tid] for tid in tids] for col in self.measure_columns]
        return Relation(self.schema, columns, measure_columns, self.decoders)

    def project(self, dims: Sequence[int]) -> "Relation":
        """Return a new relation keeping only the given dimensions (plus measures)."""
        if not dims:
            raise SchemaError("projection needs at least one dimension")
        schema = Schema(
            tuple(self.schema.dimension_names[d] for d in dims),
            self.schema.measure_names,
        )
        columns = [self.columns[d] for d in dims]
        decoders = [self.decoders[d] for d in dims]
        return Relation(schema, columns, self.measure_columns, decoders)

    def to_csv(self, path: str, decode: bool = True) -> None:
        """Write the relation to a CSV file with a header row."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                list(self.schema.dimension_names) + list(self.schema.measure_names)
            )
            for tid in range(self.num_tuples):
                row: List[object] = []
                for dim in range(self.num_dimensions):
                    code = self.columns[dim][tid]
                    row.append(self.decode(dim, code) if decode else code)
                for measure in range(self.schema.num_measures):
                    row.append(self.measure_columns[measure][tid])
                writer.writerow(row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Relation(dims={self.schema.dimension_names}, "
            f"tuples={self.num_tuples}, cardinalities={self.cardinalities()})"
        )
