"""Verification utilities: check a computed cube against first principles.

These helpers back the integration and property tests and are also exposed to
users who want to sanity-check a result on a sample of their data:

* :func:`reference_closed_cube` / :func:`reference_iceberg_cube` recompute the
  expected result with the oracle algorithm,
* :func:`verify_cube` compares a computed cube to the oracle and raises
  :class:`repro.core.errors.ValidationError` with a diff on mismatch,
* :func:`check_closedness_definition` re-derives closedness of every emitted
  cell directly from Definition 3 (cover relation) on the raw data,
* :func:`check_quotient_semantics` checks the lossless-compression property:
  any cell of the full iceberg cube can be answered from the closed cube via
  the closure query.
"""

from __future__ import annotations

from typing import Optional

from .cube import CubeResult, count_matching_tuples
from .errors import ValidationError
from .relation import Relation


def reference_iceberg_cube(relation: Relation, min_sup: int = 1) -> CubeResult:
    """The iceberg cube computed by the oracle algorithm."""
    from ..algorithms.base import CubingOptions
    from ..algorithms.naive import NaiveCubing

    return NaiveCubing(CubingOptions(min_sup=min_sup)).compute(relation)


def reference_closed_cube(relation: Relation, min_sup: int = 1) -> CubeResult:
    """The closed iceberg cube computed by the oracle algorithm."""
    from ..algorithms.base import CubingOptions
    from ..algorithms.naive import NaiveCubing

    return NaiveCubing(CubingOptions(min_sup=min_sup, closed=True)).compute(relation)


def verify_cube(
    computed: CubeResult, expected: CubeResult, label: str = "cube"
) -> None:
    """Raise :class:`ValidationError` if two cubes differ (cells or counts)."""
    if not expected.same_cells(computed):
        raise ValidationError(
            f"{label} does not match the reference result:\n"
            + expected.diff(computed)
        )


def check_counts(relation: Relation, cube: CubeResult, sample: Optional[int] = None) -> None:
    """Re-count a (sample of) emitted cells directly against the base table."""
    cells = cube.cells()
    if sample is not None:
        cells = cells[:sample]
    for cell in cells:
        expected = count_matching_tuples(relation, cell)
        actual = cube[cell].count
        if actual != expected:
            raise ValidationError(
                f"cell {cell} reports count {actual} but the base table has {expected}"
            )


def check_closedness_definition(relation: Relation, cube: CubeResult) -> None:
    """Verify every emitted cell is closed per Definition 3 (no shared ``*`` value)."""
    columns = relation.columns
    for cell in cube:
        tids = [
            tid
            for tid in range(relation.num_tuples)
            if all(
                value is None or columns[dim][tid] == value
                for dim, value in enumerate(cell)
            )
        ]
        if not tids:
            raise ValidationError(f"cell {cell} matches no tuples")
        for dim, value in enumerate(cell):
            if value is not None:
                continue
            shared = columns[dim][tids[0]]
            if all(columns[dim][tid] == shared for tid in tids):
                raise ValidationError(
                    f"cell {cell} is not closed: dimension {dim} is shared "
                    f"(value {shared}) by all {len(tids)} tuples"
                )


def check_quotient_semantics(
    relation: Relation, closed_cube: CubeResult, min_sup: int = 1
) -> None:
    """Check lossless compression: every iceberg cell is answerable from the closed cube."""
    full = reference_iceberg_cube(relation, min_sup=min_sup)
    for cell, stats in full.items():
        answer = closed_cube.closure_query(cell)
        if answer is None:
            raise ValidationError(
                f"cell {cell} (count {stats.count}) has no closure in the closed cube"
            )
        if answer.count != stats.count:
            raise ValidationError(
                f"cell {cell}: closed cube answers count {answer.count}, "
                f"expected {stats.count}"
            )
