"""Data generators: synthetic (T, D, C, S, R) workloads and the weather simulator."""

from .dependence import (
    DependenceRule,
    apply_rules,
    dependence_score,
    plan_rules,
    rule_pruning_power,
)
from .distributions import ZipfSampler, make_samplers
from .synthetic import (
    SyntheticConfig,
    generate_relation,
    generate_relation_with_rules,
    generate_rows,
    mixed_cardinality_config,
)
from .weather import WEATHER_DIMENSIONS, WeatherConfig, generate_weather_relation, weather_subset

__all__ = [
    "DependenceRule",
    "apply_rules",
    "dependence_score",
    "plan_rules",
    "rule_pruning_power",
    "ZipfSampler",
    "make_samplers",
    "SyntheticConfig",
    "generate_relation",
    "generate_relation_with_rules",
    "generate_rows",
    "mixed_cardinality_config",
    "WEATHER_DIMENSIONS",
    "WeatherConfig",
    "generate_weather_relation",
    "weather_subset",
]
