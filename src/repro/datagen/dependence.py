"""Data-dependence modelling (Section 5.3 of the paper).

Closed cells exist because dimension values *depend* on each other: if every
tuple with ``A=a1, B=b1`` also has ``C=c1``, then the cell ``(a1, b1, *)`` is
covered by ``(a1, b1, c1)`` and closed pruning has something to prune.  The
paper models this with *dependence rules* of the form
``(A=a1, B=b1) -> C=c1``; each rule has a *pruning power* estimating the
fraction of cube cells it removes, and the dataset's *dependence score* is

``R = -sum_i log(1 - pruning_power(rule_i))``

so that a larger ``R`` means a more dependent dataset.  This module provides
the rule type, the pruning-power / ``R`` computations, rule injection into an
existing synthetic dataset, and a planner that picks rules achieving a target
``R`` for a given schema (used by the Figure 12-15 workloads).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.errors import WorkloadError


@dataclass(frozen=True)
class DependenceRule:
    """A functional dependence ``condition -> target_dim = target_value``.

    ``condition`` maps dimension index to the required value; whenever a tuple
    matches every condition entry, its value on ``target_dim`` is forced to
    ``target_value``.
    """

    condition: Tuple[Tuple[int, int], ...]
    target_dim: int
    target_value: int

    def matches(self, row: Sequence[int]) -> bool:
        return all(row[dim] == value for dim, value in self.condition)

    def apply(self, row: List[int]) -> None:
        if self.matches(row):
            row[self.target_dim] = self.target_value


def rule_pruning_power(rule: DependenceRule, cardinalities: Sequence[int]) -> float:
    """The paper's estimate of the fraction of cube cells a rule removes.

    For a rule ``(a1, b1) -> c1`` the affected portion of the cube has relative
    size ``1 / (Card(A) * Card(B))`` and the rule keeps one out of
    ``Card(C) + 1`` classes of that portion, giving

    ``Card(C) / (Card(A) * Card(B) * (Card(C) + 1))``.
    """
    condition_product = 1.0
    for dim, _value in rule.condition:
        condition_product *= cardinalities[dim]
    target_card = cardinalities[rule.target_dim]
    return target_card / (condition_product * (target_card + 1))


def dependence_score(
    rules: Sequence[DependenceRule], cardinalities: Sequence[int]
) -> float:
    """The dependence measure ``R`` of a rule set."""
    score = 0.0
    for rule in rules:
        power = rule_pruning_power(rule, cardinalities)
        if power >= 1.0:
            raise WorkloadError(
                f"rule {rule} has pruning power {power} >= 1; "
                "its condition dimensions have cardinality 1"
            )
        score += -math.log(1.0 - power)
    return score


def apply_rules(rows: List[List[int]], rules: Sequence[DependenceRule]) -> int:
    """Rewrite ``rows`` in place so that every rule holds; returns #rewrites."""
    rewrites = 0
    for row in rows:
        for rule in rules:
            if rule.matches(row) and row[rule.target_dim] != rule.target_value:
                row[rule.target_dim] = rule.target_value
                rewrites += 1
    return rewrites


def plan_rules(
    cardinalities: Sequence[int],
    target_score: float,
    seed: int = 0,
    condition_arity: int = 1,
) -> List[DependenceRule]:
    """Pick a rule set whose dependence score approximately reaches ``target_score``.

    The planner keeps the rule set *consistent under a single application
    pass*: dimensions are split into condition dimensions and target
    dimensions (so no rewrite can invalidate or newly trigger another rule's
    condition), and every target dimension is forced to a single value by all
    of its rules (so two matching rules can never disagree).  Conditions use
    low-indexed values, which are the frequent ones under Zipf skew, so the
    rules actually shape the data.  A ``target_score`` of ``0`` returns no
    rules.
    """
    if target_score < 0:
        raise WorkloadError(f"target dependence score must be >= 0, got {target_score}")
    if target_score == 0:
        return []
    num_dims = len(cardinalities)
    if num_dims < condition_arity + 1:
        raise WorkloadError(
            f"need at least {condition_arity + 1} dimensions to build rules "
            f"with condition arity {condition_arity}"
        )
    usable = [dim for dim in range(num_dims) if cardinalities[dim] >= 2]
    if len(usable) < condition_arity + 1:
        raise WorkloadError(
            "not enough dimensions with cardinality >= 2 to build dependence rules"
        )
    rng = random.Random(seed)
    # Alternate usable dimensions between the target pool and the condition pool.
    target_pool = usable[0::2]
    condition_pool = usable[1::2]
    if len(condition_pool) < condition_arity:
        condition_pool, target_pool = usable[:condition_arity], usable[condition_arity:]
    if not target_pool or len(condition_pool) < condition_arity:
        raise WorkloadError("cannot split dimensions into condition and target pools")
    forced_value = {dim: rng.randrange(cardinalities[dim]) for dim in target_pool}

    rules: List[DependenceRule] = []
    score = 0.0
    seen: set = set()
    attempts = 0
    while score < target_score and attempts < 100_000:
        attempts += 1
        condition_dims = rng.sample(condition_pool, condition_arity)
        target_dim = rng.choice(target_pool)
        condition = tuple(
            (dim, rng.randrange(min(cardinalities[dim], 4)))
            for dim in sorted(condition_dims)
        )
        rule = DependenceRule(condition, target_dim, forced_value[target_dim])
        key = (rule.condition, rule.target_dim)
        if key in seen:
            continue
        seen.add(key)
        power = rule_pruning_power(rule, cardinalities)
        if power >= 1.0:
            continue
        rules.append(rule)
        score += -math.log(1.0 - power)
    if score < target_score:
        raise WorkloadError(
            f"could not reach dependence score {target_score} "
            f"(got {score:.3f} with {len(rules)} rules)"
        )
    return rules


def measure_functional_dependences(
    rows: Sequence[Sequence[int]], rules: Sequence[DependenceRule]
) -> Dict[DependenceRule, float]:
    """Fraction of matching tuples that satisfy each rule (for tests/reports)."""
    results: Dict[DependenceRule, float] = {}
    for rule in rules:
        matching = [row for row in rows if rule.matches(row)]
        if not matching:
            results[rule] = 1.0
            continue
        holds = sum(1 for row in matching if row[rule.target_dim] == rule.target_value)
        results[rule] = holds / len(matching)
    return results
