"""Seeded value samplers used by the synthetic data generators.

The paper's synthetic workloads are parameterised by a per-dimension
cardinality ``C`` and a Zipf skew ``S``: ``S = 0`` draws values uniformly,
larger ``S`` concentrates probability mass on the low-indexed values.  This
module provides a small, dependency-free sampler for that family of
distributions, driven by :class:`random.Random` so every dataset is
reproducible from its seed.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Sequence


class ZipfSampler:
    """Draw values from ``{0, ..., cardinality-1}`` with Zipf exponent ``skew``.

    With ``skew == 0`` the distribution is uniform; as ``skew`` grows the
    probability of value ``v`` becomes proportional to ``1 / (v + 1) ** skew``
    (the standard Zipf-Mandelbrot form used in cube-computation papers).
    """

    def __init__(self, cardinality: int, skew: float, rng: random.Random) -> None:
        if cardinality < 1:
            raise ValueError(f"cardinality must be >= 1, got {cardinality}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        self.cardinality = cardinality
        self.skew = skew
        self._rng = rng
        self._cdf = self._build_cdf(cardinality, skew)

    @staticmethod
    def _build_cdf(cardinality: int, skew: float) -> List[float]:
        weights = [1.0 / ((value + 1) ** skew) for value in range(cardinality)]
        total = sum(weights)
        cdf: List[float] = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight / total
            cdf.append(cumulative)
        cdf[-1] = 1.0
        return cdf

    def sample(self) -> int:
        """Draw one value."""
        if self.cardinality == 1:
            return 0
        if self.skew == 0:
            return self._rng.randrange(self.cardinality)
        return bisect_left(self._cdf, self._rng.random())

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` independent values."""
        return [self.sample() for _ in range(count)]


def make_samplers(
    cardinalities: Sequence[int], skews: Sequence[float], seed: int
) -> List[ZipfSampler]:
    """One sampler per dimension, each with its own derived random stream.

    Separate streams keep every dimension's draw sequence independent of the
    other dimensions' parameters, so changing one dimension's cardinality does
    not reshuffle the rest of the dataset.
    """
    if len(cardinalities) != len(skews):
        raise ValueError("cardinalities and skews must have the same length")
    samplers = []
    for index, (cardinality, skew) in enumerate(zip(cardinalities, skews)):
        rng = random.Random(f"{seed}/dim{index}")
        samplers.append(ZipfSampler(cardinality, skew, rng))
    return samplers
