"""Synthetic workload generator matching the paper's evaluation parameters.

Every synthetic experiment of the paper is described by the tuple
``(T, D, C, S, M)`` — number of tuples, dimensions, per-dimension cardinality,
Zipf skew, and iceberg ``min_sup`` — optionally augmented with a dependence
score ``R`` (Section 5.3).  :class:`SyntheticConfig` captures those knobs
(plus a seed) and :func:`generate_relation` turns a config into a
:class:`repro.core.relation.Relation`.

The generators are deterministic given the seed, so benchmark runs and tests
reproduce byte-identical datasets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..core.errors import WorkloadError
from ..core.relation import Relation
from .dependence import DependenceRule, apply_rules, dependence_score, plan_rules
from .distributions import make_samplers


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic dataset.

    Attributes
    ----------
    num_tuples:
        ``T`` — base-table size.
    cardinalities:
        Per-dimension cardinality; use :meth:`uniform` for the common case of
        a single shared ``C``.
    skews:
        Per-dimension Zipf skew ``S`` (``0`` = uniform).
    dependence:
        Target dependence score ``R``; ``0`` adds no rules.
    dependence_rule_arity:
        Number of condition dimensions per generated dependence rule.
    seed:
        Seed for the whole dataset (values and rule planning).
    num_measures:
        Number of synthetic numeric measure columns (uniform in ``[0, 100)``).
    """

    num_tuples: int
    cardinalities: Tuple[int, ...]
    skews: Tuple[float, ...]
    dependence: float = 0.0
    dependence_rule_arity: int = 1
    seed: int = 1
    num_measures: int = 0

    @classmethod
    def uniform(
        cls,
        num_tuples: int,
        num_dims: int,
        cardinality: int,
        skew: float = 0.0,
        dependence: float = 0.0,
        seed: int = 1,
        num_measures: int = 0,
    ) -> "SyntheticConfig":
        """The paper's usual setting: every dimension shares ``C`` and ``S``."""
        return cls(
            num_tuples=num_tuples,
            cardinalities=(cardinality,) * num_dims,
            skews=(float(skew),) * num_dims,
            dependence=dependence,
            seed=seed,
            num_measures=num_measures,
        )

    def __post_init__(self) -> None:
        if self.num_tuples < 1:
            raise WorkloadError("num_tuples must be >= 1")
        if len(self.cardinalities) != len(self.skews):
            raise WorkloadError("cardinalities and skews must have the same length")
        if not self.cardinalities:
            raise WorkloadError("at least one dimension is required")

    @property
    def num_dims(self) -> int:
        return len(self.cardinalities)

    def describe(self) -> str:
        """One-line description used in benchmark reports."""
        cards = set(self.cardinalities)
        card_text = str(next(iter(cards))) if len(cards) == 1 else str(self.cardinalities)
        skews = set(self.skews)
        skew_text = str(next(iter(skews))) if len(skews) == 1 else str(self.skews)
        text = (
            f"T={self.num_tuples} D={self.num_dims} C={card_text} S={skew_text}"
        )
        if self.dependence:
            text += f" R={self.dependence}"
        return text


def generate_rows(config: SyntheticConfig) -> Tuple[List[List[int]], List[DependenceRule]]:
    """Generate the raw (mutable) rows plus the dependence rules that shaped them."""
    samplers = make_samplers(config.cardinalities, config.skews, config.seed)
    rows = [
        [sampler.sample() for sampler in samplers] for _ in range(config.num_tuples)
    ]
    rules: List[DependenceRule] = []
    if config.dependence > 0:
        rules = plan_rules(
            config.cardinalities,
            config.dependence,
            seed=config.seed,
            condition_arity=config.dependence_rule_arity,
        )
        apply_rules(rows, rules)
    return rows, rules


def generate_relation(config: SyntheticConfig) -> Relation:
    """Generate the :class:`Relation` described by ``config``."""
    rows, _rules = generate_rows(config)
    columns = [[row[dim] for row in rows] for dim in range(config.num_dims)]
    measures = {}
    if config.num_measures:
        rng = random.Random(f"{config.seed}/measures")
        for index in range(config.num_measures):
            measures[f"m{index}"] = [rng.uniform(0, 100) for _ in range(config.num_tuples)]
    names = [f"d{dim}" for dim in range(config.num_dims)]
    return Relation.from_columns(columns, names, measures)


def generate_relation_with_rules(
    config: SyntheticConfig,
) -> Tuple[Relation, List[DependenceRule], float]:
    """Like :func:`generate_relation`, also returning the rules and achieved ``R``."""
    rows, rules = generate_rows(config)
    columns = [[row[dim] for row in rows] for dim in range(config.num_dims)]
    names = [f"d{dim}" for dim in range(config.num_dims)]
    relation = Relation.from_columns(columns, names)
    achieved = dependence_score(rules, config.cardinalities) if rules else 0.0
    return relation, rules, achieved


def mixed_cardinality_config(
    num_tuples: int,
    low_cardinality: int = 10,
    high_cardinality: int = 1000,
    seed: int = 1,
) -> SyntheticConfig:
    """The Figure 18 workload: half low-cardinality, half high-cardinality dimensions,
    with skews 0..3 repeated across each half."""
    cardinalities = (low_cardinality,) * 4 + (high_cardinality,) * 4
    skews = (0.0, 1.0, 2.0, 3.0, 0.0, 1.0, 2.0, 3.0)
    return SyntheticConfig(
        num_tuples=num_tuples,
        cardinalities=cardinalities,
        skews=skews,
        seed=seed,
    )
