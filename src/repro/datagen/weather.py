"""Weather-trace simulator: a stand-in for the paper's SEP83L.DAT dataset.

The paper's real-data experiments (Figures 7, 11, 16, 17) use the 1983
synoptic cloud reports — 1,002,752 tuples over 8 dimensions with published
cardinalities (year-month-day-hour 238, latitude 5260, longitude 6187, station
number 6515, present weather 100, change code 110, solar altitude 1535,
relative lunar illuminance 155).  The raw file is not redistributable here, so
this module generates a synthetic trace that preserves the two properties the
evaluation actually depends on:

* **skew** — station-driven attributes follow Zipf-like distributions (a few
  stations and weather codes dominate), which is what makes the weather data
  "dense in places" for the Star family;
* **dependence** — several attributes are functions (or near-functions) of
  others: a station fixes its latitude/longitude, the solar altitude is
  determined by the hour band and latitude band, the lunar illuminance by the
  day, and the change code correlates with the present weather.  These
  dependences are what keeps closed cells alive under iceberg pruning
  (Sections 5.3-5.4).

Cardinalities are scaled down proportionally (they are configurable) because
the Python reproduction runs at thousands, not millions, of tuples; the
dimension *order* and the relative cardinality ranking match the original.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..core.relation import Relation

#: Dimension names in the order used by the paper's experiments.
WEATHER_DIMENSIONS = (
    "hour",        # year month day hour
    "latitude",
    "longitude",
    "station",
    "weather",     # present weather
    "change_code",
    "solar_altitude",
    "lunar_illuminance",
)


@dataclass(frozen=True)
class WeatherConfig:
    """Scaled-down shape of the synthetic weather trace.

    The default cardinalities keep the original ranking
    (station ~ longitude ~ latitude >> solar altitude > hour > lunar > change
    code ~ weather) at roughly 1/40 scale.
    """

    num_tuples: int = 2000
    num_stations: int = 160
    num_hours: int = 48
    num_latitudes: int = 120
    num_longitudes: int = 150
    num_weather_codes: int = 25
    num_change_codes: int = 27
    num_solar_bands: int = 38
    num_lunar_bands: int = 30
    seed: int = 42


def generate_weather_relation(config: WeatherConfig = WeatherConfig()) -> Relation:
    """Generate the synthetic weather relation.

    The generative process: a reporting *station* is drawn from a Zipf-like
    distribution (busy stations report far more often); the station
    deterministically fixes latitude and longitude; an observation *hour* is
    drawn per report; solar altitude is a deterministic function of (hour
    band, latitude band); lunar illuminance is a function of the day part of
    the hour dimension; the present-weather code is drawn with skew and the
    change code is a noisy function of it.
    """
    rng = random.Random(config.seed)

    station_lat = [rng.randrange(config.num_latitudes) for _ in range(config.num_stations)]
    station_lon = [rng.randrange(config.num_longitudes) for _ in range(config.num_stations)]

    station_weights = [1.0 / (rank + 1) for rank in range(config.num_stations)]
    weather_weights = [1.0 / (rank + 1) ** 1.5 for rank in range(config.num_weather_codes)]

    columns: Dict[str, List[int]] = {name: [] for name in WEATHER_DIMENSIONS}
    for _ in range(config.num_tuples):
        station = rng.choices(range(config.num_stations), weights=station_weights)[0]
        hour = rng.randrange(config.num_hours)
        latitude = station_lat[station]
        longitude = station_lon[station]
        weather = rng.choices(range(config.num_weather_codes), weights=weather_weights)[0]

        hour_band = hour % 24 // 3
        lat_band = latitude * 8 // max(config.num_latitudes, 1)
        solar = (hour_band * 8 + lat_band) % config.num_solar_bands

        day = hour // 24
        lunar = (day * 7) % config.num_lunar_bands

        change = (weather + (0 if rng.random() < 0.8 else rng.randrange(3))) % config.num_change_codes

        columns["hour"].append(hour)
        columns["latitude"].append(latitude)
        columns["longitude"].append(longitude)
        columns["station"].append(station)
        columns["weather"].append(weather)
        columns["change_code"].append(change)
        columns["solar_altitude"].append(solar)
        columns["lunar_illuminance"].append(lunar)

    ordered = [columns[name] for name in WEATHER_DIMENSIONS]
    return Relation.from_columns(ordered, WEATHER_DIMENSIONS)


def weather_subset(relation: Relation, num_dims: int) -> Relation:
    """The first ``num_dims`` weather dimensions (the paper's Figure 7 sweep)."""
    return relation.project(list(range(num_dims)))
