"""Incremental cube maintenance: merge delta cubes instead of recomputing.

The serving stack (:mod:`repro.query`, :mod:`repro.session`) materialises a
closed cube once and answers every lattice query from it.  This package makes
that cube *maintainable* under appended fact rows:

* :mod:`repro.incremental.merge` — fold a delta closed cube into a base
  closed cube with **aggregation-based closedness repair**: the paper's
  closedness measure (Definitions 6–9) is exactly reconstructible for closed
  cells (``ClosedMask == fixed_mask``), so merged cells are re-checked — and
  non-closed survivors collapsed onto their closed covers — through the same
  Lemma 3 merge algebra the in-run algorithms use, without re-reading a
  single tuple list.
* :mod:`repro.incremental.maintainer` — the orchestration the session layer
  uses: append rows to the relation (growing dictionaries append-only), plan
  and run a delta cube over only the new tuples, merge it in, update the
  live closure index, and invalidate exactly the cached answers the changed
  cells can affect.  Two switches adapt it to concurrent serving:
  ``copy_on_publish`` (merge into a clone, land atomically) and ``executor``
  (offload the cubing compute).
* :mod:`repro.incremental.parallel` — the picklable work units and the
  ``spawn`` process pool (:func:`create_refresh_pool`) that let delta cubes
  and partition recomputes run outside the serving process's GIL.

See ``docs/PAPER_NOTES.md`` ("Closed-cube merge needs closedness repair")
for why the merge is correct and why aggregation-based checking makes it
cheap.
"""

from .maintainer import MAX_DELTA_DIMS, AppendReport, CubeMaintainer
from .merge import MergeReport, merge_closed_cubes, support_generalisations
from .parallel import (
    CubingTask,
    CubingTaskResult,
    create_refresh_pool,
    run_cubing_task,
)

__all__ = [
    "AppendReport",
    "CubeMaintainer",
    "MAX_DELTA_DIMS",
    "MergeReport",
    "merge_closed_cubes",
    "support_generalisations",
    "CubingTask",
    "CubingTaskResult",
    "create_refresh_pool",
    "run_cubing_task",
]
