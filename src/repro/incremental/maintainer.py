"""Append orchestration: delta-compute → merge → index update → cache repair.

:class:`CubeMaintainer` is the engine room behind
:meth:`repro.session.serving.ServingCube.append`.  Given freshly appended raw
rows it:

1. splits and appends them to the serving relation
   (:meth:`~repro.core.relation.Relation.append_rows` — value dictionaries
   grow append-only, so every existing code stays valid),
2. plans a cubing algorithm for the *delta window* only (the same Figure 15
   planner the build used, consulted with the delta's shape — a delta is
   often much denser or smaller than the base, so its best engine differs),
3. computes the delta closed cube over just the appended tuples
   (:meth:`~repro.algorithms.base.CubingAlgorithm.run_delta`),
4. merges it into the served cube with aggregation-based closedness repair
   (:func:`repro.incremental.merge.merge_closed_cubes`), which keeps the
   engine's live closure index current in place, and
5. invalidates exactly the cached answers the changed cells can affect —
   both the engine's encoded answer cache and the session's decoded cache.

When the incremental path cannot be exact it degrades explicitly rather than
approximately: iceberg cubes (``min_sup > 1``) and non-closed cubes fall back
to a full recompute (the cube has discarded information a delta could
resurrect), partitioned cubes take the per-partition refresh path
(:meth:`repro.storage.partition.PartitionedCubeComputer.refresh`), and
relations beyond :data:`MAX_DELTA_DIMS` dimensions recompute because the
merge's candidate enumeration is exponential in dimensionality in the worst
case.  The chosen path is reported, never silent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from ..algorithms.base import CubingOptions, get_algorithm
from ..core.errors import IncrementalError, MeasureError
from ..core.measures import MeasureSet
from ..query.engine import QueryEngine, invalidate_answers
from .merge import MergeReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session.serving import ServingCube

#: Beyond this many dimensions the merge's candidate enumeration (all cells
#: with delta support — worst case exponential in D) loses to recomputation;
#: appends fall back to a full rebuild.
MAX_DELTA_DIMS = 12


@dataclass(frozen=True)
class AppendReport:
    """How one :meth:`ServingCube.append` call was served."""

    #: Number of fact rows appended.
    appended_rows: int
    #: ``"delta-merge"``, ``"partition-refresh"``, ``"full-recompute"``, or
    #: ``"no-op"`` (empty input).
    mode: str
    #: Algorithm that computed the delta (or the rebuild).
    algorithm: str
    #: Wall-clock seconds for the whole append.
    elapsed_seconds: float
    #: Cached answers dropped by targeted invalidation (encoded + decoded).
    invalidated_answers: int = 0
    #: Merge bookkeeping for the delta-merge path.
    merge: Optional[MergeReport] = None
    #: Partition values recomputed by the partition-refresh path.
    refreshed_partitions: Optional[Tuple[int, ...]] = None

    def describe(self) -> str:
        lines = [
            f"append({self.appended_rows} rows) served by {self.mode} "
            f"in {self.elapsed_seconds:.4f}s (algorithm {self.algorithm!r})"
        ]
        if self.merge is not None:
            lines.append("-> " + self.merge.describe())
        if self.refreshed_partitions is not None:
            lines.append(
                f"-> recomputed partitions {sorted(self.refreshed_partitions)!r}"
            )
        lines.append(f"-> invalidated {self.invalidated_answers} cached answers")
        return "\n".join(lines)


class CubeMaintainer:
    """Applies appends to one :class:`~repro.session.serving.ServingCube`."""

    def __init__(self, serving: "ServingCube") -> None:
        self.serving = serving

    # ------------------------------------------------------------------ #

    def append(self, rows: Sequence[object]) -> AppendReport:
        serving = self.serving
        start = time.perf_counter()
        if not serving.config_known:
            # Guessing min_sup / closed / measures and maintaining under the
            # guess would corrupt the cube silently; refuse before touching
            # the relation.
            raise IncrementalError(
                "this ServingCube was constructed without a ServingConfig, so "
                "maintenance cannot know how its cube was computed; build it "
                "through CubeSession (or pass config=...) to enable append()"
            )
        if not rows:
            return AppendReport(0, "no-op", serving.algorithm, 0.0)
        dim_rows, measure_values = serving.schema.split_rows(rows)
        start_tid, end_tid = serving.relation.append_rows(dim_rows, measure_values)
        if end_tid == start_tid:
            return AppendReport(0, "no-op", serving.algorithm, 0.0)
        if serving.config.partitioned:
            return self._refresh_partitions(start_tid, start)
        if self._delta_eligible():
            try:
                return self._delta_merge(start_tid, start)
            except (IncrementalError, MeasureError):
                # Exactness over cleverness: anything the merge cannot prove
                # (missing rep_tids, non-reconstructible measures) recomputes.
                pass
        # refresh() clears both answer caches; count them first so the
        # report's "encoded + decoded" contract holds in every mode.
        invalidated = len(serving.engine.cache) + len(serving._decoded)
        serving.refresh()
        return AppendReport(
            appended_rows=end_tid - start_tid,
            mode="full-recompute",
            algorithm=serving.algorithm,
            elapsed_seconds=time.perf_counter() - start,
            invalidated_answers=invalidated,
        )

    # ------------------------------------------------------------------ #

    def _delta_eligible(self) -> bool:
        config = self.serving.config
        return (
            config.closed
            and config.min_sup == 1
            and isinstance(self.serving.engine, QueryEngine)
            and self.serving.relation.num_dimensions <= MAX_DELTA_DIMS
        )

    def _delta_merge(self, start_tid: int, started: float) -> AppendReport:
        from ..session.planner import plan_algorithm

        serving = self.serving
        relation = serving.relation
        config = serving.config
        measures = MeasureSet(tuple(config.measures))
        delta_relation = relation.select(range(start_tid, relation.num_tuples))
        plan = plan_algorithm(
            delta_relation, min_sup=1, closed=True, with_measures=bool(measures)
        )
        options = CubingOptions(
            min_sup=1,
            closed=True,
            measures=measures,
            dimension_order=config.dimension_order,
        )
        delta_result = get_algorithm(plan.algorithm, options).run_delta(
            relation, start_tid, delta_relation=delta_relation
        )
        report = serving.cube.merge(delta_result.cube, relation, measures=measures)
        # The engine shares the cube's live closure index, so the index is
        # already current; only derived caches need repair — both at once,
        # sharing one probe index over the changed cells.
        invalidated = invalidate_answers(
            [serving.engine.cache, serving._decoded],
            relation.num_dimensions,
            report.changed_cells(),
        )
        return AppendReport(
            appended_rows=relation.num_tuples - start_tid,
            mode="delta-merge",
            algorithm=delta_result.algorithm,
            elapsed_seconds=time.perf_counter() - started,
            invalidated_answers=invalidated,
            merge=report,
        )

    def _refresh_partitions(self, start_tid: int, started: float) -> AppendReport:
        from ..storage.partition import PartitionedCubeComputer

        serving = self.serving
        relation = serving.relation
        config = serving.config
        partition_dim = serving.engine.partition_dim
        computer = PartitionedCubeComputer(
            algorithm=serving.algorithm,
            min_sup=config.min_sup,
            closed=config.closed,
            dimension_order=config.dimension_order,
        )
        cube, part_report = computer.refresh(
            relation, serving.cube, partition_dim, start_tid
        )
        changed_values = sorted(part_report.refreshed_partitions or ())
        serving.cube = cube
        serving.partition_report = part_report
        # engine.refresh clears the encoded answer cache; count both caches
        # so the report's "encoded + decoded" contract holds.
        invalidated = len(serving.engine.cache) + len(serving._decoded)
        serving.engine.refresh(cube, changed_values)
        serving._decoded.clear()
        return AppendReport(
            appended_rows=relation.num_tuples - start_tid,
            mode="partition-refresh",
            algorithm=serving.algorithm,
            elapsed_seconds=time.perf_counter() - started,
            invalidated_answers=invalidated,
            refreshed_partitions=tuple(changed_values),
        )
