"""Append orchestration: delta-compute → merge → index update → cache repair.

:class:`CubeMaintainer` is the engine room behind
:meth:`repro.session.serving.ServingCube.append`.  Given freshly appended raw
rows it:

1. splits and appends them to the serving relation
   (:meth:`~repro.core.relation.Relation.append_rows` — value dictionaries
   grow append-only, so every existing code stays valid),
2. plans a cubing algorithm for the *delta window* only (the same Figure 15
   planner the build used, consulted with the delta's shape — a delta is
   often much denser or smaller than the base, so its best engine differs),
3. computes the delta closed cube over just the appended tuples
   (:meth:`~repro.algorithms.base.CubingAlgorithm.run_delta`),
4. merges it into the served cube with aggregation-based closedness repair
   (:func:`repro.incremental.merge.merge_closed_cubes`), which keeps the
   engine's live closure index current in place, and
5. invalidates exactly the cached answers the changed cells can affect —
   both the engine's encoded answer cache and the session's decoded cache.

When the incremental path cannot be exact it degrades explicitly rather than
approximately: iceberg cubes (``min_sup > 1``) and non-closed cubes fall back
to a full recompute (the cube has discarded information a delta could
resurrect), partitioned cubes take the per-partition refresh path
(:meth:`repro.storage.partition.PartitionedCubeComputer.refresh`), and
relations beyond :data:`MAX_DELTA_DIMS` dimensions recompute because the
merge's candidate enumeration is exponential in dimensionality in the worst
case.  The chosen path is reported, never silent.

Two orthogonal switches adapt the maintainer to concurrent serving
(:mod:`repro.server`):

* ``copy_on_publish`` merges into a private clone of the served cube and
  makes the result visible with one atomic
  :meth:`~repro.query.engine.QueryEngine.publish`, so queries running in
  other threads never observe a half-applied merge (the default in-place
  merge mutates shared cells and is only safe single-threaded);
* ``executor`` ships the cubing work (the delta cube, the per-partition
  recomputes) to a :mod:`concurrent.futures` executor — with the process
  pool from :func:`repro.incremental.parallel.create_refresh_pool`, an
  append's CPU burn escapes the GIL and the serving threads entirely.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

from ..algorithms.base import CubingOptions, get_algorithm
from ..core.cube import CubeResult
from ..core.errors import IncrementalError, MeasureError
from ..core.measures import MeasureSet
from ..query.engine import PartitionedQueryEngine, QueryEngine, invalidate_answers
from .merge import MergeReport
from .parallel import (
    MergeTask,
    WorkerCacheMiss,
    compute_delta_cube,
    merge_state_token,
    picklable_order,
    run_merge_task,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session.serving import ServingCube

#: Beyond this many dimensions the merge's candidate enumeration (all cells
#: with delta support — worst case exponential in D) loses to recomputation;
#: appends fall back to a full rebuild.
MAX_DELTA_DIMS = 12

#: Beyond this many materialised cells the remote-merge offload stops paying:
#: a cold task pickles the whole base cube plus the grown relation to the
#: worker, an O(total data) per-append cost that would silently grow with
#: the cube.  The worker-resident cache usually avoids the resend (a warm
#: append ships delta-only), but the cold-path cost still bounds the mode;
#: larger cubes offload the delta *compute* (O(delta) payload) and merge in
#: process.
REMOTE_MERGE_MAX_CELLS = 200_000

#: Candidates (and apply-phase upserts) processed between scheduler yields
#: by the chunked copy-on-publish merge.  At ~10–30 µs per candidate the
#: default keeps each GIL-holding stretch well under 100 ms.
MERGE_BATCH_SIZE = 2048


def _yield_gil() -> None:
    """Hand the GIL (and thereby the event loop's thread) a turn mid-merge."""
    time.sleep(0)


@dataclass(frozen=True)
class AppendReport:
    """How one :meth:`ServingCube.append` call was served."""

    #: Number of fact rows appended.
    appended_rows: int
    #: ``"delta-merge"``, ``"partition-refresh"``, ``"full-recompute"``, or
    #: ``"no-op"`` (empty input).
    mode: str
    #: Algorithm that computed the delta (or the rebuild).
    algorithm: str
    #: Wall-clock seconds for the whole append.
    elapsed_seconds: float
    #: Cached answers dropped by targeted invalidation (encoded answers,
    #: cached slices, and decoded answers combined).
    invalidated_answers: int = 0
    #: Merge bookkeeping for the delta-merge path.
    merge: Optional[MergeReport] = None
    #: Partition values recomputed by the partition-refresh path.
    refreshed_partitions: Optional[Tuple[int, ...]] = None
    #: How the remote-merge path shipped its payload (``"delta-send"``,
    #: ``"full-send (cold)"``, ``"full-send (miss)"``); ``None`` off that path.
    merge_cache: Optional[str] = None

    def describe(self) -> str:
        lines = [
            f"append({self.appended_rows} rows) served by {self.mode} "
            f"in {self.elapsed_seconds:.4f}s (algorithm {self.algorithm!r})"
        ]
        if self.merge is not None:
            lines.append("-> " + self.merge.describe())
        if self.merge_cache is not None:
            lines.append(f"-> remote merge payload: {self.merge_cache}")
        if self.refreshed_partitions is not None:
            lines.append(
                f"-> recomputed partitions {sorted(self.refreshed_partitions)!r}"
            )
        lines.append(f"-> invalidated {self.invalidated_answers} cached answers")
        return "\n".join(lines)


class CubeMaintainer:
    """Applies appends to one :class:`~repro.session.serving.ServingCube`."""

    def __init__(
        self,
        serving: "ServingCube",
        copy_on_publish: bool = False,
        executor: Optional[Executor] = None,
        merge_batch_size: Optional[int] = None,
        merge_yield: Optional[Callable[[], None]] = None,
    ) -> None:
        self.serving = serving
        self.copy_on_publish = copy_on_publish
        self.executor = executor
        # Copy-on-publish merges run while query threads are live, so they
        # default to chunked evaluation with GIL yields between batches; the
        # single-threaded in-place path stays one uninterrupted pass.
        if merge_batch_size is None and copy_on_publish:
            merge_batch_size = MERGE_BATCH_SIZE
        if merge_yield is None and copy_on_publish:
            merge_yield = _yield_gil
        self.merge_batch_size = merge_batch_size
        self.merge_yield = merge_yield

    # ------------------------------------------------------------------ #

    def append(self, rows: Sequence[object]) -> AppendReport:
        serving = self.serving
        start = time.perf_counter()
        if not serving.config_known:
            # Guessing min_sup / closed / measures and maintaining under the
            # guess would corrupt the cube silently; refuse before touching
            # the relation.
            raise IncrementalError(
                "this ServingCube was constructed without a ServingConfig, so "
                "maintenance cannot know how its cube was computed; build it "
                "through CubeSession (or pass config=...) to enable append()"
            )
        if not rows:
            return AppendReport(0, "no-op", serving.algorithm, 0.0)
        dim_rows, measure_values = serving.schema.split_rows(rows)
        start_tid, end_tid = serving.relation.append_rows(dim_rows, measure_values)
        if end_tid == start_tid:
            return AppendReport(0, "no-op", serving.algorithm, 0.0)
        if serving.config.partitioned:
            return self._refresh_partitions(start_tid, start)
        if self._delta_eligible():
            try:
                return self._delta_merge(start_tid, start)
            except (IncrementalError, MeasureError):
                # Exactness over cleverness: anything the merge cannot prove
                # (missing rep_tids, non-reconstructible measures) recomputes.
                pass
        # refresh() clears both answer caches; count them first so the
        # report's "encoded + decoded" contract holds in every mode.
        invalidated = (len(serving.engine.cache) + len(serving.engine.slice_cache)
                       + len(serving._decoded))
        serving.refresh()
        return AppendReport(
            appended_rows=end_tid - start_tid,
            mode="full-recompute",
            algorithm=serving.algorithm,
            elapsed_seconds=time.perf_counter() - start,
            invalidated_answers=invalidated,
        )

    # ------------------------------------------------------------------ #

    def _delta_eligible(self) -> bool:
        config = self.serving.config
        return (
            config.closed
            and config.min_sup == 1
            and isinstance(self.serving.engine, QueryEngine)
            and self.serving.relation.num_dimensions <= MAX_DELTA_DIMS
        )

    def _merged_rollups(self, relation) -> Optional[dict]:
        """The next generation of rollup tables, derived from the same delta.

        Each installed table folds in exactly its own uncovered window (a
        table's ``covered_tuples``, not this append's ``start_tid`` — tables
        installed mid-stream stay exact), with the same chunked-yield
        discipline as the cube merge.  ``None`` when no router is installed,
        so the paths below can skip the rollup swap entirely.
        """
        engine = self.serving.engine
        router = getattr(engine, "router", None)
        if router is None or not router.tables:
            return None
        return {
            grain: table.merged_delta(
                relation,
                batch_size=self.merge_batch_size,
                yield_between_batches=self.merge_yield,
            )
            for grain, table in router.tables.items()
        }

    def _delta_merge(self, start_tid: int, started: float) -> AppendReport:
        from ..session.planner import plan_algorithm

        serving = self.serving
        relation = serving.relation
        config = serving.config
        measures = MeasureSet(tuple(config.measures))
        delta_relation = relation.select(range(start_tid, relation.num_tuples))
        plan = plan_algorithm(
            delta_relation, min_sup=1, closed=True, with_measures=bool(measures)
        )
        if (
            self.copy_on_publish
            and self.executor is not None
            and picklable_order(config.dimension_order)
            and len(serving.cube) <= REMOTE_MERGE_MAX_CELLS
        ):
            prepared = self._remote_merge(
                relation, start_tid, plan.algorithm, started
            )
            if prepared is not None:
                return prepared
        delta_cube, delta_algorithm = self._compute_delta(
            relation, delta_relation, start_tid, plan.algorithm, measures
        )
        if self.copy_on_publish:
            # Merge into a private clone; queries keep reading the published
            # version until the atomic swap below.  Closedness makes the
            # clone cheap: it is proportional to the closed cube.
            new_cube = serving.cube.clone()
            report = new_cube.merge(
                delta_cube,
                relation,
                measures=measures,
                batch_size=self.merge_batch_size,
                yield_between_batches=self.merge_yield,
            )
            new_index = new_cube.closure_index()
            invalidated = serving.engine.publish(
                new_cube,
                new_index,
                changed=report.changed_cells(),
                extra_caches=[serving._decoded],
                rollups=self._merged_rollups(relation),
            )
            serving.cube = new_cube
        else:
            report = serving.cube.merge(delta_cube, relation, measures=measures)
            # The engine shares the cube's live closure index, so the index
            # is already current; only derived caches need repair — the
            # engine's point and slice caches plus the decoded layer.
            changed = report.changed_cells()
            invalidated = serving.engine.invalidate(changed)
            invalidated += invalidate_answers(
                serving._decoded, relation.num_dimensions, changed
            )
            new_tables = self._merged_rollups(relation)
            if new_tables is not None:
                # In-place mode is single-threaded by contract, so a direct
                # swap (no publish section) is sufficient here.
                serving.engine.router.tables = new_tables
            serving.engine.version += 1
        return AppendReport(
            appended_rows=relation.num_tuples - start_tid,
            mode="delta-merge",
            algorithm=delta_algorithm,
            elapsed_seconds=time.perf_counter() - started,
            invalidated_answers=invalidated,
            merge=report,
        )

    def _remote_merge(
        self,
        relation,
        start_tid: int,
        algorithm: str,
        started: float,
    ) -> Optional[AppendReport]:
        """Prepare the whole merge in the executor, publish a clone here.

        The worker computes the delta cube *and* runs closedness repair — the
        two CPU-heavy phases — so the serving process only replays the
        returned changed cells onto a clone and swaps it in (tens of
        milliseconds that do not contend with query threads for long).
        Returns ``None`` on executor infrastructure failure (broken pool,
        pickling), sending the caller down the in-process paths; exactness
        errors raised by the merge itself propagate so the usual
        full-recompute fallback fires.

        Worker-resident merge state: the base cube's cell list only crosses
        the process boundary cold.  Each task asks the worker to retain the
        post-merge cube under ``(serving token, covered tuples)``; once one
        append has primed a worker, subsequent tasks ship delta-only (a
        ``cache_key`` instead of the cells) and fall back to a one-shot full
        resend when :class:`WorkerCacheMiss` says the pool routed the task
        to an unprimed worker.
        """
        serving = self.serving
        config = serving.config
        token = merge_state_token(serving)
        cache_key = (token, start_tid)
        store_key = (token, relation.num_tuples)
        base_task = dict(
            relation=relation,
            start_tid=start_tid,
            algorithm=algorithm,
            measures=tuple(config.measures),
            dimension_order=config.dimension_order,
            cache_key=cache_key,
            store_key=store_key,
        )
        outcome = None
        payload_mode = "full-send (cold)"
        cache_stats = serving.merge_cache_stats
        if getattr(serving, "_merge_state_hint", None) == cache_key:
            # Some worker holds the post-merge cube of the previous append;
            # try the delta-only payload first.
            try:
                outcome = self.executor.submit(
                    run_merge_task, MergeTask(base_cells=None, **base_task)
                ).result()
                payload_mode = "delta-send"
                cache_stats["delta_sends"] += 1
            except WorkerCacheMiss:
                outcome = None
                payload_mode = "full-send (miss)"
                cache_stats["misses"] += 1
            except (IncrementalError, MeasureError):
                raise
            except Exception:
                return None
        if outcome is None:
            task = MergeTask(
                base_cells=[
                    (cell, stats.count, dict(stats.measures), stats.rep_tid)
                    for cell, stats in serving.cube.items()
                ],
                **base_task,
            )
            try:
                outcome = self.executor.submit(run_merge_task, task).result()
                cache_stats["full_sends"] += 1
            except (IncrementalError, MeasureError):
                raise
            except Exception:
                return None
        serving._merge_state_hint = store_key
        new_cube = serving.cube.clone()
        for cell, count, cell_measures, rep_tid in outcome.changed:
            new_cube.upsert(cell, count, cell_measures, rep_tid)
        new_index = new_cube.closure_index()
        # Rollup tables are maintained in process even when the cube merge
        # ran remotely: their delta aggregation is one kernel pass over the
        # append window, far below the cube merge the offload exists for.
        invalidated = serving.engine.publish(
            new_cube,
            new_index,
            changed=outcome.report.changed_cells(),
            extra_caches=[serving._decoded],
            rollups=self._merged_rollups(relation),
        )
        serving.cube = new_cube
        return AppendReport(
            appended_rows=relation.num_tuples - start_tid,
            mode="delta-merge",
            algorithm=outcome.algorithm,
            elapsed_seconds=time.perf_counter() - started,
            invalidated_answers=invalidated,
            merge=outcome.report,
            merge_cache=payload_mode,
        )

    def _compute_delta(
        self,
        relation,
        delta_relation,
        start_tid: int,
        algorithm: str,
        measures: MeasureSet,
    ) -> Tuple[CubeResult, str]:
        """The delta closed cube, offloaded to the executor when possible."""
        config = self.serving.config
        if self.executor is not None and picklable_order(config.dimension_order):
            try:
                cube = compute_delta_cube(
                    self.executor,
                    delta_relation,
                    start_tid,
                    algorithm,
                    measures=tuple(config.measures),
                    dimension_order=config.dimension_order,
                )
                return cube, algorithm
            except (IncrementalError, MeasureError):
                raise
            except Exception:
                # A broken pool or an unpicklable payload must not lose the
                # append: the in-process path below is always available.
                pass
        options = CubingOptions(
            min_sup=1,
            closed=True,
            measures=measures,
            dimension_order=config.dimension_order,
        )
        delta_result = get_algorithm(algorithm, options).run_delta(
            relation, start_tid, delta_relation=delta_relation
        )
        return delta_result.cube, delta_result.algorithm

    def _refresh_partitions(self, start_tid: int, started: float) -> AppendReport:
        from ..storage.partition import PartitionedCubeComputer

        serving = self.serving
        relation = serving.relation
        config = serving.config
        partition_dim = serving.engine.partition_dim
        executor = (
            self.executor
            if self.executor is not None and picklable_order(config.dimension_order)
            else None
        )
        computer = PartitionedCubeComputer(
            algorithm=serving.algorithm,
            min_sup=config.min_sup,
            closed=config.closed,
            dimension_order=config.dimension_order,
        )
        cube, part_report = computer.refresh(
            relation, serving.cube, partition_dim, start_tid, executor=executor
        )
        changed_values = sorted(part_report.refreshed_partitions or ())
        # Count both caches up front so the report's "encoded + decoded"
        # contract holds whichever publish path clears them.
        invalidated = (len(serving.engine.cache) + len(serving.engine.slice_cache)
                       + len(serving._decoded))
        if self.copy_on_publish:
            # A whole replacement engine (shards and indexes built here, off
            # the hot path) published by reference swap; readers finish on
            # the old engine or start on the new one, never in between.
            new_engine = PartitionedQueryEngine(
                cube,
                partition_dim=partition_dim,
                cache_size=config.cache_size,
            )
            new_engine.version = serving.engine.version + 1
            serving.cube = cube
            serving.partition_report = part_report
            serving.engine = new_engine
            serving._decoded.clear()
        else:
            serving.cube = cube
            serving.partition_report = part_report
            serving.engine.refresh(
                cube, changed_values, extra_caches=[serving._decoded]
            )
        return AppendReport(
            appended_rows=relation.num_tuples - start_tid,
            mode="partition-refresh",
            algorithm=serving.algorithm,
            elapsed_seconds=time.perf_counter() - started,
            invalidated_answers=invalidated,
            refreshed_partitions=tuple(changed_values),
        )
