"""Merging closed cubes with aggregation-based closedness repair.

Let ``R1`` be the base relation (already cubed into ``base``) and ``R2`` a
delta of appended tuples (cubed into ``delta``).  Three facts make the closed
cube of ``R1 ∪ R2`` computable from the two materialised cubes alone:

1. **Closed cells survive appends.**  A cell is closed iff no ``*`` dimension
   has a single value shared by all of its tuples; appending tuples can only
   break value-sharing, never create it.  So every cell of ``base`` and every
   cell of ``delta`` is still closed in the union — merge never removes cells,
   it only adds and updates.

2. **The union's new closed cells are meets.**  For a cell ``c`` with support
   on both sides, the union closure fixes dimension ``d`` iff *both* sides'
   closures of ``c`` fix ``d`` to the same value.  Hence every union-closed
   cell with two-sided support is the lattice *meet* (:func:`repro.core.cell.
   meet_cells`) of a base-closed cell and a delta-closed cell — and every
   such cell is a generalisation of some delta cell, which is how the
   candidate set is enumerated (:func:`support_generalisations`).

3. **Closedness states are reconstructible.**  For a closed cell the Closed
   Mask (Definition 7) equals its fixed-dimension mask, and the representative
   tuple id (Definition 6) is stored per cell — so the full closedness
   measure state comes back via :func:`repro.core.closedness.
   closed_cell_state` with no tuple-list access.  Repair is then one
   :meth:`~repro.core.closedness.ClosednessState.merge` (the Lemma 3 algebra)
   per candidate: the merged Closed Mask *is* the union closure — candidates
   that come out non-closed collapse onto their closed cover by construction,
   because the surviving mask bits name exactly the dimensions the cover
   fixes.

The per-candidate cost is two indexed closure lookups plus one O(D) mask
merge; the candidate count is bounded by the number of cells with delta
support.  For the append-maintenance workloads this targets (small deltas
into large bases) that is orders of magnitude cheaper than recomputation —
``benchmarks/bench_incremental.py`` keeps the claim honest.

Both inputs must be *full* closed cubes (``closed=True, min_sup=1``): an
iceberg cube (``min_sup > 1``) has discarded the below-threshold cells a
delta could push over the threshold, so exact maintenance from the cube alone
is impossible — the session layer falls back to recomputation there.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..core.cell import Cell, sort_key
from ..core.cube import CellStats, CubeResult
from ..core.errors import IncrementalError
from ..core.measures import MeasureSet
from ..core.relation import Relation
from ..vector import kernels


@dataclass
class MergeReport:
    """What one :func:`merge_closed_cubes` call did to the base cube."""

    #: Cells newly materialised by the merge (the repaired meets plus
    #: delta-only cells).
    added: List[Cell] = field(default_factory=list)
    #: Pre-existing cells whose statistics grew.
    updated: List[Cell] = field(default_factory=list)
    #: Candidate cells examined (generalisations of delta cells, deduplicated).
    candidates: int = 0
    #: Cells the delta cube contributed.
    delta_cells: int = 0
    #: Base cube size before the merge.
    base_cells_before: int = 0

    def changed_cells(self) -> List[Cell]:
        """Every cell whose aggregate an existing cached answer may reflect."""
        return self.added + self.updated

    def describe(self) -> str:
        return (
            f"merged {self.delta_cells} delta cells into {self.base_cells_before}: "
            f"{len(self.added)} added, {len(self.updated)} updated "
            f"({self.candidates} candidates examined)"
        )


def support_generalisations(cells: Iterable[Cell]) -> Set[Cell]:
    """All generalisations of the given cells, deduplicated.

    Breadth-first over the generalisation lattice, starring out one fixed
    dimension at a time with a visited set — total work is O(result × D)
    rather than O(cells × 2^D), because generalisations shared between input
    cells (which is most of them: every input shares the apex) are visited
    once.  Applied to the cells of a delta cube this enumerates exactly the
    cells of the lattice with delta support: every cell a delta tuple
    aggregates into generalises that tuple's closure.
    """
    seen: Set[Cell] = set(cells)
    queue = deque(seen)
    while queue:
        cell = queue.popleft()
        for dim, value in enumerate(cell):
            if value is None:
                continue
            general = cell[:dim] + (None,) + cell[dim + 1 :]
            if general not in seen:
                seen.add(general)
                queue.append(general)
    return seen


def _global_rep(cell: Cell, stats: CellStats, offset: int) -> int:
    if stats.rep_tid is None:
        raise IncrementalError(
            f"cell {cell!r} carries no representative tuple id; only cubes "
            "computed with rep_tid tracking (the closed algorithms) can be "
            "merged incrementally"
        )
    return stats.rep_tid + offset


def _resolve_measures(
    base: CubeResult, delta: CubeResult, measures: Optional[MeasureSet]
) -> MeasureSet:
    if measures is None:
        measures = base.measure_set if base.measure_set is not None else delta.measure_set
    if measures is None:
        measures = MeasureSet()
    expected = {spec.name for spec in measures.specs}
    for cube in (base, delta):
        # Cells of one cube are homogeneous; checking the first suffices.
        first = next(iter(cube.items()), None)
        if first is not None and set(first[1].measures) != expected:
            raise IncrementalError(
                f"cube cells carry measures {sorted(first[1].measures)} but the "
                f"merge was given specs for {sorted(expected)}; pass the "
                "producing run's MeasureSet (or attach it as "
                "CubeResult.measure_set) so states can be reconstructed"
            )
    return measures


def merge_closed_cubes(
    base: CubeResult,
    delta: CubeResult,
    relation: Relation,
    measures: Optional[MeasureSet] = None,
    delta_tid_offset: int = 0,
    batch_size: Optional[int] = None,
    yield_between_batches: Optional[Callable[[], None]] = None,
) -> MergeReport:
    """Fold ``delta`` into ``base`` in place; see the module docstring.

    ``relation`` is the combined fact table (base tuples first); every
    representative tuple id of ``base``, and of ``delta`` after adding
    ``delta_tid_offset``, must index into it.  Returns a :class:`MergeReport`
    whose :meth:`~MergeReport.changed_cells` drive index and cache
    maintenance upstream.

    ``batch_size`` bounds how many candidates (and, in the apply phase, how
    many upserts) are processed between calls to ``yield_between_batches``;
    the callback is the seam the serving layer uses to hand the GIL back to
    the event loop mid-merge (see :class:`repro.incremental.maintainer.
    CubeMaintainer`).  Batching never changes the result: candidates are
    evaluated in one deterministic sorted order regardless of batch
    boundaries or backend, and the pre-merge closure indexes answer every
    batch because nothing mutates until the apply phase.
    """
    if base.num_dims != delta.num_dims:
        raise IncrementalError(
            f"cannot merge a {delta.num_dims}-dimensional delta into a "
            f"{base.num_dims}-dimensional cube"
        )
    if relation.num_dimensions != base.num_dims:
        raise IncrementalError(
            f"combined relation has {relation.num_dimensions} dimensions, "
            f"the cubes have {base.num_dims}"
        )
    measures = _resolve_measures(base, delta, measures)
    report = MergeReport(
        delta_cells=len(delta), base_cells_before=len(base)
    )
    if len(delta) == 0:
        return report

    base_index = base.closure_index()
    delta_index = delta.closure_index()

    # Candidate generation: every lattice cell with delta support, via the
    # BFS below — kept deliberately scalar.  A level-wise np.unique
    # formulation was measured 5x slower at scale because every candidate
    # must round-trip through a Python tuple anyway (see the note in
    # repro.vector.kernels).  A sort by the canonical cell key makes the
    # evaluation order — and hence the first-wins dedup below and the
    # report's cell order — identical across backends and batch sizes.
    candidates = support_generalisations(iter(delta))
    report.candidates = len(candidates)
    ordered = sorted(candidates, key=sort_key)
    if batch_size is None or batch_size <= 0:
        batch_size = len(ordered) or 1

    # Evaluation phase: for every candidate, compute its union closure and
    # merged statistics.  Nothing is mutated yet, so the two closure indexes
    # keep answering for the *pre-merge* cubes throughout — which is what
    # makes batching (and yielding between batches) safe.
    produced: Dict[Cell, Tuple[int, Dict[str, float], int]] = {}
    for start in range(0, len(ordered), batch_size):
        batch = ordered[start : start + batch_size]
        # ``None`` entries mark candidates whose result comes from the next
        # repaired pair, in order; anything else is a delta-only carry.
        slots: List[Optional[Tuple[Cell, Tuple[int, Dict[str, float], int]]]] = []
        pairs: List[kernels.RepairPair] = []
        for candidate in batch:
            # A cell materialised in a closed cube is its own closure —
            # resolve via the cell dictionary (O(1)) and fall back to the
            # posting-list intersection only for non-materialised candidates.
            # In realistic append workloads most candidates are materialised
            # on at least one side, so this removes the bulk of the index
            # work.
            own_base = base.get(candidate)
            found_base = (
                (candidate, own_base)
                if own_base is not None
                else base_index.closure(candidate)
            )
            own_delta = delta.get(candidate)
            if found_base is None:
                # No base tuple matches the candidate, so its union closure
                # is its delta closure — a cell the delta cube materialises
                # and this loop reaches as its own candidate.  Only that
                # candidate needs work: carry it over verbatim (tids
                # re-based), skip the rest.
                if own_delta is not None:
                    slots.append(
                        (
                            candidate,
                            (
                                own_delta.count,
                                dict(own_delta.measures),
                                _global_rep(candidate, own_delta, delta_tid_offset),
                            ),
                        )
                    )
                continue
            found_delta = (
                (candidate, own_delta)
                if own_delta is not None
                else delta_index.closure(candidate)
            )
            if found_delta is None:  # pragma: no cover - candidates have support
                continue
            delta_cell, delta_stats = found_delta
            base_cell, base_stats = found_base
            pairs.append(
                (
                    base_cell,
                    base_stats.count,
                    base_stats.measures,
                    _global_rep(base_cell, base_stats, 0),
                    delta_cell,
                    delta_stats.count,
                    delta_stats.measures,
                    _global_rep(delta_cell, delta_stats, delta_tid_offset),
                )
            )
            slots.append(None)
        # Aggregation-based repair (Lemma 3), batched: the merged Closed
        # Mask names the dimensions every union tuple shares a value on —
        # i.e. the candidate's closed cover — and the merged representative
        # tuple supplies the values.  Distinct candidates can collapse onto
        # one cover; the first (in sorted candidate order) wins, and a cover
        # can never collide with a delta-only carry because covers always
        # have base support.
        repaired = iter(kernels.repair_pairs(pairs, relation, measures))
        for slot in slots:
            if slot is None:
                closed_cover, count, values, rep = next(repaired)
                if closed_cover not in produced:
                    produced[closed_cover] = (count, values, rep)
            elif slot[0] not in produced:
                produced[slot[0]] = slot[1]
        if yield_between_batches is not None and start + batch_size < len(ordered):
            yield_between_batches()

    # Apply phase: upsert the produced cells, keeping the live closure index
    # current through CubeResult's maintenance hooks.  Chunked under the same
    # budget — upserts mutate the cube and its index, but each one is
    # individually atomic and the pre-computed ``produced`` payloads don't
    # depend on them.
    items = list(produced.items())
    for start in range(0, len(items), batch_size):
        if yield_between_batches is not None and start:
            yield_between_batches()
        for cell, (count, values, rep) in items[start : start + batch_size]:
            existing = base.get(cell)
            if existing is None:
                base.add(cell, count, values, rep)
                report.added.append(cell)
            elif (
                existing.count != count
                or existing.rep_tid != rep
                or existing.measures != values
            ):
                base.upsert(cell, count, values, rep)
                report.updated.append(cell)
    return report
