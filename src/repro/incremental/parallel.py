"""Process-pool work units for cube maintenance.

Cubing is pure CPU, so running a refresh inside the serving process steals
the GIL from every query thread even when the merge itself is off the hot
path.  This module packages one cubing run as a picklable task so the
maintenance layers can ship it to a :class:`concurrent.futures.
ProcessPoolExecutor` and keep the serving process responsive:

* the delta cube of an append (:meth:`repro.incremental.maintainer.
  CubeMaintainer` with an ``executor``) — one task over the delta window;
* the per-partition recomputes of a partitioned refresh
  (:meth:`repro.storage.partition.PartitionedCubeComputer.refresh`) — one
  task per touched partition plus one for the collapsed pass, the partition
  boundaries acting as the natural work units.

A task carries the (sub-)relation to cube and the plain-data configuration
of the run; the result travels back as a flat cell list (cell, count,
measures, rep_tid) because :class:`~repro.core.cube.CubeResult` objects may
drag a live closure index along, which has no business crossing a process
boundary.  :func:`rebuild_cube` reassembles the cube on the serving side.

Use :func:`create_refresh_pool` to make the pool: it forces the ``spawn``
start method, because forking a process that already runs query threads (the
concurrent server always does) can deadlock in the child.  Everything here
also works with a :class:`~concurrent.futures.ThreadPoolExecutor` (useful in
tests: same code path, no process startup cost, just no GIL escape).
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.cell import Cell
from ..core.cube import CubeResult
from ..core.measures import MeasureSet, MeasureSpec
from ..core.relation import Relation

#: One materialised cell in transit: ``(cell, count, measures, rep_tid)``.
CellRecord = Tuple[Cell, int, Dict[str, float], Optional[int]]

#: A worker-resident base-cube identity: ``(serving token, covered tuples)``.
#: The token is unique per served cube per parent process; the tuple count
#: pins the cube *content*, because relations are append-only — the closed
#: cube of ``relation[0:n]`` is a function of ``n`` alone for a given cube.
MergeStateKey = Tuple[int, int]

#: How many base-cube snapshots one worker keeps resident.  Small on
#: purpose: each entry is a full cell list, and a refresh pool rarely serves
#: more than a handful of cubes at once.
WORKER_CACHE_MAX = 4

_merge_state_tokens = itertools.count(1)
_worker_cache_lock = threading.Lock()
_worker_base_cache: "Dict[MergeStateKey, List[CellRecord]]" = {}
#: Traffic through this process's resident cache.  Per process by nature:
#: with a thread pool the parent sees every worker's counts; with a process
#: pool each worker counts its own (the serving-side
#: ``ServingCube.merge_cache_stats`` is the cross-process view).
_worker_cache_counters: Dict[str, int] = {
    "hits": 0,
    "misses": 0,
    "stores": 0,
    "evictions": 0,
}


def merge_state_token(serving: object) -> int:
    """A stable identity token for one served cube, lazily stamped.

    ``(engine name, version)`` pairs are unsafe as cache identities — the
    version resets when an engine is rebuilt — so the maintainer brands each
    :class:`~repro.session.serving.ServingCube` with a monotonic counter the
    first time it offloads a merge for it.
    """
    token = getattr(serving, "_merge_state_token", None)
    if token is None:
        token = next(_merge_state_tokens)
        object.__setattr__(serving, "_merge_state_token", token)
    return token


class WorkerCacheMiss(Exception):
    """The worker holds no base cube under the task's ``cache_key``.

    Raised (and pickled back through the future) instead of guessing: the
    submitter retries once with the full cell list, which also re-primes the
    worker that answered.  Misses are expected — a pool routes tasks to any
    worker, and only the one that ran the previous append has the state.
    """

    def __init__(self, cache_key: MergeStateKey) -> None:
        super().__init__(f"no worker-resident base cube under key {cache_key!r}")
        self.cache_key = cache_key

    def __reduce__(self):  # pragma: no cover - exercised via process pools
        return (WorkerCacheMiss, (self.cache_key,))


def worker_cache_store(key: MergeStateKey, records: List[CellRecord]) -> None:
    """Retain one base-cube snapshot in this worker, evicting oldest-first."""
    with _worker_cache_lock:
        _worker_base_cache.pop(key, None)
        _worker_base_cache[key] = records
        _worker_cache_counters["stores"] += 1
        while len(_worker_base_cache) > WORKER_CACHE_MAX:
            _worker_base_cache.pop(next(iter(_worker_base_cache)))
            _worker_cache_counters["evictions"] += 1


def worker_cache_get(key: MergeStateKey) -> Optional[List[CellRecord]]:
    """This worker's snapshot under ``key``, refreshed to most-recent."""
    with _worker_cache_lock:
        records = _worker_base_cache.pop(key, None)
        if records is not None:
            _worker_base_cache[key] = records
            _worker_cache_counters["hits"] += 1
        else:
            _worker_cache_counters["misses"] += 1
        return records


def worker_cache_stats() -> Dict[str, int]:
    """This process's resident-cache counters (see their declaration note)."""
    with _worker_cache_lock:
        stats = dict(_worker_cache_counters)
        stats["resident"] = len(_worker_base_cache)
    return stats


def worker_cache_clear() -> None:
    """Drop every resident snapshot (test isolation); counters survive."""
    with _worker_cache_lock:
        _worker_base_cache.clear()


@dataclass(frozen=True)
class CubingTask:
    """One cubing run, picklable end to end.

    ``dimension_order`` must be plain data (a strategy name, a permutation,
    or ``None``); callers with a callable strategy must compute in process —
    :func:`picklable_order` is the gate they use.
    """

    relation: Relation
    algorithm: str
    min_sup: int = 1
    closed: bool = True
    measures: Tuple[MeasureSpec, ...] = ()
    dimension_order: object = None
    initial_collapsed: Tuple[int, ...] = ()


@dataclass(frozen=True)
class CubingTaskResult:
    """What a worker sends back: flat cells plus run bookkeeping."""

    cells: List[CellRecord] = field(default_factory=list)
    algorithm: str = ""
    elapsed_seconds: float = 0.0


def picklable_order(dimension_order: object) -> bool:
    """Whether a dimension-order strategy can cross a process boundary."""
    return not callable(dimension_order)


def run_cubing_task(task: CubingTask) -> CubingTaskResult:
    """Execute one :class:`CubingTask` (the function a pool worker runs).

    Importable at module top level so every executor kind can pickle a
    reference to it; importing this module pulls in the ``repro`` package,
    which registers the full algorithm registry in the worker.
    """
    from ..algorithms.base import CubingOptions, get_algorithm

    options = CubingOptions(
        min_sup=task.min_sup,
        closed=task.closed,
        measures=MeasureSet(task.measures),
        dimension_order=task.dimension_order,
        initial_collapsed=task.initial_collapsed,
    )
    result = get_algorithm(task.algorithm, options).run(task.relation)
    cells: List[CellRecord] = [
        (cell, stats.count, dict(stats.measures), stats.rep_tid)
        for cell, stats in result.cube.items()
    ]
    return CubingTaskResult(
        cells=cells,
        algorithm=result.algorithm,
        elapsed_seconds=result.elapsed_seconds or 0.0,
    )


def rebuild_cube(
    records: List[CellRecord],
    num_dims: int,
    name: str = "",
    measures: Tuple[MeasureSpec, ...] = (),
) -> CubeResult:
    """Reassemble a :class:`CubeResult` from a worker's flat cell list."""
    cube = CubeResult(num_dims, name=name)
    for cell, count, cell_measures, rep_tid in records:
        cube.add(cell, count, cell_measures, rep_tid)
    cube.measure_set = MeasureSet(tuple(measures))
    return cube


def compute_delta_cube(
    executor: Executor,
    delta_relation: Relation,
    start_tid: int,
    algorithm: str,
    measures: Tuple[MeasureSpec, ...] = (),
    dimension_order: object = None,
) -> CubeResult:
    """Compute an append's delta closed cube in ``executor``.

    The worker cubes only the delta window (full closed mode — the only mode
    delta-merge is exact for); the reassembled cube's representative tuple
    ids are shifted by ``start_tid`` into the grown relation's tid space,
    mirroring :meth:`repro.algorithms.base.CubingAlgorithm.run_delta`.
    """
    task = CubingTask(
        relation=delta_relation,
        algorithm=algorithm,
        min_sup=1,
        closed=True,
        measures=tuple(measures),
        dimension_order=dimension_order,
    )
    outcome = executor.submit(run_cubing_task, task).result()
    cube = rebuild_cube(
        outcome.cells,
        delta_relation.num_dimensions,
        name=f"delta-{outcome.algorithm}",
        measures=tuple(measures),
    )
    cube.shift_rep_tids(start_tid)
    return cube


@dataclass(frozen=True)
class MergeTask:
    """A whole delta-merge preparation, picklable end to end.

    Ships the served cube's cells and the grown relation to a worker, which
    computes the delta cube over the ``start_tid..`` window *and* merges it
    (aggregation-based closedness repair included) into a private copy of the
    base — the two CPU-heavy phases of an append.  Only the *changed* cells
    travel back; the serving thread replays them onto a clone and publishes.

    ``base_cells`` may be ``None`` when ``cache_key`` names a base cube a
    worker already holds resident (stored under ``store_key`` by a previous
    task) — the delta-only payload of the worker-resident merge protocol.  A
    worker without the state raises :class:`WorkerCacheMiss`; the submitter
    retries with the full list.
    """

    base_cells: Optional[List[CellRecord]]
    relation: Relation
    start_tid: int
    algorithm: str
    measures: Tuple[MeasureSpec, ...] = ()
    dimension_order: object = None
    #: Identity of the pre-merge base cube to look up when ``base_cells`` is
    #: ``None``.
    cache_key: Optional[MergeStateKey] = None
    #: Identity to retain the *post*-merge base cube under for the next
    #: append; ``None`` disables retention.
    store_key: Optional[MergeStateKey] = None


@dataclass(frozen=True)
class MergeTaskResult:
    """The prepared merge: new statistics for every added/updated cell."""

    changed: List[CellRecord]
    report: object  # a MergeReport; typed loosely to keep pickling simple
    algorithm: str


def run_merge_task(task: MergeTask) -> MergeTaskResult:
    """Prepare one append's merge in a worker process.

    Anything :func:`repro.incremental.merge.merge_closed_cubes` would raise
    in process (:class:`IncrementalError`, :class:`MeasureError`) propagates
    back through the future so the maintainer's exactness fallbacks fire
    unchanged.
    """
    from ..algorithms.base import CubingOptions, get_algorithm

    records = task.base_cells
    if records is None:
        if task.cache_key is None:
            raise WorkerCacheMiss((0, task.start_tid))
        records = worker_cache_get(task.cache_key)
        if records is None:
            raise WorkerCacheMiss(task.cache_key)
    base = rebuild_cube(
        records,
        task.relation.num_dimensions,
        name="prepared-merge",
        measures=task.measures,
    )
    options = CubingOptions(
        min_sup=1,
        closed=True,
        measures=MeasureSet(task.measures),
        dimension_order=task.dimension_order,
    )
    delta_result = get_algorithm(task.algorithm, options).run_delta(
        task.relation, task.start_tid
    )
    report = base.merge(
        delta_result.cube, task.relation, measures=MeasureSet(task.measures)
    )
    changed: List[CellRecord] = []
    for cell in report.changed_cells():
        stats = base[cell]
        changed.append((cell, stats.count, dict(stats.measures), stats.rep_tid))
    if task.store_key is not None:
        worker_cache_store(
            task.store_key,
            [
                (cell, stats.count, dict(stats.measures), stats.rep_tid)
                for cell, stats in base.items()
            ],
        )
    return MergeTaskResult(
        changed=changed, report=report, algorithm=delta_result.algorithm
    )


def create_refresh_pool(max_workers: Optional[int] = None) -> ProcessPoolExecutor:
    """A process pool suitable for maintenance offload from a threaded server.

    Uses the ``spawn`` start method unconditionally: the concurrent serving
    layer always has live threads, and ``fork`` under threads can leave the
    child holding locks whose owners never run again.  Spawned workers
    re-import ``repro`` (environment, including ``PYTHONPATH``, is
    inherited), so the pool costs a few hundred milliseconds to warm up —
    pay it once at server start, not per append.
    """
    return ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=multiprocessing.get_context("spawn"),
    )
