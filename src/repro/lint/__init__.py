"""``repro.lint`` — the serving stack's invariant static analyzer.

PRs 4-6 made the engine a concurrent, durable, multi-cube server whose
correctness rests on conventions no general-purpose linter checks: locks
held through context managers or paired ``finally`` releases, one global
lock-acquisition order, a strictly non-blocking asyncio dispatcher,
copy-on-publish cube maintenance, tmp+rename durability, and seeded
randomness in everything that claims to be reproducible.  This package
machine-checks those conventions so the next refactor wave (replicated
serving, columnar core) can move fast without silently breaking them.

Rule families (see :mod:`repro.lint.rules` and docs/STATIC_ANALYSIS.md):

== =====================================================================
RL001 lock discipline — no bare ``acquire()`` without a ``finally`` release
RL002 lock ordering — per-module acquisition graph must stay acyclic
RL003 blocking-in-async — no blocking calls on the server's event loop
RL004 publish discipline — published cubes are cloned and swapped, never
      mutated in place
RL005 atomic-write discipline — durable artifacts go through tmp+rename
RL006 seeded randomness — no process-global RNG in benchmarks/loadgen/
      datagen
== =====================================================================

Run it as ``python -m repro.lint [paths]``; suppress a reviewed exception
inline with ``# repro-lint: disable=RLxxx``; park accepted debt in
``lint-baseline.json``.
"""

from .engine import LintResult, ParsedModule, run_lint
from .findings import Baseline, Finding, Suppressions
from .rules import ALL_RULES, RULES_BY_CODE, Rule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintResult",
    "ParsedModule",
    "Rule",
    "RULES_BY_CODE",
    "Suppressions",
    "run_lint",
]
