"""Command line front end: ``python -m repro.lint [paths ...]``.

Exit status:

* ``0`` — no unsuppressed, un-baselined findings (the CI contract);
* ``1`` — at least one new finding;
* ``2`` — usage errors (missing paths, malformed baseline).

The default paths are ``src``, ``benchmarks``, and ``examples`` when run from the repo
root.  A ``lint-baseline.json`` next to the current directory is picked up
automatically; ``--update-baseline`` rewrites it from the current findings
and ``--no-baseline`` ignores it (useful to see the accepted debt too).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .engine import run_lint
from .findings import Baseline, Finding
from .rules import ALL_RULES

DEFAULT_BASELINE = "lint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Concurrency- and durability-invariant static analyzer for the "
            "repro serving stack (rules RL001-RL006)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyse (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"accepted-debt file (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report accepted debt as findings",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also list findings silenced by inline disable comments",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _default_paths() -> List[str]:
    paths = [path for path in ("src", "benchmarks", "examples") if os.path.isdir(path)]
    return paths


def _print_text(
    findings: Sequence[Finding],
    baselined: Sequence[Finding],
    suppressed: Sequence[Finding],
    checked_files: int,
    stale: Sequence[str],
    show_suppressed: bool,
    out=None,
) -> None:
    # Resolve the stream at call time so test harnesses that swap
    # sys.stdout (pytest's capsys) see the output.
    out = out if out is not None else sys.stdout
    for finding in findings:
        print(finding.render(), file=out)
    if show_suppressed:
        for finding in suppressed:
            print(f"{finding.render()} [suppressed inline]", file=out)
    summary = (
        f"repro.lint: {len(findings)} finding(s) in {checked_files} file(s)"
    )
    details = []
    if baselined:
        details.append(f"{len(baselined)} baselined")
    if suppressed:
        details.append(f"{len(suppressed)} suppressed inline")
    if details:
        summary += " (" + ", ".join(details) + ")"
    print(summary, file=out)
    for fingerprint in stale:
        print(
            f"repro.lint: stale baseline entry (already fixed — run "
            f"--update-baseline to drop it): {fingerprint}",
            file=out,
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code} {rule.name}: {rule.summary}")
        return 0

    paths = options.paths or _default_paths()
    if not paths:
        parser.error(
            "no paths given and neither ./src nor ./benchmarks exists"
        )
    try:
        result = run_lint(paths)
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = options.baseline or (
        DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None
    )
    if options.update_baseline:
        target = options.baseline or DEFAULT_BASELINE
        Baseline().save(target, result.findings)
        print(
            f"repro.lint: wrote {len(result.findings)} finding(s) to {target}"
        )
        return 0

    baseline = Baseline()
    if baseline_path is not None and not options.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"repro.lint: bad baseline: {exc}", file=sys.stderr)
            return 2

    new = [f for f in result.findings if not baseline.contains(f)]
    accepted = [f for f in result.findings if baseline.contains(f)]
    stale = baseline.stale_entries(result.findings)

    if options.format == "json":
        payload = {
            "checked_files": result.checked_files,
            "findings": [vars(finding) for finding in new],
            "baselined": [vars(finding) for finding in accepted],
            "suppressed": [vars(finding) for finding in result.suppressed],
            "stale_baseline_entries": list(stale),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _print_text(
            new, accepted, result.suppressed, result.checked_files, stale,
            options.show_suppressed,
        )
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover - module is run via __main__
    sys.exit(main())
