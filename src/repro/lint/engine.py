"""The ``repro.lint`` driver: walk files, parse, run rules, apply filters.

The engine is deliberately boring: it finds Python files, parses each one
once, hands the parse to every registered rule, and filters the raw
findings through the file's inline suppressions.  Baseline subtraction and
exit-status policy live in :mod:`repro.lint.cli` — the engine itself always
reports everything it sees, so tests can assert on the raw stream.

A file that fails to parse yields one ``RL000`` finding (not suppressible:
a syntax error means the suppressions could not be read either).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .findings import Finding, Suppressions
from .rules import ALL_RULES, Rule

#: Pseudo-rule for files the analyzer cannot parse.
PARSE_ERROR_CODE = "RL000"

#: Directory names never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", ".venv", "venv"}


@dataclass
class ParsedModule:
    """One parsed source file as the rules see it."""

    #: Absolute path on disk.
    path: str
    #: Root-relative, forward-slash path used in findings and scope checks.
    display: str
    tree: ast.AST
    lines: Sequence[str]


@dataclass
class LintResult:
    """Everything one run produced, before baseline policy is applied."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    checked_files: int = 0

    def by_rule(self, code: str) -> List[Finding]:
        return [finding for finding in self.findings if finding.rule == code]


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen = set()
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            candidates: Iterable[str] = [path]
        elif os.path.isdir(path):
            candidates = _walk(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for candidate in candidates:
            absolute = os.path.abspath(candidate)
            if absolute not in seen and absolute.endswith(".py"):
                seen.add(absolute)
                collected.append(absolute)
    return iter(sorted(collected))


def _walk(directory: str) -> Iterator[str]:
    for root, dirnames, filenames in os.walk(directory):
        dirnames[:] = sorted(
            name for name in dirnames
            if name not in SKIP_DIRS and not name.startswith(".")
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(root, filename)


def display_path(path: str, root: Optional[str] = None) -> str:
    """Root-relative forward-slash form of ``path`` for findings output."""
    base = os.path.abspath(root or os.getcwd())
    absolute = os.path.abspath(path)
    try:
        relative = os.path.relpath(absolute, base)
    except ValueError:  # pragma: no cover - different drive on Windows
        relative = absolute
    if relative.startswith(".."):
        relative = absolute
    return relative.replace(os.sep, "/")


def parse_module(path: str, root: Optional[str] = None) -> Tuple[
    Optional[ParsedModule], Optional[Finding]
]:
    """Parse one file; returns ``(module, None)`` or ``(None, RL000)``."""
    display = display_path(path, root)
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError, OSError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return None, Finding(
            rule=PARSE_ERROR_CODE,
            path=display,
            line=int(line),
            col=0,
            message=f"cannot analyse file: {exc}",
        )
    return ParsedModule(
        path=path, display=display, tree=tree, lines=source.splitlines()
    ), None


def run_lint(
    paths: Sequence[str],
    root: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Run every rule over every Python file under ``paths``.

    Inline ``# repro-lint: disable=...`` suppressions are applied here;
    suppressed findings are kept on :attr:`LintResult.suppressed` so the CLI
    can show them on request and tests can assert suppression behaviour.
    """
    active = list(ALL_RULES if rules is None else rules)
    result = LintResult()
    for path in iter_python_files(paths):
        module, parse_error = parse_module(path, root)
        if parse_error is not None:
            result.findings.append(parse_error)
            continue
        result.checked_files += 1
        suppressions = Suppressions(module.lines)
        for rule in active:
            for finding in rule.check(module):
                if suppressions.is_suppressed(finding.rule, finding.line):
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
