"""Findings, suppressions, and the accepted-debt baseline for ``repro.lint``.

A :class:`Finding` is one rule violation at one source location.  Two
mechanisms keep the analyzer's exit status meaningful on a living tree:

* **Inline suppressions** — a ``# repro-lint: disable=RL001`` comment on the
  offending line (or on a standalone comment line directly above it) silences
  the named rules there.  ``disable=all`` silences every rule.  Suppressions
  are for *reviewed* exceptions: the comment sits next to the code, so the
  justification travels with it.
* **The baseline** — a committed JSON file of *accepted debt*: findings that
  predate a rule and are consciously tolerated.  Baselined findings are
  reported as such but do not fail the run; a finding is matched by its
  fingerprint (rule, path, message) rather than its line number, so
  unrelated edits above it do not churn the file.  ``--update-baseline``
  rewrites the file from the current findings.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

#: Inline suppression marker: ``# repro-lint: disable=RL001,RL005`` (codes
#: case-insensitive; ``all`` disables every rule on the line).
SUPPRESS_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)"
)

#: Schema version of the baseline file.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Suppressions:
    """The per-line inline-suppression map of one source file."""

    def __init__(self, lines: Sequence[str]) -> None:
        #: line number (1-based) -> set of lowered rule codes (or {"all"}).
        self._by_line: Dict[int, Set[str]] = {}
        for number, text in enumerate(lines, start=1):
            match = SUPPRESS_PATTERN.search(text)
            if match is None:
                continue
            codes = {
                code.strip().lower()
                for code in match.group(1).split(",")
                if code.strip()
            }
            self._by_line.setdefault(number, set()).update(codes)
            # A standalone comment line suppresses the line below it, so a
            # justification comment can sit on its own line above the code.
            if text.lstrip().startswith("#"):
                self._by_line.setdefault(number + 1, set()).update(codes)

    def is_suppressed(self, rule: str, line: int) -> bool:
        codes = self._by_line.get(line)
        if not codes:
            return False
        return "all" in codes or rule.lower() in codes


class Baseline:
    """The committed accepted-debt file (see module docstring)."""

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self.fingerprints: Set[str] = set(fingerprints)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path) as handle:
            raw = json.load(handle)
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path!r} is not a repro-lint baseline "
                f"(expected version {BASELINE_VERSION})"
            )
        entries = raw.get("findings", [])
        if not isinstance(entries, list):
            raise ValueError(f"{path!r} has a malformed 'findings' list")
        fingerprints = set()
        for entry in entries:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise ValueError(f"malformed baseline entry: {entry!r}")
            fingerprints.add(str(entry["fingerprint"]))
        return cls(fingerprints)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(finding.fingerprint() for finding in findings)

    def save(self, path: str, findings: Sequence[Finding]) -> None:
        """Write the baseline from ``findings`` (sorted, line-independent)."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                {"fingerprint": fingerprint}
                for fingerprint in sorted(
                    {finding.fingerprint() for finding in findings}
                )
            ],
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints

    def stale_entries(self, findings: Sequence[Finding]) -> List[str]:
        """Baseline fingerprints that no current finding matches (fixed debt)."""
        current = {finding.fingerprint() for finding in findings}
        return sorted(self.fingerprints - current)
