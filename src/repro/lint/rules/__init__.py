"""The rule registry for ``repro.lint``.

Each rule family lives in its own module and exposes ``CODE``, ``NAME``, a
docstring describing the invariant, and ``check(module) -> List[Finding]``.
The registry below is the single source of truth the engine, the CLI's
``--list-rules``, and the documentation generator iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Tuple

from ..findings import Finding
from . import (
    rl001_lock_discipline,
    rl002_lock_ordering,
    rl003_blocking_async,
    rl004_publish_discipline,
    rl005_atomic_write,
    rl006_seeded_random,
    rl007_await_under_lock,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ParsedModule


@dataclass(frozen=True)
class Rule:
    """One registered rule family."""

    code: str
    name: str
    summary: str
    check: Callable[["ParsedModule"], List[Finding]]


def _rule(module) -> Rule:
    summary = (module.__doc__ or "").strip().splitlines()[0]
    return Rule(
        code=module.CODE, name=module.NAME, summary=summary, check=module.check
    )


#: Every rule family, in code order.
ALL_RULES: Tuple[Rule, ...] = tuple(
    _rule(module)
    for module in (
        rl001_lock_discipline,
        rl002_lock_ordering,
        rl003_blocking_async,
        rl004_publish_discipline,
        rl005_atomic_write,
        rl006_seeded_random,
        rl007_await_under_lock,
    )
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}
