"""Shared AST helpers for the ``repro.lint`` rule families.

Every rule works on one :class:`~repro.lint.engine.ParsedModule` at a time
and reasons about *lexical* structure only — no imports are executed, no
types are resolved.  The helpers here encode the two heuristics the rules
share:

* **Dotted names** — receivers and lock expressions are canonicalised to
  dotted strings (``self._lock``, ``channel.append_lock``,
  ``self._gate()``) so rules can match acquisitions against releases and
  aliases against their sources.
* **Lock-ish detection** — an expression is treated as a lock when its last
  name segment looks like one (``lock``, ``gate``, ``mutex``, ``cond``,
  ``rwlock``, ``sem`` — singular or plural, bare or as a ``_lock``-style
  suffix).  Naming *is* the contract: the serving stack names every
  synchronisation primitive this way, and the lint rules are the reason to
  keep doing so.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Tuple

#: Last-segment names that mark an expression as a synchronisation primitive.
LOCKISH_PATTERN = re.compile(
    r"(?:^|_)(?:lock|locks|gate|gates|mutex|mutexes|rwlock|rwlocks|"
    r"cond|condition|sem|semaphore)$"
)

#: RWLock's split acquire/release method pairs, plus the plain pair.
ACQUIRE_METHODS = {"acquire": "release", "acquire_read": "release_read",
                   "acquire_write": "release_write"}
RELEASE_METHODS = {release: acquire for acquire, release in ACQUIRE_METHODS.items()}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain, ``a.b()`` for a call on one.

    Returns ``None`` for expressions that are not name/attribute/call chains
    (subscripts, literals, comprehensions, ...).
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    if isinstance(node, ast.Call):
        base = dotted_name(node.func)
        if base is None:
            return None
        return f"{base}()"
    return None


def last_segment(dotted: str) -> str:
    """The final name of a dotted chain, stripped of a trailing call marker."""
    segment = dotted.split(".")[-1]
    # str.removesuffix needs 3.9; this package supports the repo's 3.8 floor.
    return segment[:-2] if segment.endswith("()") else segment


def is_lockish_name(name: str) -> bool:
    return LOCKISH_PATTERN.search(name.lower()) is not None


def lock_acquisition_key(node: ast.expr) -> Optional[str]:
    """Canonical lock identity for a ``with`` context expression, if any.

    Recognised shapes (``None`` otherwise):

    * ``with self._lock:`` — a lock-ish name or attribute;
    * ``with self._gate(name):`` — a call whose callee is lock-ish (a lock
      factory/lookup such as the catalog's per-name gates);
    * ``with lock.read():`` / ``with lock.write():`` — RWLock side helpers,
      collapsed onto the lock itself (both sides order against the same
      node in the acquisition graph).
    """
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = dotted_name(node)
        if dotted is not None and is_lockish_name(last_segment(dotted)):
            return dotted
        return None
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("read", "write")
        ):
            receiver = dotted_name(node.func.value)
            if receiver is not None and is_lockish_name(last_segment(receiver)):
                return receiver
            return None
        dotted = dotted_name(node.func)
        if dotted is not None and is_lockish_name(last_segment(dotted)):
            return f"{dotted}()"
    return None


def canonical_lock(key: str) -> str:
    """Module-level lock identity: ``self._lock`` and ``cls._lock`` unify."""
    for prefix in ("self.", "cls."):
        if key.startswith(prefix):
            return key[len(prefix):]
    return key


def iter_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, bool]]:
    """Every function/method in ``tree`` as ``(node, is_async)``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node, False
        elif isinstance(node, ast.AsyncFunctionDef):
            yield node, True


def in_scope(display_path: str, *segments: str) -> bool:
    """Whether a module's display path lies under any of ``segments``.

    Matches path *segments*, so ``repro/server`` matches both
    ``src/repro/server/tcp.py`` and a fixture corpus laid out as
    ``tests/lint_fixtures/repro/server/bad.py``.
    """
    normalized = "/" + display_path.replace("\\", "/").lstrip("/")
    return any(f"/{segment.strip('/')}/" in normalized for segment in segments)


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted name a call invokes, or ``None``."""
    return dotted_name(node.func)
