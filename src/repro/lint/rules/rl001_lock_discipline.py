"""RL001 — lock discipline: no bare ``acquire()`` without a ``finally``.

Every lock in the serving stack is held either through its context manager
(``with lock:``, ``with lock.read():``) or — when the acquisition itself
needs special handling, like the server's timeout-bounded
``await wait_for(lock.acquire(), ...)`` — through an explicit
``acquire()``/``release()`` pair whose release lives in a ``finally`` block.
Anything else leaks the lock on the first exception between acquire and
release, which in a writer-preference world wedges *every* future reader.

Flagged:

* ``lock.acquire()`` (also ``acquire_read``/``acquire_write`` and awaited
  asyncio acquires) with no matching ``release`` on the same receiver inside
  a ``finally`` block of the same function;
* ``lock.release()`` calls outside any ``finally`` block — a happy-path
  release leaks on exceptions just as surely.

The receivers are matched lexically (``channel.append_lock`` against
``channel.append_lock``), so keep acquire and release spelled the same way.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from ..findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ParsedModule
from .common import (
    ACQUIRE_METHODS,
    RELEASE_METHODS,
    dotted_name,
    is_lockish_name,
    iter_functions,
    last_segment,
)

CODE = "RL001"
NAME = "lock-discipline"


def _lock_method_call(node: ast.Call) -> Optional[Tuple[str, str]]:
    """``(receiver, method)`` when ``node`` is a lock acquire/release call."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    if method not in ACQUIRE_METHODS and method not in RELEASE_METHODS:
        return None
    receiver = dotted_name(func.value)
    if receiver is None:
        return None
    # Plain acquire/release appear on queues, semaphores-by-other-names, and
    # third-party objects too; require a lock-ish receiver for those.  The
    # RWLock method names (acquire_read/...) are unambiguous on their own —
    # self.acquire_read() inside a lock class still counts.
    if method in ("acquire", "release") and not is_lockish_name(
        last_segment(receiver)
    ):
        return None
    return receiver, method


def _finally_releases(function: ast.AST) -> Set[Tuple[str, str]]:
    """Every ``(receiver, release_method)`` called inside a ``finally``."""
    releases: Set[Tuple[str, str]] = set()
    for node in ast.walk(function):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for call in ast.walk(stmt):
                if isinstance(call, ast.Call):
                    found = _lock_method_call(call)
                    if found is not None and found[1] in RELEASE_METHODS:
                        releases.add(found)
    return releases


def _nodes_under_finally(function: ast.AST) -> Set[int]:
    under: Set[int] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for child in ast.walk(stmt):
                    under.add(id(child))
    return under


def check(module: ParsedModule) -> List[Finding]:
    findings: List[Finding] = []
    for function, _is_async in iter_functions(module.tree):
        releases_in_finally = _finally_releases(function)
        finally_nodes = _nodes_under_finally(function)
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            found = _lock_method_call(node)
            if found is None:
                continue
            receiver, method = found
            if method in ACQUIRE_METHODS:
                release = ACQUIRE_METHODS[method]
                if (receiver, release) not in releases_in_finally:
                    findings.append(
                        Finding(
                            rule=CODE,
                            path=module.display,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"bare {receiver}.{method}() with no "
                                f"{receiver}.{release}() in a finally block; "
                                "use the lock's context manager, or pair the "
                                "acquire with a release in a finally"
                            ),
                        )
                    )
            elif id(node) not in finally_nodes:
                findings.append(
                    Finding(
                        rule=CODE,
                        path=module.display,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{receiver}.{method}() outside a finally block "
                            "leaks the lock when an exception fires between "
                            "acquire and release; move it into a finally"
                        ),
                    )
                )
    return findings
