"""RL002 — lock ordering: the per-module acquisition graph must be acyclic.

The serving stack layers its locks in one fixed order; taking them in two
different orders in two code paths is the classic AB/BA deadlock.  This rule
rebuilds each module's lock *acquisition graph*: an edge ``A -> B`` means
some code path acquires ``B`` while holding ``A`` — either directly (nested
``with`` blocks) or through a call to another function in the same module
that acquires ``B`` (transitively).  Any cycle in that graph is reported.

On top of the generic cycle check, the rule pins the one ordering the
catalog's deadlock depends on (established in the PR-5 concurrency rework):
**per-name gates are acquired before the catalog-wide lock, never the other
way around.**  ``CubeCatalog`` holds a per-name gate for a cube's heavy work
and dips into ``self._lock`` for short manifest/instance-table sections;
acquiring a gate while already inside the catalog-wide lock would deadlock
against any gate-holder waiting for that same lock.  An edge from a
``*_lock``-named lock to a ``*gate*``-named lock is therefore flagged even
when the module's graph shows no complete cycle (the reverse edges usually
live in the same module anyway, but the pin keeps the report crisp and keeps
firing if the halves are ever split across modules).
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..findings import Finding
from .common import canonical_lock, dotted_name, lock_acquisition_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ParsedModule

CODE = "RL002"
NAME = "lock-ordering"

#: The catalog-wide registry lock (short critical sections).
CATALOG_LOCK = re.compile(r"^_?lock$")
#: The per-name gates (long per-cube critical sections).
NAME_GATE = re.compile(r"gate")

#: edge source -> {target -> (line, col) of a witness acquisition}
Graph = Dict[str, Dict[str, Tuple[int, int]]]


def _collect_functions(tree: ast.AST):
    """``(name, kind, node)`` for every function: kind 'method' or 'func'.

    The distinction matters for call resolution: a bare ``open(...)`` call
    is the *builtin*, never a method that happens to be named ``open`` —
    only ``self.open(...)`` reaches the method.  Conflating them invents
    acquisition edges out of thin air (the catalog's ``open()`` method vs
    the builtin was the motivating false positive).
    """
    def visit(node: ast.AST, in_class: bool):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child.name, ("method" if in_class else "func"), child
                # Nested defs resolve by bare name like module functions.
                yield from visit(child, False)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, True)
            elif isinstance(child, (ast.If, ast.Try, ast.With, ast.For,
                                    ast.While)):
                yield from visit(child, in_class)

    yield from visit(tree, False)


def _called_function(node: ast.Call) -> Optional[Tuple[str, str]]:
    """``(kind, name)`` of a possibly-local callee: ``foo`` or ``self.foo``."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if len(parts) == 1:
        return "func", parts[0]
    if len(parts) == 2 and parts[0] in ("self", "cls"):
        return "method", parts[1]
    return None


class _FunctionFacts(ast.NodeVisitor):
    """Lock acquisitions and call sites of one function, with held-set context."""

    def __init__(self) -> None:
        self.held: List[str] = []
        #: (held_key, acquired_key, line, col) for nested with acquisitions.
        self.edges: List[Tuple[str, str, int, int]] = []
        #: every lock this function acquires directly.
        self.acquired: Set[str] = set()
        #: (held_keys, callee (kind, name), line, col) for same-module calls.
        self.calls: List[Tuple[Tuple[str, ...], Tuple[str, str], int, int]] = []

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.AST) -> None:
        acquired_here: List[str] = []
        for item in node.items:  # type: ignore[attr-defined]
            key = lock_acquisition_key(item.context_expr)
            if key is None:
                continue
            key = canonical_lock(key)
            self.acquired.add(key)
            for held in self.held:
                if held != key:
                    self.edges.append(
                        (held, key, item.context_expr.lineno,
                         item.context_expr.col_offset)
                    )
            self.held.append(key)
            acquired_here.append(key)
        for stmt in node.body:  # type: ignore[attr-defined]
            self.visit(stmt)
        for _ in acquired_here:
            self.held.pop()

    def visit_Call(self, node: ast.Call) -> None:
        callee = _called_function(node)
        if callee is not None:
            self.calls.append(
                (tuple(self.held), callee, node.lineno, node.col_offset)
            )
        self.generic_visit(node)

    # Nested function definitions run later, under an unknown held set;
    # they are analysed as functions in their own right instead.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


def _transitive_acquisitions(
    facts: Dict[Tuple[str, str], _FunctionFacts]
) -> Dict[Tuple[str, str], Set[str]]:
    """Fixpoint of "locks function f may acquire", following local calls.

    A bare-name call only resolves to a module-level (or nested) function;
    a ``self.``/``cls.`` call only resolves to a method — never across.
    """
    summary = {key: set(f.acquired) for key, f in facts.items()}
    changed = True
    while changed:
        changed = False
        for key, fact in facts.items():
            for _held, callee, _line, _col in fact.calls:
                extra = summary.get(callee)
                if extra and not extra <= summary[key]:
                    summary[key] |= extra
                    changed = True
    return summary


def _build_graph(module: "ParsedModule") -> Graph:
    facts: Dict[Tuple[str, str], _FunctionFacts] = {}
    for name, kind, function in _collect_functions(module.tree):
        visitor = _FunctionFacts()
        for stmt in function.body:
            visitor.visit(stmt)
        key = (kind, name)
        # Same-named methods on different classes merge conservatively.
        if key in facts:
            existing = facts[key]
            existing.edges.extend(visitor.edges)
            existing.acquired |= visitor.acquired
            existing.calls.extend(visitor.calls)
        else:
            facts[key] = visitor
    summary = _transitive_acquisitions(facts)
    graph: Graph = {}
    for fact in facts.values():
        for held, acquired, line, col in fact.edges:
            graph.setdefault(held, {}).setdefault(acquired, (line, col))
        for held_keys, callee, line, col in fact.calls:
            if not held_keys:
                continue
            for target in summary.get(callee, ()):
                for held in held_keys:
                    if held != target:
                        graph.setdefault(held, {}).setdefault(target, (line, col))
    return graph


def _find_cycle(graph: Graph) -> Optional[List[str]]:
    """One cycle in the graph as ``[a, b, ..., a]``, or ``None``."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack: List[str] = []

    def dfs(node: str) -> Optional[List[str]]:
        color[node] = GREY
        stack.append(node)
        for target in sorted(graph.get(node, ())):
            state = color.get(target, WHITE)
            if state == GREY:
                return stack[stack.index(target):] + [target]
            if state == WHITE and target in graph:
                cycle = dfs(target)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            cycle = dfs(node)
            if cycle is not None:
                return cycle
    return None


def check(module: "ParsedModule") -> List[Finding]:
    graph = _build_graph(module)
    findings: List[Finding] = []
    for held, targets in sorted(graph.items()):
        for target, (line, col) in sorted(targets.items()):
            if CATALOG_LOCK.match(held) and NAME_GATE.search(target):
                findings.append(
                    Finding(
                        rule=CODE,
                        path=module.display,
                        line=line,
                        col=col,
                        message=(
                            f"per-name gate {target!r} acquired while holding "
                            f"catalog-wide lock {held!r}; the serving stack's "
                            "order is gate first, catalog lock inside it — "
                            "the reverse deadlocks against gate-holders "
                            "waiting on the catalog lock"
                        ),
                    )
                )
    cycle = _find_cycle(graph)
    if cycle is not None:
        first_edge = graph[cycle[0]][cycle[1]]
        findings.append(
            Finding(
                rule=CODE,
                path=module.display,
                line=first_edge[0],
                col=first_edge[1],
                message=(
                    "lock acquisition cycle "
                    + " -> ".join(cycle)
                    + "; two code paths take these locks in different orders "
                    "(AB/BA deadlock) — pick one order and hoist the "
                    "acquisitions"
                ),
            )
        )
    return findings
