"""RL003 — no blocking calls lexically inside ``async def`` in the server.

The asyncio dispatcher is the one thread every connection shares; a single
blocking call on it — a sleep, file or socket I/O, a pickle of a 100k-cell
cube, a synchronous lock acquire — stalls *every* in-flight request, which
is precisely the failure mode the server's executor offloads exist to
prevent.  Scope: modules under ``repro/server/`` (the only package whose
code runs on the event loop).

Flagged inside ``async def`` bodies:

* ``time.sleep(...)``;
* builtin ``open(...)`` / ``os.fdopen`` / ``io.open`` — file I/O;
* any ``pickle.*`` / ``subprocess.*`` / ``socket.*`` call, plus
  ``os.system`` / ``os.popen``;
* synchronous ``.acquire()`` (also ``acquire_read``/``acquire_write``) on a
  lock — asyncio lock acquires are fine when awaited.

Exempt: the awaited expression itself (``await lock.acquire()``), arguments
of ``asyncio.wait_for``/``shield``/``gather``/``ensure_future`` (the
server's timeout-bounded acquire), anything handed to
``run_in_executor``/``asyncio.to_thread``, and the bodies of *synchronous*
functions nested inside the coroutine (they execute wherever they are later
called, typically on an executor).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Optional, Set

from ..findings import Finding
from .common import (
    ACQUIRE_METHODS,
    dotted_name,
    in_scope,
    is_lockish_name,
    last_segment,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ParsedModule

CODE = "RL003"
NAME = "blocking-in-async"

#: Exact dotted names that block.
BLOCKING_CALLS = {
    "time.sleep",
    "open",
    "io.open",
    "os.fdopen",
    "os.system",
    "os.popen",
    "socket.create_connection",
}
#: Any call into these modules blocks (or burns enough CPU to count).
BLOCKING_MODULES = {"pickle", "subprocess", "socket"}
#: Wrappers whose arguments run off the event loop (or under its timeout).
OFFLOAD_CALLEES = {"run_in_executor", "to_thread"}
AWAIT_WRAPPERS = {"wait_for", "shield", "gather", "ensure_future", "wait"}


def _blocking_reason(node: ast.Call) -> Optional[str]:
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    if dotted in BLOCKING_CALLS:
        return f"{dotted}() blocks the event loop"
    root = dotted.split(".")[0]
    if root in BLOCKING_MODULES and "." in dotted:
        return f"{dotted}() blocks the event loop"
    if isinstance(node.func, ast.Attribute) and node.func.attr in ACQUIRE_METHODS:
        receiver = dotted_name(node.func.value)
        if receiver is not None and (
            is_lockish_name(last_segment(receiver))
            or node.func.attr != "acquire"
        ):
            return (
                f"synchronous {receiver}.{node.func.attr}() on the event "
                "loop; await it (asyncio lock) or move the work to an "
                "executor"
            )
    return None


def _exempt_subtrees(coroutine: ast.AST) -> Set[int]:
    """ids of nodes whose descendants must not be flagged."""
    exempt: Set[int] = set()

    def mark(node: ast.AST) -> None:
        for child in ast.walk(node):
            exempt.add(id(child))

    for node in ast.walk(coroutine):
        if isinstance(node, ast.Await):
            # The awaited call itself yields to the loop.  Its *arguments*
            # are only exempt under the known wrapper callees below.
            if isinstance(node.value, ast.Call):
                exempt.add(id(node.value))
                exempt.add(id(node.value.func))
        elif isinstance(node, ast.Call):
            func = node.func
            callee = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if callee in OFFLOAD_CALLEES or callee in AWAIT_WRAPPERS:
                for argument in [*node.args, *node.keywords]:
                    mark(argument)
        elif node is not coroutine and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            # Nested sync defs run wherever they are called (usually an
            # executor); nested async defs are visited as coroutines in
            # their own right by check().
            mark(node)
    return exempt


def check(module: "ParsedModule") -> List[Finding]:
    if not in_scope(module.display, "repro/server"):
        return []
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        exempt = _exempt_subtrees(node)
        for call in ast.walk(node):
            if not isinstance(call, ast.Call) or id(call) in exempt:
                continue
            reason = _blocking_reason(call)
            if reason is not None:
                findings.append(
                    Finding(
                        rule=CODE,
                        path=module.display,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"{reason} inside async def {node.name!r}; wrap "
                            "it in loop.run_in_executor()/asyncio.to_thread()"
                        ),
                    )
                )
    return findings
