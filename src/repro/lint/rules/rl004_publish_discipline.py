"""RL004 — publish discipline: published cubes are swapped, never mutated.

The concurrent serving contract (PR 4) is copy-on-publish: readers answer
against the *published* ``CubeResult`` while maintenance merges into a
private ``clone()`` and lands the result with one atomic reference swap.  A
mutating call on the published object itself — ``serving.cube.merge(...)``,
``self.cube.upsert(...)`` — races every in-flight query with a half-applied
merge.  Only :mod:`repro.incremental.maintainer` (the one module that owns
the publish sequence, including the deliberately single-threaded in-place
mode) may mutate a cube it did not just create.

Flagged: calls to a ``CubeResult`` mutator (``merge``/``upsert``/``remove``/
``add``/``shift_rep_tids``) whose receiver is a ``.cube`` attribute chain
rooted in ``self``/a parameter/module state — i.e. an object that existed
before the function ran and may be published.  The same discipline covers
the adaptive rollup layer (``src/repro/rollup/``): an installed
``RollupTable`` is read by concurrent queries exactly like the cube, so
``.rollup``/``.rollups`` receiver chains are held to the same contract —
maintenance derives a fresh table (``merged_delta``) and swaps it in the
engine's publish section.  Exempt: receivers that are locally *created* in
the same function (assigned from any call — ``clone()``, ``run()``, a
constructor), because a value born in the function cannot be published yet;
the swap that publishes it is an assignment, which this rule never flags.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..findings import Finding
from .common import dotted_name, iter_functions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ParsedModule

CODE = "RL004"
NAME = "publish-discipline"

#: CubeResult's mutating methods.
MUTATORS = {"merge", "upsert", "remove", "add", "shift_rep_tids"}

#: The one module allowed to mutate a pre-existing cube (it owns the
#: publish sequence and the documented single-threaded in-place mode).
EXEMPT_SUFFIXES = ("incremental/maintainer.py",)

#: Attribute-chain tails that name a publishable aggregate: the served cube
#: and the installed rollup tables (read concurrently under the same lock).
PUBLISHED_TAILS = ("cube", "rollup", "rollups")


def _local_bindings(function: ast.AST) -> Dict[str, Optional[str]]:
    """name -> source chain for simple local assignments.

    ``None`` marks a name bound from a call (a freshly created object); a
    dotted string marks an alias of an attribute chain.  Re-assignment keeps
    the *most permissive* view conservative: once a name has ever aliased an
    attribute chain, it stays an alias.
    """
    bindings: Dict[str, Optional[str]] = {}
    for node in ast.walk(function):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, ast.Call):
            bindings.setdefault(target.id, None)
        else:
            chain = dotted_name(node.value)
            if chain is not None:
                bindings[target.id] = chain
    return bindings


def _published_receiver(
    receiver: ast.expr, bindings: Dict[str, Optional[str]]
) -> Optional[str]:
    """The resolved chain when ``receiver`` may be a published cube."""
    chain = dotted_name(receiver)
    if chain is None or chain.endswith("()"):
        # A call result (``....clone().merge(...)``) is a fresh object.
        return None
    parts = chain.split(".")
    root = parts[0]
    resolved = bindings.get(root, root)
    if resolved is None:
        return None  # bound from a call in this function: locally created
    resolved_chain = ".".join([resolved, *parts[1:]])
    # Require a dotted ``<owner>.cube`` (or ``.rollup``/``.rollups``) chain:
    # an aggregate reachable *from a field* may be published; a bare local/
    # parameter named ``cube`` (the load path folding segments into a cube
    # nothing references yet) is not provably reachable by readers.
    if "." in resolved_chain and resolved_chain.split(".")[-1] in PUBLISHED_TAILS:
        return resolved_chain
    return None


def check(module: "ParsedModule") -> List[Finding]:
    display = module.display.replace("\\", "/")
    if any(display.endswith(suffix) for suffix in EXEMPT_SUFFIXES):
        return []
    findings: List[Finding] = []
    seen: Set[int] = set()
    for function, _is_async in iter_functions(module.tree):
        bindings = _local_bindings(function)
        for node in ast.walk(function):
            if (
                not isinstance(node, ast.Call)
                or id(node) in seen
                or not isinstance(node.func, ast.Attribute)
                or node.func.attr not in MUTATORS
            ):
                continue
            seen.add(id(node))  # nested defs are walked again by iter_functions
            resolved = _published_receiver(node.func.value, bindings)
            if resolved is None:
                continue
            findings.append(
                Finding(
                    rule=CODE,
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{resolved}.{node.func.attr}() mutates a cube that "
                        "may be published to concurrent readers; merge into "
                        "a clone() and publish it with an atomic swap (see "
                        "repro.incremental.maintainer), or route the change "
                        "through the maintainer"
                    ),
                )
            )
    return findings
