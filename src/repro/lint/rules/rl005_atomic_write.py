"""RL005 — atomic-write discipline for durable artifacts.

Everything durable in the storage/catalog layer — snapshots, delta
segments, the manifest, journal rewrites — must reach disk through the
same-directory temp-file + ``os.replace`` protocol in
:mod:`repro.storage.atomic`.  A plain ``open(path, "w")`` is a window where
a crash leaves a *half-written* file under the final name: a torn snapshot
that fails its CRC at best, a silently short manifest at worst.  The append
journals are the one designed exception — they are append-only (``"a"``)
and the loader tolerates exactly one torn tail line, which is why append
mode is not flagged.

Scope: modules under ``repro/storage/``, ``repro/catalog/``, and
``repro/replication/`` (follower cursor files are durable artifacts too:
a torn cursor would silently re-read or skip journal bytes).  Flagged:
``open``/``os.fdopen``/``io.open`` with a creating-or-truncating mode
(``"w"``, ``"wb"``, ``"x"``, ``"w+"`` ...) and ``pathlib``-style
``.write_text()``/``.write_bytes()`` calls.  The helper module
``repro/storage/atomic.py`` itself is exempt — it is the one place the raw
pattern is allowed to live.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Optional

from ..findings import Finding
from .common import dotted_name, in_scope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ParsedModule

CODE = "RL005"
NAME = "atomic-write"

#: The blessed helper module (the raw tmp+rename pattern lives here).
HELPER_SUFFIX = "repro/storage/atomic.py"

OPENERS = {"open", "io.open", "os.fdopen"}
PATH_WRITERS = {"write_text", "write_bytes"}


def _write_mode(node: ast.Call) -> Optional[str]:
    """The creating/truncating mode string of an open call, if any."""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return None
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if "w" in mode.value or "x" in mode.value:
            return mode.value
        return None
    # A computed mode cannot be proven safe; treat it as a write.
    return "<dynamic>"


def check(module: "ParsedModule") -> List[Finding]:
    display = module.display.replace("\\", "/")
    if not in_scope(display, "repro/storage", "repro/catalog",
                    "repro/replication"):
        return []
    if display.endswith(HELPER_SUFFIX):
        return []
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted in OPENERS:
            mode = _write_mode(node)
            if mode is None:
                continue
            message = (
                f"open(..., {mode!r}) on a durable artifact can crash into a "
                "half-written file under its final name; write through "
                "repro.storage.atomic (temp file + os.replace)"
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in PATH_WRITERS
        ):
            message = (
                f".{node.func.attr}() truncates in place; write through "
                "repro.storage.atomic (temp file + os.replace)"
            )
        else:
            continue
        findings.append(
            Finding(
                rule=CODE,
                path=module.display,
                line=node.lineno,
                col=node.col_offset,
                message=message,
            )
        )
    return findings
