"""RL006 — seeded randomness in benchmarks, load generation, and data gen.

A benchmark that cannot be replayed cannot be debugged: the perf-gate CI
jobs, the open-loop load harness, and the synthetic datasets all promise
that the same seed reproduces the same run bit-for-bit.  The module-level
``random.*`` functions draw from one hidden, process-global, unseeded
generator — any library call can perturb it, and two concurrent users
interleave draws nondeterministically.  ``random.Random()`` without a seed
is the same problem with extra steps.

Scope: ``benchmarks/``, ``repro/loadgen/``, ``repro/datagen/``, and
``repro/rollup/`` (the shape recorder's sampling must replay exactly — the
advisor's materialisation plan is a function of the log, so an unseeded
sampler would make rollup selection nondeterministic run to run).  Flagged:

* ``random.Random()`` (or a bare imported ``Random()``) with no seed
  argument;
* any module-level ``random.<fn>(...)`` call — including ``random.seed``:
  seeding the *global* generator still shares it with everything else in
  the process;
* calls to functions imported from :mod:`random` (``from random import
  choice``), which hide the same global generator.

The fix is always the same: make an explicit ``random.Random(seed)``
instance and thread it through.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Set

from ..findings import Finding
from .common import dotted_name, in_scope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ParsedModule

CODE = "RL006"
NAME = "seeded-randomness"

FIX = "; use an explicit random.Random(seed) instance instead"


def _from_random_imports(tree: ast.AST) -> Set[str]:
    """Local names bound by ``from random import ...``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def check(module: "ParsedModule") -> List[Finding]:
    if not in_scope(
        module.display, "benchmarks", "repro/loadgen", "repro/datagen",
        "repro/rollup",
    ):
        return []
    imported = _from_random_imports(module.tree)
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is None:
            continue
        message = None
        if dotted == "random.Random" or (
            dotted == "Random" and "Random" in imported
        ):
            if not node.args and not node.keywords:
                message = f"{dotted}() constructed without a seed{FIX}"
        elif dotted.startswith("random."):
            message = (
                f"{dotted}() draws from the process-global unseeded "
                f"generator{FIX}"
            )
        elif "." not in dotted and dotted in imported:
            message = (
                f"{dotted}() (imported from random) draws from the "
                f"process-global unseeded generator{FIX}"
            )
        if message is not None:
            findings.append(
                Finding(
                    rule=CODE,
                    path=module.display,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )
            )
    return findings
