"""RL007 — no ``await`` while holding a synchronous lock.

A coroutine that awaits inside ``with some_lock:`` parks *holding the
lock*: the event loop runs other tasks, and any of them — or any executor
thread — that touches the same lock blocks for as long as the first task
stays parked.  With a ``threading.Lock`` that is an instant deadlock when
the awaited work needs the loop's thread; with the serving stack's RWLock
it silently serialises every reader behind one suspended writer.  This is
the natural hazard of mixing the incremental layer's chunked, yielding
merges (:func:`repro.incremental.merge.merge_closed_cubes` with
``yield_between_batches``) into async code: yield points must never sit
inside a synchronous critical section.

Flagged: any ``await`` lexically inside the body of a *synchronous*
``with`` whose context expression is lock-ish (``with self._lock:``,
``with gate(name):``, ``with lock.read():`` — the shapes
:func:`repro.lint.rules.common.lock_acquisition_key` recognises).

Exempt:

* ``async with`` on an asyncio lock — awaiting is exactly how those locks
  cooperate with the loop;
* nested function bodies (sync or async) defined inside the ``with`` —
  they execute when later called, not while the lock is held.

The fix is structural, not cosmetic: either complete the critical section
before awaiting, hand the lock-holding work to an executor thread, or use
an ``asyncio.Lock`` and ``async with``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Tuple

from ..findings import Finding
from .common import lock_acquisition_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import ParsedModule

CODE = "RL007"
NAME = "await-under-sync-lock"


def _awaits_in_body(nodes: List[ast.stmt]) -> Iterator[ast.Await]:
    """Every ``await`` executed while the enclosing ``with`` is held.

    Iterative walk that stops at nested function/lambda boundaries: their
    bodies run when the object is later called, not under this lock.
    """
    stack: List[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Await):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _lock_keys(with_node: ast.With) -> List[Tuple[str, ast.expr]]:
    keys: List[Tuple[str, ast.expr]] = []
    for item in with_node.items:
        key = lock_acquisition_key(item.context_expr)
        if key is not None:
            keys.append((key, item.context_expr))
    return keys


def check(module: "ParsedModule") -> List[Finding]:
    # ``await`` is only legal inside ``async def``, so every hit below is in
    # a coroutine by construction; no scope gate — the hazard is the same in
    # any package.
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.With):
            continue
        keys = _lock_keys(node)
        if not keys:
            continue
        held = ", ".join(key for key, _ in keys)
        for awaited in sorted(
            _awaits_in_body(node.body), key=lambda n: (n.lineno, n.col_offset)
        ):
            findings.append(
                Finding(
                    rule=CODE,
                    path=module.display,
                    line=awaited.lineno,
                    col=awaited.col_offset,
                    message=(
                        f"await while holding synchronous lock {held}; the "
                        "coroutine parks with the lock held and blocks every "
                        "other acquirer — finish the critical section first, "
                        "offload it to an executor, or use asyncio.Lock with "
                        "'async with'"
                    ),
                )
            )
    return findings
