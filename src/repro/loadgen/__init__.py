"""repro.loadgen: an open-loop load harness with honest tail latencies.

The serving stack's earlier benchmark gates all measure *closed-loop
throughput ratios* — how fast a fixed workload drains.  The metric that
matters for a serving system is different: latency at a controlled
**offered** load.  This package provides that measurement, pure python,
no dependencies:

* :class:`~repro.loadgen.histogram.LatencyHistogram` — HDR-style
  log-bucketed histogram (bounded relative error, O(1) record);
* :func:`~repro.loadgen.schedule.poisson_arrivals` — deterministic
  open-loop arrival schedules;
* :class:`~repro.loadgen.workload.MixedWorkload` /
  :func:`~repro.loadgen.workload.serving_mix` — weighted
  query/append/compact traffic classes speaking the TCP line-JSON
  protocol;
* :class:`~repro.loadgen.client.LineConnection` — a pipelined TCP client
  with per-request timeouts;
* :class:`~repro.loadgen.replayer.OpenLoopReplayer` — fires each request
  at its pre-scheduled instant regardless of response progress and
  measures latency from the scheduled arrival, so server stalls inflate
  the recorded tail instead of silently suppressing load (no coordinated
  omission);
* :func:`~repro.loadgen.sweep.sweep_rates` /
  :func:`~repro.loadgen.sweep.find_knee` — offered-load sweeps locating
  the saturation knee;
* :class:`~repro.loadgen.faults.FaultyProxy` — a fault-injection TCP
  proxy (torn lines, mid-response aborts, slow-loris) for the protocol
  hardening tests.

``benchmarks/bench_load_slo.py`` assembles these into the CI tail-latency
SLO gate; ``docs/LOAD_TESTING.md`` is the operator's guide.
"""

from .client import LineConnection, open_pools
from .faults import FAULT_MODES, FaultyProxy
from .histogram import LatencyHistogram
from .replayer import ClassStats, LoadResult, OpenLoopReplayer
from .schedule import arrival_times, poisson_arrivals
from .sweep import SweepPoint, find_knee, render_sweep, sweep_rates
from .workload import MixedWorkload, TrafficClass, serving_mix

__all__ = [
    "LatencyHistogram",
    "poisson_arrivals",
    "arrival_times",
    "MixedWorkload",
    "TrafficClass",
    "serving_mix",
    "LineConnection",
    "open_pools",
    "OpenLoopReplayer",
    "ClassStats",
    "LoadResult",
    "SweepPoint",
    "sweep_rates",
    "find_knee",
    "render_sweep",
    "FaultyProxy",
    "FAULT_MODES",
]
