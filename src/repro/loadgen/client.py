"""A pipelined line-JSON TCP client with per-request timeouts.

:class:`LineConnection` speaks the :mod:`repro.server.tcp` protocol: one
JSON object per line each way, responses in request order per connection.
It pipelines — ``request()`` writes immediately and never waits for earlier
responses to come back — which is exactly what the open-loop replayer
needs: a slow response must delay the *recording* of the requests queued
behind it (that queueing is real latency), not their *sending*.

A background reader task matches response lines to pending futures FIFO.
Per-request timeouts make a wedged server surface as
:class:`asyncio.TimeoutError` at the caller instead of hanging it forever;
a timed-out request's slot stays in the FIFO so later responses still pair
with the right requests.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["LineConnection", "open_pools"]


class LineConnection:
    """One pipelined connection to a ``repro.server`` TCP endpoint."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Deque["asyncio.Future[Dict[str, object]]"] = deque()
        self._write_lock = asyncio.Lock()
        self._broken: Optional[BaseException] = None
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def open(cls, host: str, port: int) -> "LineConnection":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                response = json.loads(line)
                if self._pending:
                    future = self._pending.popleft()
                    if not future.done():
                        future.set_result(response)
        except asyncio.CancelledError:
            self._fail_pending(ConnectionError("connection closed"))
            raise
        except Exception as exc:
            self._broken = exc
            self._fail_pending(exc)

    def _fail_pending(self, exc: BaseException) -> None:
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(
                    ConnectionError(f"connection failed: {exc}")
                )

    async def request(
        self, payload: Dict[str, object], timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """Send one request line; await (up to ``timeout`` s) its response."""
        if self._broken is not None:
            raise ConnectionError(f"connection failed: {self._broken}")
        future: "asyncio.Future[Dict[str, object]]" = (
            asyncio.get_running_loop().create_future()
        )
        data = json.dumps(payload).encode() + b"\n"
        async with self._write_lock:
            if self._broken is not None:
                raise ConnectionError(f"connection failed: {self._broken}")
            self._pending.append(future)
            self._writer.write(data)
            try:
                await self._writer.drain()
            except (ConnectionError, OSError) as exc:
                if not future.done():
                    future.set_exception(
                        ConnectionError(f"connection failed: {exc}")
                    )
        if timeout is None:
            return await future
        return await asyncio.wait_for(future, timeout)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def open_pools(
    endpoints_by_class: Mapping[str, Sequence[Tuple[str, int]]],
) -> Dict[str, List[LineConnection]]:
    """Open one connection per ``(host, port)`` per traffic class.

    The shape :class:`~repro.loadgen.replayer.OpenLoopReplayer` takes as a
    per-class target mapping — and the way a replayer drives a *replicated*
    tier: point the read classes at follower endpoints and the write classes
    at the leader, e.g. ``{"query": [(h, 7172), (h, 7173)], "append":
    [(h, 7171)]}``.  A class can list one endpoint many times to widen its
    pool.  On any connect failure, every connection already opened is closed
    before the error propagates.
    """
    pools: Dict[str, List[LineConnection]] = {}
    try:
        for klass, endpoints in endpoints_by_class.items():
            connections = pools.setdefault(klass, [])
            for host, port in endpoints:
                connections.append(await LineConnection.open(host, port))
    except BaseException:
        for connections in pools.values():
            for connection in connections:
                await connection.close()
        raise
    return pools
