"""A test-only TCP fault-injection proxy for protocol-hardening tests.

:class:`FaultyProxy` sits between a client and a ``repro.server`` TCP
endpoint and misbehaves on purpose, so the tests can hand the server the
exact network pathologies production will: connections torn mid-request
(partial JSON with no newline), corrupted lines, connections aborted while
a response is in flight, and slow-loris writers that dribble one byte at a
time.  The server's contract under all of them: answer ``{"ok": false}``
where a response is still possible, otherwise drop the one connection
cleanly — never poison other connections, never leak per-cube queue slots.

This lives in :mod:`repro.loadgen` (not ``tests/``) because it is part of
the load-harness toolkit: fault schedules compose with the replayer for
soak-style runs, and keeping it importable means the docs' examples run.
Fault modes (fixed per proxy instance; run one proxy per scenario):

``none``
    Transparent passthrough (the control case).
``torn_request``
    Forward only the first ``fault_bytes`` of the client's bytes upstream,
    then abort the upstream half — the server sees a torn line + EOF.
``corrupt_line``
    Truncate the client's line to ``fault_bytes`` bytes but still deliver
    a newline — the server sees syntactically broken JSON and must answer.
``abort_mid_response``
    Forward the request intact, relay ``fault_bytes`` bytes of the
    response downstream, then RST both halves — the server's remaining
    writes hit a dead socket.
``slow_loris``
    Dribble the client's bytes upstream one at a time, ``delay`` seconds
    apart — the classic head-of-line attack; other connections must keep
    being served meanwhile.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Set

__all__ = ["FaultyProxy", "FAULT_MODES"]

FAULT_MODES = (
    "none", "torn_request", "corrupt_line", "abort_mid_response", "slow_loris"
)


def _abort(writer: asyncio.StreamWriter) -> None:
    """Hard-close (RST, no FIN handshake) — the rudest realistic failure."""
    transport = writer.transport
    if transport is not None:
        transport.abort()


class FaultyProxy:
    """Forward 127.0.0.1 TCP traffic to ``(upstream_host, upstream_port)``,
    injecting the configured fault on every connection it accepts."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        fault: str = "none",
        fault_bytes: int = 8,
        delay: float = 0.05,
    ) -> None:
        if fault not in FAULT_MODES:
            raise ValueError(f"unknown fault {fault!r}; pick from {FAULT_MODES}")
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.fault = fault
        self.fault_bytes = fault_bytes
        self.delay = delay
        self.port: Optional[int] = None
        self.connections = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set["asyncio.Task[None]"] = set()

    async def start(self) -> "FaultyProxy":
        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "FaultyProxy":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Per-connection fault logic                                         #
    # ------------------------------------------------------------------ #

    async def _handle(
        self, client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        self.connections += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            _abort(client_writer)
            return
        loop = asyncio.get_running_loop()
        up_task = loop.create_task(
            self._pump_upstream(client_reader, up_writer, client_writer)
        )
        down_task = loop.create_task(
            self._pump_downstream(up_reader, client_writer, up_writer)
        )
        for task in (up_task, down_task):
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _pump_upstream(
        self, client_reader: asyncio.StreamReader,
        up_writer: asyncio.StreamWriter,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        """Client → server direction; carries the request-side faults."""
        try:
            while True:
                chunk = await client_reader.read(65536)
                if not chunk:
                    break
                if self.fault == "torn_request":
                    up_writer.write(chunk[: self.fault_bytes])
                    await up_writer.drain()
                    _abort(up_writer)
                    return
                if self.fault == "corrupt_line":
                    up_writer.write(chunk[: self.fault_bytes] + b"\n")
                    await up_writer.drain()
                    continue
                if self.fault == "slow_loris":
                    for index in range(len(chunk)):
                        up_writer.write(chunk[index : index + 1])
                        await up_writer.drain()
                        await asyncio.sleep(self.delay)
                    continue
                up_writer.write(chunk)
                await up_writer.drain()
            try:
                up_writer.write_eof()
            except (OSError, RuntimeError):
                pass
        except (ConnectionError, OSError):
            _abort(up_writer)
            _abort(client_writer)

    async def _pump_downstream(
        self, up_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        up_writer: asyncio.StreamWriter,
    ) -> None:
        """Server → client direction; carries the mid-response abort."""
        relayed = 0
        try:
            while True:
                chunk = await up_reader.read(65536)
                if not chunk:
                    break
                if self.fault == "abort_mid_response":
                    client_writer.write(chunk[: self.fault_bytes])
                    await client_writer.drain()
                    relayed += len(chunk)
                    # Tear both halves down while the response is mid-air.
                    _abort(up_writer)
                    _abort(client_writer)
                    return
                client_writer.write(chunk)
                await client_writer.drain()
                relayed += len(chunk)
            client_writer.close()
        except (ConnectionError, OSError):
            _abort(client_writer)
