"""An HDR-style log-bucketed latency histogram, pure python, no deps.

Latency distributions span four-plus orders of magnitude (microsecond index
hits to multi-second merges), so fixed-width buckets either waste memory or
destroy tail resolution.  :class:`LatencyHistogram` buckets geometrically —
every bucket is ``growth`` times wider than the previous one — which bounds
the *relative* quantile error by a constant (``max_relative_error``)
independent of where in the range a sample lands.  That is the property HDR
histograms are built around; this is the dependency-free core of it.

Recording is O(1) (one ``log``), memory is O(buckets touched) (a dict), and
percentile queries walk the touched buckets in order.  Exact minimum and
maximum are tracked on the side so the extreme quantiles (p0, p100) are
reported exactly rather than at bucket resolution.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Log-bucketed histogram of non-negative values (typically seconds).

    Parameters
    ----------
    lowest:
        Smallest distinguishable value; everything below it (including 0)
        lands in the first bucket.  Default 1 microsecond.
    max_relative_error:
        Worst-case relative error of a reported percentile, which fixes the
        bucket growth factor.  The default 1% keeps a 1µs–300s range in
        under ~2000 touched buckets.
    """

    __slots__ = ("lowest", "max_relative_error", "_growth", "_log_growth",
                 "_counts", "_total", "_sum", "_min", "_max")

    def __init__(self, lowest: float = 1e-6,
                 max_relative_error: float = 0.01) -> None:
        if lowest <= 0:
            raise ValueError("lowest must be positive")
        if not 0 < max_relative_error < 1:
            raise ValueError("max_relative_error must be in (0, 1)")
        self.lowest = lowest
        self.max_relative_error = max_relative_error
        # A value is reported as its bucket's geometric midpoint, so the
        # worst case sits half a bucket away: growth = (1 + e)^2 keeps
        # midpoint-to-edge distance within e of the true value.
        self._growth = (1.0 + max_relative_error) ** 2
        self._log_growth = math.log(self._growth)
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Recording                                                          #
    # ------------------------------------------------------------------ #

    def _index(self, value: float) -> int:
        if value <= self.lowest:
            return 0
        return int(math.log(value / self.lowest) / self._log_growth) + 1

    def _value_at(self, index: int) -> float:
        if index == 0:
            return self.lowest
        # Geometric midpoint of the bucket's [low, high) edge pair.
        return self.lowest * self._growth ** (index - 0.5)

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times, for batch observations)."""
        if value < 0:
            raise ValueError("latency cannot be negative")
        if count <= 0:
            return
        index = self._index(value)
        self._counts[index] = self._counts.get(index, 0) + count
        self._total += count
        self._sum += value * count
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same bucketing) into this one."""
        if (other.lowest != self.lowest
                or other.max_relative_error != self.max_relative_error):
            raise ValueError("cannot merge histograms with different bucketing")
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self._total += other._total
        self._sum += other._sum
        for bound in (other._min, other._max):
            if bound is None:
                continue
            if self._min is None or bound < self._min:
                self._min = bound
            if self._max is None or bound > self._max:
                self._max = bound

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    @property
    def count(self) -> int:
        return self._total

    @property
    def min(self) -> float:
        return 0.0 if self._min is None else self._min

    @property
    def max(self) -> float:
        return 0.0 if self._max is None else self._max

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    def percentile(self, p: float) -> float:
        """The value at percentile ``p`` (0–100), within the error bound."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._total:
            return 0.0
        if p == 0:
            return self.min
        if p == 100:
            return self.max
        # The nearest-rank quantile over bucket representatives.
        rank = max(1, math.ceil(self._total * p / 100.0))
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= rank:
                value = self._value_at(index)
                # Never report outside the observed range: the first and
                # last buckets may be wider than the data they hold.
                return min(max(value, self.min), self.max)
        return self.max  # pragma: no cover - rank <= total always hits

    def percentiles(self, ps: Iterable[float]) -> Dict[float, float]:
        return {p: self.percentile(p) for p in ps}

    def summary(self, unit_scale: float = 1000.0, digits: int = 3) -> Dict[str, float]:
        """The standard reporting envelope, scaled (seconds → ms by default)."""
        return {
            "count": self._total,
            "mean_ms": round(self.mean * unit_scale, digits),
            "p50_ms": round(self.percentile(50) * unit_scale, digits),
            "p90_ms": round(self.percentile(90) * unit_scale, digits),
            "p99_ms": round(self.percentile(99) * unit_scale, digits),
            "p999_ms": round(self.percentile(99.9) * unit_scale, digits),
            "max_ms": round(self.max * unit_scale, digits),
        }

    def __len__(self) -> int:
        return self._total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._total:
            return "LatencyHistogram(empty)"
        return (f"LatencyHistogram(count={self._total}, "
                f"p50={self.percentile(50):.6f}, p99={self.percentile(99):.6f}, "
                f"max={self.max:.6f})")
