"""The open-loop workload replayer: controlled offered load, honest tails.

:class:`OpenLoopReplayer` fires requests at the instants a pre-computed
Poisson schedule dictates, **independently of response times**: nothing in
the dispatch loop ever awaits a response.  Each request's latency is
measured from its *scheduled arrival time* to its completion, so when the
server (or the client's own connection) stalls, the requests that pile up
behind the stall record the queueing delay they actually suffered.  A
closed-loop generator would have simply not sent them and reported a clean
p99 — the coordinated-omission lie this replayer exists to avoid (and that
``tests/test_loadgen.py`` pins with a regression test).

Targets are anything with ``async request(payload, timeout) -> response``
(the pipelined :class:`~repro.loadgen.client.LineConnection` in production,
fakes in the tests).  Pass a list to share targets round-robin across all
traffic, or a ``{class_name: [targets]}`` mapping to give each traffic
class its own connections — recommended, since a pipelined connection
answers in order and a multi-hundred-ms append would otherwise inflate the
latency of every query queued behind it on the same socket.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .histogram import LatencyHistogram
from .schedule import poisson_arrivals
from .workload import MixedWorkload

__all__ = ["ClassStats", "LoadResult", "OpenLoopReplayer"]


@dataclass
class ClassStats:
    """Per-traffic-class outcome counters and the latency histogram."""

    name: str
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    sent: int = 0
    completed: int = 0
    protocol_errors: int = 0
    transport_errors: int = 0
    timeouts: int = 0

    @property
    def errors(self) -> int:
        return self.protocol_errors + self.transport_errors + self.timeouts

    def to_dict(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "sent": self.sent,
            "completed": self.completed,
            "protocol_errors": self.protocol_errors,
            "transport_errors": self.transport_errors,
            "timeouts": self.timeouts,
        }
        summary.update(self.histogram.summary())
        return summary


@dataclass
class LoadResult:
    """One replay run: offered vs achieved load, per-class stats."""

    offered_rate: float
    duration: float
    elapsed: float
    classes: Dict[str, ClassStats]

    @property
    def sent(self) -> int:
        return sum(stats.sent for stats in self.classes.values())

    @property
    def completed(self) -> int:
        return sum(stats.completed for stats in self.classes.values())

    @property
    def errors(self) -> int:
        return sum(stats.errors for stats in self.classes.values())

    @property
    def achieved_rate(self) -> float:
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    def percentile(self, class_name: str, p: float) -> float:
        return self.classes[class_name].histogram.percentile(p)

    @classmethod
    def combine(cls, results: Sequence["LoadResult"]) -> "LoadResult":
        """Fold concurrent replays (e.g. one per traffic class, each at its
        own controlled rate) into one result; same-named classes merge."""
        if not results:
            raise ValueError("combine needs at least one result")
        classes: Dict[str, ClassStats] = {}
        for result in results:
            for name, stats in result.classes.items():
                into = classes.get(name)
                if into is None:
                    classes[name] = stats
                    continue
                into.histogram.merge(stats.histogram)
                into.sent += stats.sent
                into.completed += stats.completed
                into.protocol_errors += stats.protocol_errors
                into.transport_errors += stats.transport_errors
                into.timeouts += stats.timeouts
        return cls(
            offered_rate=sum(result.offered_rate for result in results),
            duration=max(result.duration for result in results),
            elapsed=max(result.elapsed for result in results),
            classes=classes,
        )

    def to_report(self) -> Dict[str, object]:
        """The JSON-shaped summary the SLO gate and the sweep CLI print."""
        return {
            "offered_rate": round(self.offered_rate, 3),
            "achieved_rate": round(self.achieved_rate, 3),
            "duration": round(self.duration, 3),
            "elapsed": round(self.elapsed, 3),
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "classes": {
                name: stats.to_dict() for name, stats in self.classes.items()
            },
        }


#: Anything with ``async request(payload, timeout=...) -> dict``.
Target = object
Targets = Union[Sequence[Target], Mapping[str, Sequence[Target]]]


class OpenLoopReplayer:
    """Replay a :class:`MixedWorkload` at a fixed Poisson offered rate.

    Parameters
    ----------
    targets:
        Request sinks — a shared list, or a per-class mapping (see the
        module docstring for why per-class connections matter).
    workload:
        The ``(class_name, request)`` stream to draw from.
    rate / duration:
        Offered load (requests/second) and how long to offer it.
    request_timeout:
        Per-request cap; a request still outstanding after this long is
        counted under ``timeouts`` (its latency is recorded too — a
        timed-out request is tail latency, not a missing sample).
    clock / sleep:
        Injectable for the deterministic harness self-tests.
    """

    def __init__(
        self,
        targets: Targets,
        workload: MixedWorkload,
        rate: float,
        duration: float,
        *,
        seed: int = 0,
        request_timeout: Optional[float] = 30.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], "asyncio.Future"] = asyncio.sleep,
    ) -> None:
        if rate <= 0 or duration <= 0:
            raise ValueError("rate and duration must be positive")
        self.rate = rate
        self.duration = duration
        self.seed = seed
        self.request_timeout = request_timeout
        self._clock = clock
        self._sleep = sleep
        self._workload = workload
        if isinstance(targets, Mapping):
            self._targets = {name: list(pool) for name, pool in targets.items()}
        else:
            pool = list(targets)
            self._targets = {name: pool for name in workload.class_names()}
        for name in workload.class_names():
            if not self._targets.get(name):
                raise ValueError(f"no targets for traffic class {name!r}")
        self._round_robin: Dict[str, int] = {name: 0 for name in self._targets}

    def _pick_target(self, class_name: str) -> Target:
        pool = self._targets[class_name]
        index = self._round_robin[class_name]
        self._round_robin[class_name] = (index + 1) % len(pool)
        return pool[index]

    async def run(self) -> LoadResult:
        """Offer the load; return once every in-flight request resolved."""
        stats = {
            name: ClassStats(name) for name in self._workload.class_names()
        }
        arrivals = poisson_arrivals(
            self.rate, duration=self.duration, seed=self.seed
        )
        requests: Iterable[Tuple[str, Dict[str, object]]] = iter(self._workload)
        loop = asyncio.get_running_loop()
        tasks: List["asyncio.Task[None]"] = []
        start = self._clock()
        for offset in arrivals:
            class_name, payload = next(requests)  # type: ignore[call-overload]
            scheduled = start + offset
            delay = scheduled - self._clock()
            if delay > 0:
                await self._sleep(delay)
            # Fire-and-track: the dispatch loop never awaits a response.
            tasks.append(loop.create_task(self._fire(
                stats[class_name], self._pick_target(class_name),
                payload, scheduled,
            )))
        if tasks:
            await asyncio.gather(*tasks)
        elapsed = self._clock() - start
        return LoadResult(
            offered_rate=self.rate,
            duration=self.duration,
            elapsed=elapsed,
            classes=stats,
        )

    async def _fire(
        self,
        stats: ClassStats,
        target: Target,
        payload: Dict[str, object],
        scheduled: float,
    ) -> None:
        stats.sent += 1
        try:
            response = await target.request(  # type: ignore[attr-defined]
                payload, timeout=self.request_timeout
            )
        except asyncio.TimeoutError:
            stats.timeouts += 1
            stats.histogram.record(max(0.0, self._clock() - scheduled))
        except (ConnectionError, OSError, EOFError):
            stats.transport_errors += 1
            stats.histogram.record(max(0.0, self._clock() - scheduled))
        else:
            # Latency from the *scheduled* arrival: client-side queueing
            # behind a stall is real latency the open-loop contract keeps.
            stats.histogram.record(max(0.0, self._clock() - scheduled))
            stats.completed += 1
            if not (isinstance(response, dict) and response.get("ok")):
                stats.protocol_errors += 1
