"""Open-loop arrival schedules: Poisson processes at a controlled rate.

The defining property of an *open-loop* load generator is that arrival
times are decided **before** any response comes back: the schedule models
an outside population of clients whose requests do not slow down because
the server got slow.  Closed-loop generators (issue, wait, issue) silently
stop offering load exactly when the server stalls — the *coordinated
omission* problem — and so report fantasy tail latencies.  Everything in
:mod:`repro.loadgen` therefore starts from a pre-computed schedule.

Schedules are plain generators of absolute offsets (seconds from the run's
start), deterministic in their seed so a run can be replayed exactly.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

__all__ = ["poisson_arrivals", "arrival_times"]


def poisson_arrivals(
    rate: float,
    *,
    duration: Optional[float] = None,
    count: Optional[int] = None,
    seed: int = 0,
    start: float = 0.0,
) -> Iterator[float]:
    """Yield absolute arrival offsets of a Poisson process at ``rate``/s.

    Inter-arrival gaps are exponential with mean ``1/rate`` — the memoryless
    arrival pattern of many independent clients.  Bound the stream with
    ``duration`` (seconds of offered load), ``count`` (number of arrivals),
    or both (whichever ends first).  Deterministic in ``seed``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive (arrivals per second)")
    if duration is None and count is None:
        raise ValueError("bound the schedule with duration= and/or count=")
    rng = random.Random(seed)
    clock = start
    emitted = 0
    while count is None or emitted < count:
        clock += rng.expovariate(rate)
        if duration is not None and clock - start >= duration:
            return
        yield clock
        emitted += 1


def arrival_times(
    rate: float,
    *,
    duration: Optional[float] = None,
    count: Optional[int] = None,
    seed: int = 0,
    start: float = 0.0,
) -> List[float]:
    """:func:`poisson_arrivals` materialised as a list."""
    return list(poisson_arrivals(
        rate, duration=duration, count=count, seed=seed, start=start
    ))
