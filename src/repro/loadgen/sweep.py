"""Offered-load sweeps: walk the rate axis, locate the saturation knee.

A latency-vs-offered-load curve has two regimes: flat (the server keeps up;
p99 is service time plus scheduling noise) and vertical (offered load
exceeds capacity; queues — and the open-loop replayer's recorded latencies
— grow without bound).  The *knee* is the boundary.  The SLO gate pins a
fixed sub-saturation rate; the sweep is the tool that tells you where that
knee actually is, so the pinned rate keeps meaning something as the
implementation evolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Sequence

from .replayer import LoadResult, OpenLoopReplayer

__all__ = ["SweepPoint", "sweep_rates", "find_knee", "render_sweep"]


@dataclass
class SweepPoint:
    """One sweep sample: the offered rate and its replay result."""

    rate: float
    result: LoadResult


async def sweep_rates(
    make_replayer: Callable[[float], OpenLoopReplayer],
    rates: Sequence[float],
    *,
    settle: Optional[Callable[[], Awaitable[None]]] = None,
) -> List[SweepPoint]:
    """Run one replay per rate, low to high; ``settle`` runs between points
    (drain queues / let compactions finish) so points stay independent."""
    points: List[SweepPoint] = []
    for rate in sorted(rates):
        replayer = make_replayer(rate)
        points.append(SweepPoint(rate, await replayer.run()))
        if settle is not None:
            await settle()
    return points


def find_knee(
    points: Sequence[SweepPoint],
    *,
    class_name: str = "query",
    percentile: float = 99.0,
    slo_seconds: float,
    min_completion: float = 0.95,
) -> Dict[str, object]:
    """Classify a sweep: the best rate still inside the SLO, and the knee.

    A point is *healthy* when its ``class_name`` tail percentile is within
    ``slo_seconds``, it completed at least ``min_completion`` of what it
    sent, and it recorded zero errors.  The knee is the first unhealthy
    rate (None if the sweep never saturated).
    """
    healthy: List[float] = []
    knee: Optional[float] = None
    rows: List[Dict[str, object]] = []
    for point in sorted(points, key=lambda p: p.rate):
        stats = point.result.classes.get(class_name)
        tail = stats.histogram.percentile(percentile) if stats else 0.0
        sent = point.result.sent
        completion = point.result.completed / sent if sent else 0.0
        ok = (
            tail <= slo_seconds
            and completion >= min_completion
            and point.result.errors == 0
        )
        rows.append({
            "rate": point.rate,
            "tail_seconds": tail,
            "completion": round(completion, 4),
            "errors": point.result.errors,
            "within_slo": ok,
        })
        if ok:
            healthy.append(point.rate)
        elif knee is None:
            knee = point.rate
    return {
        "class": class_name,
        "percentile": percentile,
        "slo_seconds": slo_seconds,
        "max_rate_within_slo": max(healthy) if healthy else None,
        "knee_rate": knee,
        "points": rows,
    }


def render_sweep(knee: Dict[str, object]) -> str:
    """A plain-text sweep table (the knee 'plot' for terminals and logs)."""
    lines = [
        f"{'rate':>10}  {'p' + str(knee['percentile']):>12}  "
        f"{'completion':>11}  {'errors':>7}  verdict"
    ]
    for row in knee["points"]:  # type: ignore[union-attr]
        verdict = "ok" if row["within_slo"] else "SATURATED"
        lines.append(
            f"{row['rate']:>10.1f}  {row['tail_seconds'] * 1000:>10.1f}ms  "
            f"{row['completion'] * 100:>10.1f}%  {row['errors']:>7}  {verdict}"
        )
    best = knee["max_rate_within_slo"]
    knee_rate = knee["knee_rate"]
    lines.append(
        f"max rate within SLO: "
        f"{'none' if best is None else f'{best:.1f}/s'}; knee at "
        f"{'not reached' if knee_rate is None else f'{knee_rate:.1f}/s'}"
    )
    return "\n".join(lines)
