"""Mixed traffic-class workloads for the load replayer.

A workload is a deterministic, seedable stream of ``(class_name, request)``
pairs, where each request is a line-JSON protocol payload
(:mod:`repro.server.tcp`).  Traffic classes carry a weight (their share of
offered load) and a payload factory; :func:`serving_mix` assembles the
standard serving mix — mostly point/rollup queries, a trickle of small
appends, an occasional compaction — the traffic shape the tail-latency SLO
gate (``benchmarks/bench_load_slo.py``) measures under.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Sequence, Tuple

__all__ = ["TrafficClass", "MixedWorkload", "serving_mix"]

#: A payload factory: rng in, one line-JSON request out.
RequestFactory = Callable[[random.Random], Dict[str, object]]


@dataclass(frozen=True)
class TrafficClass:
    """One class of traffic: a name, its share of offered load, a factory."""

    name: str
    weight: float
    make: RequestFactory

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"traffic class {self.name!r} has negative weight")


class MixedWorkload:
    """An endless, deterministic stream of weighted traffic-class requests."""

    def __init__(self, classes: Sequence[TrafficClass], seed: int = 0) -> None:
        active = [klass for klass in classes if klass.weight > 0]
        if not active:
            raise ValueError("a workload needs at least one positive-weight class")
        self.classes = list(active)
        self.seed = seed

    def class_names(self) -> List[str]:
        return [klass.name for klass in self.classes]

    def requests(self) -> Iterator[Tuple[str, Dict[str, object]]]:
        """Yield ``(class_name, request)`` forever, deterministically."""
        rng = random.Random(self.seed)
        weights = [klass.weight for klass in self.classes]
        while True:
            klass = rng.choices(self.classes, weights=weights)[0]
            yield klass.name, klass.make(rng)

    def __iter__(self) -> Iterator[Tuple[str, Dict[str, object]]]:
        return self.requests()


def serving_mix(
    cube: str,
    values: Mapping[str, Sequence[object]],
    *,
    query_weight: float = 0.992,
    append_weight: float = 0.006,
    compact_weight: float = 0.002,
    rollup_fraction: float = 0.02,
    append_rows: int = 2,
    seed: int = 0,
) -> MixedWorkload:
    """The standard serving mix against one cube over the TCP protocol.

    ``values`` maps each dimension name to the raw values appends and point
    queries draw from (pass the distinct values of the base relation).
    Queries are 1–3-dimension point probes plus a ``rollup_fraction`` share
    of single-dimension roll-ups; appends push ``append_rows`` random rows;
    compactions run in ``auto`` mode (cheap no-op unless the journal grew).
    """
    dimensions = list(values)
    if not dimensions:
        raise ValueError("serving_mix needs at least one dimension")
    pools = {dim: list(vals) for dim, vals in values.items()}

    def make_query(rng: random.Random) -> Dict[str, object]:
        if rng.random() < rollup_fraction:
            spec: Dict[str, object] = {
                "op": "rollup", "dims": [rng.choice(dimensions)]
            }
        else:
            picked = rng.sample(dimensions, rng.randint(1, min(3, len(dimensions))))
            spec = {dim: rng.choice(pools[dim]) for dim in picked}
        return {"op": "query", "cube": cube, "q": spec}

    def make_append(rng: random.Random) -> Dict[str, object]:
        rows = [
            [rng.choice(pools[dim]) for dim in dimensions]
            for _ in range(append_rows)
        ]
        return {"op": "append", "cube": cube, "rows": rows}

    def make_compact(rng: random.Random) -> Dict[str, object]:
        return {"op": "compact", "cube": cube, "mode": "auto"}

    return MixedWorkload(
        [
            TrafficClass("query", query_weight, make_query),
            TrafficClass("append", append_weight, make_append),
            TrafficClass("compact", compact_weight, make_compact),
        ],
        seed=seed,
    )
