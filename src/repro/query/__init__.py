"""Closure-query serving layer over materialised closed cubes.

The paper proves the closed cube is a *lossless* compression of the iceberg
cube; this package is the other half of that claim — actually answering
queries from the compressed form at serving speed:

* :mod:`repro.query.index` — inverted per-dimension index over materialised
  cells (posting-list intersection instead of full scans),
* :mod:`repro.query.cache` — LRU answer cache for skewed query traffic,
* :mod:`repro.query.queries` — the point / slice / roll-up query model,
* :mod:`repro.query.engine` — :class:`QueryEngine` over one cube and
  :class:`PartitionedQueryEngine` routing across partition shards.

Most callers go through :func:`repro.core.api.open_query_engine`::

    from repro import Relation, compute_closed_cube, open_query_engine

    cube = compute_closed_cube(relation, min_sup=2)
    engine = open_query_engine(cube)
    answer = engine.point((0, None, 0, None))
"""

from .cache import LRUCache
from .engine import (
    DEFAULT_CACHE_SIZE,
    PartitionedQueryEngine,
    QueryEngine,
    open_partitioned_query_engine,
)
from .index import CubeIndex
from .queries import PointQuery, Query, QueryAnswer, RollupQuery, SliceQuery, point

__all__ = [
    "CubeIndex",
    "LRUCache",
    "QueryEngine",
    "PartitionedQueryEngine",
    "open_partitioned_query_engine",
    "DEFAULT_CACHE_SIZE",
    "PointQuery",
    "SliceQuery",
    "RollupQuery",
    "Query",
    "QueryAnswer",
    "point",
]
