"""A small, thread-safe LRU result cache for the query engine.

Serving workloads are heavily skewed — a few dashboard cells absorb most of
the traffic — so even a modest least-recently-used cache in front of closure
resolution removes the bulk of the index work.  The cache is a plain
``OrderedDict`` with move-to-front on hit and tail eviction on overflow, plus
hit/miss/eviction counters the benchmark and the engine's ``stats()`` report.

Every operation (including :meth:`LRUCache.stats`, which snapshots all
counters in one consistent view) runs under one internal mutex: concurrent
serving (:mod:`repro.server`) hits these caches from query workers and
maintenance threads at once, and even a plain ``OrderedDict`` corrupts its
linked order under unsynchronised ``move_to_end`` / ``popitem`` interleaving.
The mutex is uncontended in single-threaded use and costs well under the
price of one closure lookup.

A :attr:`LRUCache.generation` counter increments on every ``clear`` and on
every targeted ``discard``; publish paths use it to detect that a cache was
invalidated between reading an entry and writing a derived one (the
copy-on-publish serving layer keys its stale-write checks on it).

A capacity of ``0`` disables caching entirely (every ``get`` misses, ``put``
is a no-op), which the throughput benchmark uses to isolate raw index speed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, List, Optional, TypeVar

V = TypeVar("V")

#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()


class LRUCache(Generic[V]):
    """Least-recently-used mapping with a fixed capacity and hit counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Bumped on every invalidation event (``clear`` or ``discard``);
        #: lets publishers detect a concurrent invalidation between a read
        #: and a dependent write.
        self.generation = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value for ``key``, refreshing its recency."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value  # type: ignore[return-value]

    def put(self, key: Hashable, value: V) -> None:
        """Insert or refresh ``key``; evict the least-recent entry on overflow."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def keys(self) -> List[Hashable]:
        """Snapshot of the cached keys, least-recently used first.

        Used by targeted invalidation: the serving layer inspects which cached
        answers a set of changed cells can affect and discards only those.
        """
        with self._lock:
            return list(self._entries)

    def discard(self, key: Hashable) -> bool:
        """Drop one entry if present (targeted invalidation, not an eviction).

        Returns ``True`` when the key was cached.  Unlike capacity evictions,
        discards are counted separately in :meth:`stats` so cache-behaviour
        dashboards can tell churn from invalidation.
        """
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.invalidations += 1
            self.generation += 1
            return True

    def put_if_generation(self, key: Hashable, value: V, generation: int) -> bool:
        """Insert ``key`` only if no invalidation happened since ``generation``.

        The copy-on-publish protocol: a reader snapshots :attr:`generation`
        before resolving an answer against the published cube version and
        writes the derived entry back through this method.  If a publish
        invalidated the cache in between (bumping the generation), the write
        is silently dropped — the resolved answer belongs to a superseded
        version and caching it would serve stale data forever.  Returns
        whether the entry was stored.
        """
        if self.capacity == 0:
            return False
        with self._lock:
            if self.generation != generation:
                return False
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return True

    def bump_generation(self) -> None:
        """Invalidate in-flight :meth:`put_if_generation` writers.

        Publish paths call this even when targeted invalidation dropped no
        entries: a reader may have resolved an answer for a *not-yet-cached*
        cell against the superseded version, and only a generation change
        stops it from writing that answer back after the publish.
        """
        with self._lock:
            self.generation += 1

    def clear(self) -> None:
        """Drop all entries; counters are preserved, the generation advances."""
        with self._lock:
            self._entries.clear()
            self.generation += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (``0.0`` before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """One atomic snapshot of every counter (consistent under concurrency)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "generation": self.generation,
                "hit_rate": round(hits / total, 4) if total else 0.0,
            }
