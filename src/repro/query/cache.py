"""A small LRU result cache for the query engine.

Serving workloads are heavily skewed — a few dashboard cells absorb most of
the traffic — so even a modest least-recently-used cache in front of closure
resolution removes the bulk of the index work.  The cache is a plain
``OrderedDict`` with move-to-front on hit and tail eviction on overflow, plus
hit/miss/eviction counters the benchmark and the engine's ``stats()`` report.

A capacity of ``0`` disables caching entirely (every ``get`` misses, ``put``
is a no-op), which the throughput benchmark uses to isolate raw index speed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

V = TypeVar("V")

#: Sentinel distinguishing "cached None" from "not cached".
_MISSING = object()


class LRUCache(Generic[V]):
    """Least-recently-used mapping with a fixed capacity and hit counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value for ``key``, refreshing its recency."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: Hashable, value: V) -> None:
        """Insert or refresh ``key``; evict the least-recent entry on overflow."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def keys(self) -> "list":
        """Snapshot of the cached keys, least-recently used first.

        Used by targeted invalidation: the serving layer inspects which cached
        answers a set of changed cells can affect and discards only those.
        """
        return list(self._entries)

    def discard(self, key: Hashable) -> bool:
        """Drop one entry if present (targeted invalidation, not an eviction).

        Returns ``True`` when the key was cached.  Unlike capacity evictions,
        discards are counted separately in :meth:`stats` so cache-behaviour
        dashboards can tell churn from invalidation.
        """
        if key not in self._entries:
            return False
        del self._entries[key]
        self.invalidations += 1
        return True

    def clear(self) -> None:
        """Drop all entries; counters are preserved."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (``0.0`` before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }
