"""Closure-query engines: serve point / slice / roll-up queries from a closed cube.

:class:`QueryEngine` fronts one materialised :class:`~repro.core.cube.
CubeResult` with the inverted :class:`~repro.query.index.CubeIndex` and an
:class:`~repro.query.cache.LRUCache` of answers, so that any cell of the cube
lattice — materialised or not — is answered in far less than a full scan:

* point queries resolve the query cell's *closure* (its maximum-count
  materialised specialisation, which by the quotient-cube property carries
  exactly the query cell's aggregate);
* slice queries enumerate the iceberg cells of one cuboid under fixed
  dimension values, driven entirely by the index (no recomputation);
* roll-up queries collapse dimensions of a cell to ``*`` and answer the
  resulting point.

:class:`PartitionedQueryEngine` serves the same queries over a cube computed
by :class:`repro.storage.partition.PartitionedCubeComputer`: it shards the
materialised cells by their value on the partitioning dimension and routes
each query to the shard(s) that can contain its closure, mirroring how the
partitioned *computation* split the data.

Engines track the cube they front: the :class:`QueryEngine` shares the cube's
live closure index (kept current in place by incremental merges) and exposes
:meth:`QueryEngine.invalidate` for the targeted answer-cache invalidation the
maintenance path needs; :class:`PartitionedQueryEngine.refresh` swaps in only
the shards a refresh touched.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.cell import Cell, make_cell, sort_key
from ..core.cube import CellStats, CubeResult
from ..core.errors import QueryError
from ..core.relation import Relation
from .cache import LRUCache
from .index import CubeIndex
from .queries import PointQuery, Query, QueryAnswer, RollupQuery, SliceQuery

#: What ``execute`` returns: one answer for point/roll-up, a list for a slice.
ExecuteResult = Union[QueryAnswer, List[QueryAnswer]]

#: Default size of the per-engine answer cache.
DEFAULT_CACHE_SIZE = 1024


def invalidate_answers(
    caches: Union[LRUCache, Sequence[LRUCache]],
    num_dims: int,
    changed: Sequence[Cell],
) -> int:
    """Drop exactly the cached answers a set of changed cells can affect.

    A cached answer for target cell ``t`` is derived from ``t``'s
    materialised specialisations (the closure is the maximum-count one), so it
    can only change when some added/updated cell *specialises* ``t``.  The
    check is the same posting-list intersection a closure lookup uses, run
    against a throwaway :class:`CubeIndex` over just the changed cells — cost
    is proportional to the cache sizes times tiny intersections, not to the
    cube.  Accepts one cache or several keyed by target cell (the probe index
    is built once and shared — the maintenance path invalidates the engine's
    encoded cache and the session's decoded cache in one go).  Returns the
    total number of entries dropped.
    """
    if isinstance(caches, LRUCache):
        caches = [caches]
    if not changed or not any(len(cache) for cache in caches):
        return 0
    probe = CubeIndex(num_dims, [(cell, CellStats(0)) for cell in changed])
    dropped = 0
    for cache in caches:
        for key in cache.keys():
            if probe.specialisation_slots(key):
                dropped += cache.discard(key)
    return dropped


class QueryEngine:
    """Serve closure queries against one materialised (closed) cube."""

    def __init__(
        self,
        cube: CubeResult,
        cache_size: int = DEFAULT_CACHE_SIZE,
        index: Optional[CubeIndex] = None,
    ) -> None:
        self.cube = cube
        self.index = index if index is not None else cube.closure_index()
        self.cache = LRUCache(cache_size)
        self.counters: Dict[str, int] = {
            "point_queries": 0,
            "slice_queries": 0,
            "rollup_queries": 0,
            "closure_lookups": 0,
        }

    @property
    def num_dims(self) -> int:
        return self.cube.num_dims

    # ------------------------------------------------------------------ #
    # Point / roll-up                                                     #
    # ------------------------------------------------------------------ #

    def point(self, cell: Sequence[Optional[int]]) -> QueryAnswer:
        """Answer a query on one cell (``None`` entries mean ``*``).

        ``count is None`` in the answer means the cell is empty or below the
        iceberg threshold — information the closed iceberg cube deliberately
        does not carry.
        """
        self.counters["point_queries"] += 1
        return self._answer_cell(PointQuery(tuple(cell)).target_cell(self.num_dims))

    def rollup(self, cell: Sequence[Optional[int]], dims: Sequence[int]) -> QueryAnswer:
        """Collapse ``dims`` of ``cell`` to ``*`` and answer the result."""
        self.counters["rollup_queries"] += 1
        query = RollupQuery(tuple(cell), tuple(dims))
        return self._answer_cell(query.target_cell(self.num_dims))

    def _answer_cell(self, target: Cell) -> QueryAnswer:
        cached = self.cache.get(target)
        if cached is not None:
            return cached
        answer = self._resolve_closure(target)
        self.cache.put(target, answer)
        return answer

    def _resolve_closure(self, target: Cell) -> QueryAnswer:
        self.counters["closure_lookups"] += 1
        found = self.index.closure(target)
        if found is None:
            return QueryAnswer(cell=target, count=None)
        closure_cell, stats = found
        return QueryAnswer(
            cell=target,
            count=stats.count,
            measures=tuple(sorted(stats.measures.items())),
            closure=closure_cell,
        )

    # ------------------------------------------------------------------ #
    # Slice                                                               #
    # ------------------------------------------------------------------ #

    def slice(
        self, fixed: Dict[int, int], group_by: Sequence[int] = ()
    ) -> List[QueryAnswer]:
        """Fix some dimensions, group by others; one answer per iceberg cell.

        Returns the cells of the ``fixed + group_by`` cuboid that satisfy the
        iceberg condition and carry the fixed values, in stable cell order.
        Every returned answer has ``found == True`` — cells pruned by the
        iceberg condition simply do not appear, exactly as they would not
        appear in the materialised iceberg cube.
        """
        self.counters["slice_queries"] += 1
        query = SliceQuery.of(fixed, group_by)
        targets = self._slice_targets(query)
        return [self._answer_cell(target) for target in sorted(targets, key=sort_key)]

    def _slice_targets(self, query: SliceQuery) -> Set[Cell]:
        """The distinct cells of the slice's cuboid present in the iceberg cube.

        Every iceberg cell of the target cuboid has a closure in the closed
        cube; that closure specialises the slice's fixed part and fixes every
        group-by dimension with the cell's values.  Projecting the matching
        materialised cells onto ``fixed + group_by`` therefore enumerates the
        slice exactly — no false negatives, and no false positives because
        each projected cell's own closure answer is then resolved by
        :meth:`point` semantics.
        """
        fixed_cell = query.validate(self.num_dims)
        fixed = query.fixed_mapping()
        targets: Set[Cell] = set()
        for slot in self.index.specialisation_slots(fixed_cell):
            cell = self.index.cell_at(slot)
            assignment = dict(fixed)
            complete = True
            for dim in query.group_by:
                value = cell[dim]
                if value is None:
                    complete = False
                    break
                assignment[dim] = value
            if complete:
                targets.add(make_cell(self.num_dims, assignment))
        return targets

    # ------------------------------------------------------------------ #
    # Maintenance                                                         #
    # ------------------------------------------------------------------ #

    def invalidate(self, changed: Sequence[Cell]) -> int:
        """Targeted cache invalidation after an incremental merge.

        The engine's index is the cube's live closure index, so it is already
        current when this is called; only cached answers derived from cells
        that changed need to go.  Returns the number of answers dropped.
        """
        return invalidate_answers(self.cache, self.num_dims, changed)

    # ------------------------------------------------------------------ #
    # Generic execution                                                   #
    # ------------------------------------------------------------------ #

    def execute(self, query: Query) -> ExecuteResult:
        """Dispatch one query object to the matching handler."""
        if isinstance(query, PointQuery):
            return self.point(query.cell)
        if isinstance(query, RollupQuery):
            return self.rollup(query.cell, query.dims)
        if isinstance(query, SliceQuery):
            return self.slice(query.fixed_mapping(), query.group_by)
        raise QueryError(f"unsupported query object: {query!r}")

    def execute_many(self, queries: Iterable[Query]) -> List[ExecuteResult]:
        """Answer a batch of queries, preserving input order."""
        return [self.execute(query) for query in queries]

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """Serving statistics: index footprint, cache behaviour, counters."""
        return {
            "cells_indexed": len(self.index),
            "postings_entries": self.index.postings_size(),
            "cache": self.cache.stats(),
            **self.counters,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryEngine(cells={len(self.index)}, dims={self.num_dims}, "
            f"cache={self.cache.capacity})"
        )


class PartitionedQueryEngine:
    """Route closure queries across per-partition shards of a closed cube.

    The cube is split by the value each materialised cell fixes on
    ``partition_dim``; cells with ``*`` there form their own shard.  A query
    fixing the partitioning dimension can only have its closure inside that
    value's shard (specialisation preserves fixed values), so it touches one
    shard; a query with ``*`` on the partitioning dimension is resolved as the
    best answer across shards.
    """

    def __init__(
        self,
        cube: CubeResult,
        partition_dim: int,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if not 0 <= partition_dim < cube.num_dims:
            raise QueryError(
                f"partition dimension {partition_dim} outside 0..{cube.num_dims - 1}"
            )
        self.cube = cube
        self.partition_dim = partition_dim
        self.cache = LRUCache(cache_size)
        #: ``None`` keys the shard of cells with ``*`` on the partition dim.
        self.shards: Dict[Optional[int], QueryEngine] = {}
        for value, shard_cube in self._group(cube).items():
            # Shard engines run uncached: answers are cached once, here.
            self.shards[value] = QueryEngine(shard_cube, cache_size=0)

    def _group(
        self, cube: CubeResult, only: Optional[Set[Optional[int]]] = None
    ) -> Dict[Optional[int], CubeResult]:
        """Split a cube's cells into per-partition-value shard cubes.

        ``only`` restricts the grouping to the given partition values (used by
        :meth:`refresh` to rebuild just the shards a refresh touched).
        """
        grouped: Dict[Optional[int], CubeResult] = {}
        partition_dim = self.partition_dim
        for cell, stats in cube.items():
            value = cell[partition_dim]
            if only is not None and value not in only:
                continue
            shard_cube = grouped.get(value)
            if shard_cube is None:
                shard_cube = CubeResult(cube.num_dims, name=f"shard-{value}")
                grouped[value] = shard_cube
            shard_cube.add(cell, stats.count, stats.measures, stats.rep_tid)
        return grouped

    def refresh(
        self, cube: CubeResult, changed_values: Iterable[Optional[int]]
    ) -> List[Optional[int]]:
        """Swap in a refreshed cube, rebuilding only the shards it changed.

        ``changed_values`` are the partition-dimension values whose cells may
        differ from the previous cube (typically the partitions a
        :meth:`repro.storage.partition.PartitionedCubeComputer.refresh`
        recomputed); the ``*`` shard is always rebuilt because cells with
        ``*`` on the partitioning dimension aggregate across partitions.
        Untouched shards keep their engines — and their warm indexes.  The
        answer cache is cleared (any cached answer may have routed through a
        rebuilt shard).  Returns the shard keys that were rebuilt.
        """
        affected: Set[Optional[int]] = set(changed_values)
        affected.add(None)
        self.cube = cube
        grouped = self._group(cube, only=affected)
        rebuilt: List[Optional[int]] = []
        for value in affected:
            shard_cube = grouped.get(value)
            if shard_cube is None:
                self.shards.pop(value, None)
            else:
                self.shards[value] = QueryEngine(shard_cube, cache_size=0)
                rebuilt.append(value)
        self.cache.clear()
        return rebuilt

    @property
    def num_dims(self) -> int:
        return self.cube.num_dims

    def shard_sizes(self) -> Dict[Optional[int], int]:
        """Materialised cells per shard (the ``None`` shard holds ``*`` cells)."""
        return {value: len(engine.cube) for value, engine in self.shards.items()}

    # ------------------------------------------------------------------ #

    def point(self, cell: Sequence[Optional[int]]) -> QueryAnswer:
        target = PointQuery(tuple(cell)).target_cell(self.num_dims)
        cached = self.cache.get(target)
        if cached is not None:
            return cached
        answer = self._route_point(target)
        self.cache.put(target, answer)
        return answer

    def _route_point(self, target: Cell) -> QueryAnswer:
        value = target[self.partition_dim]
        if value is not None:
            shard = self.shards.get(value)
            if shard is None:
                return QueryAnswer(cell=target, count=None)
            return shard._answer_cell(target)
        best: Optional[QueryAnswer] = None
        for shard in self.shards.values():
            answer = shard._answer_cell(target)
            if answer.found and (best is None or answer.count > best.count):
                best = answer
        return best if best is not None else QueryAnswer(cell=target, count=None)

    def rollup(self, cell: Sequence[Optional[int]], dims: Sequence[int]) -> QueryAnswer:
        query = RollupQuery(tuple(cell), tuple(dims))
        return self.point(query.target_cell(self.num_dims))

    def slice(
        self, fixed: Dict[int, int], group_by: Sequence[int] = ()
    ) -> List[QueryAnswer]:
        """Slice across shards; routing rules match :meth:`point`."""
        query = SliceQuery.of(fixed, group_by)
        query.validate(self.num_dims)
        pinned = query.fixed_mapping().get(self.partition_dim)
        if pinned is not None:
            shards: Iterable[QueryEngine] = (
                [self.shards[pinned]] if pinned in self.shards else []
            )
        else:
            shards = self.shards.values()
        targets: Set[Cell] = set()
        for shard in shards:
            targets |= shard._slice_targets(query)
        return [self.point(target) for target in sorted(targets, key=sort_key)]

    # ------------------------------------------------------------------ #

    def execute(self, query: Query) -> ExecuteResult:
        if isinstance(query, PointQuery):
            return self.point(query.cell)
        if isinstance(query, RollupQuery):
            return self.point(query.target_cell(self.num_dims))
        if isinstance(query, SliceQuery):
            return self.slice(query.fixed_mapping(), query.group_by)
        raise QueryError(f"unsupported query object: {query!r}")

    def execute_many(self, queries: Iterable[Query]) -> List[ExecuteResult]:
        """Answer a batch of queries, preserving input order.

        Each query is routed individually: queries pinning the partitioning
        dimension touch one shard, the rest fan out and merge.
        """
        return [self.execute(query) for query in queries]

    def stats(self) -> Dict[str, object]:
        return {
            "partition_dim": self.partition_dim,
            "shards": len(self.shards),
            "shard_sizes": {
                ("*" if value is None else value): size
                for value, size in sorted(
                    self.shard_sizes().items(), key=lambda kv: (kv[0] is None, kv[0])
                )
            },
            "cache": self.cache.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionedQueryEngine(dim={self.partition_dim}, "
            f"shards={len(self.shards)}, cells={len(self.cube)})"
        )


def open_partitioned_query_engine(
    relation: Relation,
    algorithm: str = "c-cubing-star",
    min_sup: int = 1,
    partition_dim: Optional[int] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    memory_budget_tuples: Optional[int] = None,
) -> Tuple[PartitionedQueryEngine, "object"]:
    """Materialise a partitioned closed cube and open a routing engine over it.

    Runs :class:`repro.storage.partition.PartitionedCubeComputer` (Section 6.3)
    on ``relation`` and shards the resulting cube on the same partitioning
    dimension the computation used, so serving mirrors materialisation.
    Returns ``(engine, partition_report)``.
    """
    from ..storage.partition import PartitionedCubeComputer

    computer = PartitionedCubeComputer(
        algorithm=algorithm,
        min_sup=min_sup,
        closed=True,
        memory_budget_tuples=memory_budget_tuples,
    )
    cube, report = computer.compute(relation, partition_dim=partition_dim)
    engine = PartitionedQueryEngine(
        cube, partition_dim=report.partition_dim, cache_size=cache_size
    )
    return engine, report
