"""Closure-query engines: serve point / slice / roll-up queries from a closed cube.

:class:`QueryEngine` fronts one materialised :class:`~repro.core.cube.
CubeResult` with the inverted :class:`~repro.query.index.CubeIndex` and an
:class:`~repro.query.cache.LRUCache` of answers, so that any cell of the cube
lattice — materialised or not — is answered in far less than a full scan:

* point queries resolve the query cell's *closure* (its maximum-count
  materialised specialisation, which by the quotient-cube property carries
  exactly the query cell's aggregate);
* slice queries enumerate the iceberg cells of one cuboid under fixed
  dimension values, driven entirely by the index (no recomputation);
* roll-up queries collapse dimensions of a cell to ``*`` and answer the
  resulting point.

:class:`PartitionedQueryEngine` serves the same queries over a cube computed
by :class:`repro.storage.partition.PartitionedCubeComputer`: it shards the
materialised cells by their value on the partitioning dimension and routes
each query to the shard(s) that can contain its closure, mirroring how the
partitioned *computation* split the data.

Engines track the cube they front: the :class:`QueryEngine` shares the cube's
live closure index (kept current in place by incremental merges) and exposes
:meth:`QueryEngine.invalidate` for the targeted answer-cache invalidation the
maintenance path needs; :class:`PartitionedQueryEngine.refresh` swaps in only
the shards a refresh touched.

Both engines are safe under concurrent readers and a single publisher: every
query runs under the shared side of an :class:`~repro.concurrency.RWLock`
(:attr:`QueryEngine.lock`), and the maintenance entry points
(:meth:`QueryEngine.publish`, :meth:`QueryEngine.invalidate`,
:meth:`PartitionedQueryEngine.refresh`) take the exclusive side for a short
critical section of reference swaps and cache repair.  The expensive work —
cloning the cube, merging the delta, building the next index — happens
*before* the exclusive section on a private copy (copy-on-publish), so the
read hot path never waits on a merge; in-flight queries always see one
consistent published cube version.  :attr:`QueryEngine.version` counts
publishes, giving callers (and the interleaving tests) an exact version to
attribute each answer to.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..concurrency import RWLock
from ..core.cell import Cell, make_cell, sort_key
from ..core.cube import CellStats, CubeResult
from ..core.errors import QueryError
from ..core.relation import Relation
from ..vector import kernels
from .cache import LRUCache
from .index import CubeIndex
from .queries import PointQuery, Query, QueryAnswer, RollupQuery, SliceQuery

#: What ``execute`` returns: one answer for point/roll-up, a list for a slice.
ExecuteResult = Union[QueryAnswer, List[QueryAnswer]]

#: Default size of the per-engine answer cache.
DEFAULT_CACHE_SIZE = 1024


def _slice_key_cell(key: object) -> Cell:
    """The probe cell of a slice-cache key: its fixed cell."""
    return key[0]  # type: ignore[index]


def invalidate_answers(
    caches: Union[LRUCache, Sequence[LRUCache]],
    num_dims: int,
    changed: Sequence[Cell],
    key_cell: Optional[object] = None,
) -> int:
    """Drop exactly the cached answers a set of changed cells can affect.

    A cached answer for target cell ``t`` is derived from ``t``'s
    materialised specialisations (the closure is the maximum-count one), so it
    can only change when some added/updated cell *specialises* ``t``.  The
    check is the same posting-list intersection a closure lookup uses, run
    against a throwaway :class:`CubeIndex` over just the changed cells — cost
    is proportional to the cache sizes times tiny intersections, not to the
    cube.  Accepts one cache or several keyed by target cell (the probe index
    is built once and shared — the maintenance path invalidates the engine's
    encoded cache and the session's decoded cache in one go).  ``key_cell``
    optionally maps a cache key to the cell the probe should test (the slice
    cache keys on ``(fixed cell, group dims)``).  Returns the total number of
    entries dropped.
    """
    if isinstance(caches, LRUCache):
        caches = [caches]
    if not changed or not any(len(cache) for cache in caches):
        return 0
    probe = CubeIndex(num_dims, [(cell, CellStats(0)) for cell in changed])
    dropped = 0
    for cache in caches:
        for key in cache.keys():
            cell = key if key_cell is None else key_cell(key)
            if probe.specialisation_slots(cell):
                dropped += cache.discard(key)
    return dropped


class QueryEngine:
    """Serve closure queries against one materialised (closed) cube."""

    def __init__(
        self,
        cube: CubeResult,
        cache_size: int = DEFAULT_CACHE_SIZE,
        index: Optional[CubeIndex] = None,
    ) -> None:
        self.cube = cube
        self.index = index if index is not None else cube.closure_index()
        self.cache = LRUCache(cache_size)
        #: Whole slice results keyed by ``(fixed cell, group dims)``.  A
        #: slice enumeration is O(matching cells) even when every member
        #: answer is cached, so dashboard-style repeated roll-ups earn their
        #: own cache.  Invalidation is exact and keys on the *fixed* cell: a
        #: changed cell can alter the slice (grow it, or change a member's
        #: count) only by specialising some target of the slice — and every
        #: target specialises the fixed cell, so by transitivity probing the
        #: fixed cell suffices.
        self.slice_cache: LRUCache[List[QueryAnswer]] = LRUCache(cache_size)
        #: Readers (queries) share this lock; :meth:`publish` /
        #: :meth:`invalidate` take it exclusively for their short critical
        #: sections.  Queries resolve *and* cache their answer inside one
        #: read-held region, so a publish can never interleave between a
        #: stale resolution and its cache write.
        self.lock = RWLock()
        #: Number of publishes this engine has served (see :meth:`publish`).
        self.version = 0
        #: Best-effort query counters: bumped without extra locking, so a
        #: heavily concurrent workload may undercount slightly.
        self.counters: Dict[str, int] = {
            "point_queries": 0,
            "slice_queries": 0,
            "rollup_queries": 0,
            "closure_lookups": 0,
        }
        # Imported lazily: repro.rollup imports the query package back for
        # QueryAnswer/SliceQuery, so a module-level import here would cycle.
        from ..rollup.recorder import ShapeRecorder

        #: Shape log of executed queries, mined by :mod:`repro.rollup.advisor`.
        self.recorder = ShapeRecorder()
        #: Optional :class:`~repro.rollup.router.RollupRouter`; when set,
        #: consulted after the answer caches and before closure resolution.
        self.router = None

    @property
    def num_dims(self) -> int:
        return self.cube.num_dims

    # ------------------------------------------------------------------ #
    # Point / roll-up                                                     #
    # ------------------------------------------------------------------ #

    def point(self, cell: Sequence[Optional[int]]) -> QueryAnswer:
        """Answer a query on one cell (``None`` entries mean ``*``).

        ``count is None`` in the answer means the cell is empty or below the
        iceberg threshold — information the closed iceberg cube deliberately
        does not carry.
        """
        target = PointQuery(tuple(cell)).target_cell(self.num_dims)
        with self.lock.read():
            return self._point_nolock(target)

    def _point_nolock(self, target: Cell) -> QueryAnswer:
        """Point resolution body; caller must hold the read lock."""
        self.counters["point_queries"] += 1
        self._record_point_shape(target)
        return self._answer_cell(target)

    def rollup(self, cell: Sequence[Optional[int]], dims: Sequence[int]) -> QueryAnswer:
        """Collapse ``dims`` of ``cell`` to ``*`` and answer the result."""
        query = RollupQuery(tuple(cell), tuple(dims))
        target = query.target_cell(self.num_dims)
        with self.lock.read():
            self.counters["rollup_queries"] += 1
            self._record_point_shape(target)
            return self._answer_cell(target)

    def _record_point_shape(self, target: Cell) -> None:
        self.recorder.record(
            tuple(dim for dim, value in enumerate(target) if value is not None)
        )

    def _answer_cell(self, target: Cell) -> QueryAnswer:
        cached = self.cache.get(target)
        if cached is not None:
            return cached
        if self.router is not None:
            routed = self.router.route_point(target)
            if routed is not None:
                self.cache.put(target, routed)
                return routed
        answer = self._resolve_closure(target)
        self.cache.put(target, answer)
        return answer

    def _resolve_closure(self, target: Cell) -> QueryAnswer:
        self.counters["closure_lookups"] += 1
        found = self.index.closure(target)
        if found is None:
            return QueryAnswer(cell=target, count=None)
        closure_cell, stats = found
        return QueryAnswer(
            cell=target,
            count=stats.count,
            measures=tuple(sorted(stats.measures.items())),
            closure=closure_cell,
        )

    # ------------------------------------------------------------------ #
    # Slice                                                               #
    # ------------------------------------------------------------------ #

    def slice(
        self, fixed: Dict[int, int], group_by: Sequence[int] = ()
    ) -> List[QueryAnswer]:
        """Fix some dimensions, group by others; one answer per iceberg cell.

        Returns the cells of the ``fixed + group_by`` cuboid that satisfy the
        iceberg condition and carry the fixed values, in stable cell order.
        Every returned answer has ``found == True`` — cells pruned by the
        iceberg condition simply do not appear, exactly as they would not
        appear in the materialised iceberg cube.
        """
        query = SliceQuery.of(fixed, group_by)
        with self.lock.read():
            return self._slice_nolock(query)

    def _slice_nolock(self, query: SliceQuery) -> List[QueryAnswer]:
        """Slice body (enumeration + answers); caller must hold the read lock."""
        self.counters["slice_queries"] += 1
        key = (query.validate(self.num_dims), tuple(query.group_by))
        fixed_dims = tuple(sorted(query.fixed_mapping()))
        group_dims = tuple(sorted(query.group_by))
        cached = self.slice_cache.get(key)
        if cached is not None:
            self.recorder.record(fixed_dims, group_dims, cost=len(cached) + 1)
            return cached
        if self.router is not None:
            routed = self.router.route_slice(query, self.num_dims)
            if routed is not None:
                # Routed slices are *not* written to the slice cache: the
                # rollup table already is the cache, and keeping them out of
                # it means a table swap alone makes the next read fresh.
                self.recorder.record(fixed_dims, group_dims, cost=len(routed) + 1)
                return routed
        targets = self._slice_targets(query)
        answers = [
            self._answer_cell(target) for target in sorted(targets, key=sort_key)
        ]
        self.slice_cache.put(key, answers)
        self.recorder.record(fixed_dims, group_dims, cost=len(answers) + 1)
        return answers

    def _slice_targets(self, query: SliceQuery) -> Set[Cell]:
        """The distinct cells of the slice's cuboid present in the iceberg cube.

        Every iceberg cell of the target cuboid has a closure in the closed
        cube; that closure specialises the slice's fixed part and fixes every
        group-by dimension with the cell's values.  Projecting the matching
        materialised cells onto ``fixed + group_by`` therefore enumerates the
        slice exactly — no false negatives, and no false positives because
        each projected cell's own closure answer is then resolved by
        :meth:`point` semantics.
        """
        fixed_cell = query.validate(self.num_dims)
        fixed = query.fixed_mapping()
        slots = self.index.specialisation_slots(fixed_cell)
        vectorized = kernels.slice_targets(
            self.index, slots, fixed, query.group_by, self.num_dims
        )
        if vectorized is not None:
            return vectorized
        targets: Set[Cell] = set()
        for slot in slots:
            cell = self.index.cell_at(slot)
            assignment = dict(fixed)
            complete = True
            for dim in query.group_by:
                value = cell[dim]
                if value is None:
                    complete = False
                    break
                assignment[dim] = value
            if complete:
                targets.add(make_cell(self.num_dims, assignment))
        return targets

    # ------------------------------------------------------------------ #
    # Maintenance                                                         #
    # ------------------------------------------------------------------ #

    def invalidate(self, changed: Sequence[Cell]) -> int:
        """Targeted cache invalidation after an in-place incremental merge.

        The engine's index is the cube's live closure index, so it is already
        current when this is called; only cached answers derived from cells
        that changed need to go.  Returns the number of answers dropped.
        """
        with self.lock.write():
            dropped = invalidate_answers(self.cache, self.num_dims, changed)
            dropped += invalidate_answers(
                self.slice_cache, self.num_dims, changed, key_cell=_slice_key_cell
            )
            return dropped

    def clear_caches(self) -> None:
        """Drop every cached answer and slice; counters survive."""
        self.cache.clear()
        self.slice_cache.clear()

    def publish(
        self,
        cube: CubeResult,
        index: Optional[CubeIndex] = None,
        changed: Optional[Sequence[Cell]] = None,
        extra_caches: Sequence[LRUCache] = (),
        rollups: Optional[Dict[Tuple[int, ...], object]] = None,
    ) -> int:
        """Swap in the next cube version atomically (copy-on-publish).

        The concurrent maintenance path prepares ``cube`` (a merged clone of
        the serving cube) and ``index`` *off* the hot path, then calls this to
        make them visible: under the write lock the engine's cube and index
        references are swapped, cached answers the ``changed`` cells can
        affect are discarded (all of them when ``changed`` is ``None``) from
        the engine's cache and any ``extra_caches`` (e.g. the named layer's
        decoded-answer cache), and :attr:`version` is incremented.  Readers
        either complete entirely before the swap (seeing the previous
        version) or start after it (seeing the new one) — never a mixture.

        When ``index`` is omitted it is taken from ``cube.closure_index()``;
        note that *building* that index then happens inside the exclusive
        section, so callers on the concurrent path should pass a pre-built
        index.  ``rollups``, when given, is the next generation of rollup
        tables (grain -> :class:`~repro.rollup.table.RollupTable`, prepared
        off the hot path from the same delta) and is swapped into the router
        inside the same exclusive section, so a reader can never pair the
        new cube with pre-append rollup answers.  Returns the number of
        cached answers dropped.
        """
        if index is None:
            index = cube.closure_index()
        caches: List[LRUCache] = [self.cache, *extra_caches]
        with self.lock.write():
            self.cube = cube
            self.index = index
            if rollups is not None and self.router is not None:
                self.router.tables = rollups
            if changed is None:
                dropped = sum(len(cache) for cache in caches)
                dropped += len(self.slice_cache)
                for cache in caches:
                    cache.clear()
                self.slice_cache.clear()
            else:
                dropped = invalidate_answers(caches, self.num_dims, changed)
                dropped += invalidate_answers(
                    self.slice_cache,
                    self.num_dims,
                    changed,
                    key_cell=_slice_key_cell,
                )
                for cache in caches:
                    # Even a zero-drop publish must fence out readers holding
                    # answers resolved against the superseded version (see
                    # LRUCache.put_if_generation).
                    cache.bump_generation()
            self.version += 1
            return dropped

    # ------------------------------------------------------------------ #
    # Generic execution                                                   #
    # ------------------------------------------------------------------ #

    def execute(self, query: Query) -> ExecuteResult:
        """Dispatch one query object to the matching handler."""
        if isinstance(query, PointQuery):
            return self.point(query.cell)
        if isinstance(query, RollupQuery):
            return self.rollup(query.cell, query.dims)
        if isinstance(query, SliceQuery):
            return self.slice(query.fixed_mapping(), query.group_by)
        raise QueryError(f"unsupported query object: {query!r}")

    def execute_many(self, queries: Iterable[Query]) -> List[ExecuteResult]:
        """Answer a batch of queries, preserving input order."""
        return [self.execute(query) for query in queries]

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, object]:
        """Serving statistics: index footprint, cache behaviour, counters."""
        return {
            "cells_indexed": len(self.index),
            "postings_entries": self.index.postings_size(),
            "cache": self.cache.stats(),
            "slice_cache": self.slice_cache.stats(),
            "version": self.version,
            "recorder": self.recorder.stats(),
            "rollups": (
                self.router.stats() if self.router is not None else {"enabled": False}
            ),
            **self.counters,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryEngine(cells={len(self.index)}, dims={self.num_dims}, "
            f"cache={self.cache.capacity})"
        )


class PartitionedQueryEngine:
    """Route closure queries across per-partition shards of a closed cube.

    The cube is split by the value each materialised cell fixes on
    ``partition_dim``; cells with ``*`` there form their own shard.  A query
    fixing the partitioning dimension can only have its closure inside that
    value's shard (specialisation preserves fixed values), so it touches one
    shard; a query with ``*`` on the partitioning dimension is resolved as the
    best answer across shards.
    """

    def __init__(
        self,
        cube: CubeResult,
        partition_dim: int,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if not 0 <= partition_dim < cube.num_dims:
            raise QueryError(
                f"partition dimension {partition_dim} outside 0..{cube.num_dims - 1}"
            )
        self.cube = cube
        self.partition_dim = partition_dim
        self.cache = LRUCache(cache_size)
        #: Whole slice results, as on :class:`QueryEngine` (cleared wholesale
        #: on refresh, like the answer cache).
        self.slice_cache: LRUCache[List[QueryAnswer]] = LRUCache(cache_size)
        #: Same reader/publisher discipline as :class:`QueryEngine`: queries
        #: share, :meth:`refresh` is exclusive for its swap section.
        self.lock = RWLock()
        #: Number of refreshes published through this engine.
        self.version = 0
        #: ``None`` keys the shard of cells with ``*`` on the partition dim.
        self.shards: Dict[Optional[int], QueryEngine] = {}
        for value, shard_cube in self._group(cube).items():
            # Shard engines run uncached: answers are cached once, here.
            self.shards[value] = QueryEngine(shard_cube, cache_size=0)

    def _group(
        self, cube: CubeResult, only: Optional[Set[Optional[int]]] = None
    ) -> Dict[Optional[int], CubeResult]:
        """Split a cube's cells into per-partition-value shard cubes.

        ``only`` restricts the grouping to the given partition values (used by
        :meth:`refresh` to rebuild just the shards a refresh touched).
        """
        grouped: Dict[Optional[int], CubeResult] = {}
        partition_dim = self.partition_dim
        for cell, stats in cube.items():
            value = cell[partition_dim]
            if only is not None and value not in only:
                continue
            shard_cube = grouped.get(value)
            if shard_cube is None:
                shard_cube = CubeResult(cube.num_dims, name=f"shard-{value}")
                grouped[value] = shard_cube
            shard_cube.add(cell, stats.count, stats.measures, stats.rep_tid)
        return grouped

    def refresh(
        self,
        cube: CubeResult,
        changed_values: Iterable[Optional[int]],
        extra_caches: Sequence[LRUCache] = (),
    ) -> List[Optional[int]]:
        """Swap in a refreshed cube, rebuilding only the shards it changed.

        ``changed_values`` are the partition-dimension values whose cells may
        differ from the previous cube (typically the partitions a
        :meth:`repro.storage.partition.PartitionedCubeComputer.refresh`
        recomputed); the ``*`` shard is always rebuilt because cells with
        ``*`` on the partitioning dimension aggregate across partitions.
        Untouched shards keep their engines — and their warm indexes.  The
        answer cache (and any ``extra_caches`` derived from it, e.g. the
        named layer's decoded answers) is cleared: any cached answer may
        have routed through a rebuilt shard.  Returns the shard keys that
        were rebuilt.

        The replacement shards are grouped and indexed *before* the write
        lock is taken, so in-flight queries only wait for the reference swaps
        (copy-on-publish, same discipline as :meth:`QueryEngine.publish`).
        """
        affected: Set[Optional[int]] = set(changed_values)
        affected.add(None)
        grouped = self._group(cube, only=affected)
        replacements: Dict[Optional[int], Optional[QueryEngine]] = {}
        rebuilt: List[Optional[int]] = []
        for value in affected:
            shard_cube = grouped.get(value)
            if shard_cube is None:
                replacements[value] = None
            else:
                # QueryEngine builds its index eagerly, so the expensive part
                # of each replacement shard happens here, outside the lock.
                replacements[value] = QueryEngine(shard_cube, cache_size=0)
                rebuilt.append(value)
        with self.lock.write():
            self.cube = cube
            for value, engine in replacements.items():
                if engine is None:
                    self.shards.pop(value, None)
                else:
                    self.shards[value] = engine
            self.cache.clear()
            self.slice_cache.clear()
            for cache in extra_caches:
                cache.clear()
            self.version += 1
        return rebuilt

    def clear_caches(self) -> None:
        """Drop every cached answer and slice; counters survive."""
        self.cache.clear()
        self.slice_cache.clear()

    @property
    def num_dims(self) -> int:
        return self.cube.num_dims

    def shard_sizes(self) -> Dict[Optional[int], int]:
        """Materialised cells per shard (the ``None`` shard holds ``*`` cells)."""
        return {value: len(engine.cube) for value, engine in self.shards.items()}

    # ------------------------------------------------------------------ #

    def point(self, cell: Sequence[Optional[int]]) -> QueryAnswer:
        target = PointQuery(tuple(cell)).target_cell(self.num_dims)
        with self.lock.read():
            return self._point_nolock(target)

    def _point_nolock(self, target: Cell) -> QueryAnswer:
        """Routed point resolution body; caller must hold the read lock."""
        cached = self.cache.get(target)
        if cached is not None:
            return cached
        answer = self._route_point(target)
        self.cache.put(target, answer)
        return answer

    def _route_point(self, target: Cell) -> QueryAnswer:
        value = target[self.partition_dim]
        if value is not None:
            shard = self.shards.get(value)
            if shard is None:
                return QueryAnswer(cell=target, count=None)
            return shard._answer_cell(target)
        best: Optional[QueryAnswer] = None
        for shard in self.shards.values():
            answer = shard._answer_cell(target)
            if answer.found and (best is None or answer.count > best.count):
                best = answer
        return best if best is not None else QueryAnswer(cell=target, count=None)

    def rollup(self, cell: Sequence[Optional[int]], dims: Sequence[int]) -> QueryAnswer:
        query = RollupQuery(tuple(cell), tuple(dims))
        target = query.target_cell(self.num_dims)
        with self.lock.read():
            return self._point_nolock(target)

    def slice(
        self, fixed: Dict[int, int], group_by: Sequence[int] = ()
    ) -> List[QueryAnswer]:
        """Slice across shards; routing rules match :meth:`point`."""
        query = SliceQuery.of(fixed, group_by)
        query.validate(self.num_dims)
        with self.lock.read():
            return self._slice_nolock(query)

    def _slice_nolock(self, query: SliceQuery) -> List[QueryAnswer]:
        """Slice body (routing + answers); caller must hold the read lock."""
        key = (query.validate(self.num_dims), tuple(query.group_by))
        cached = self.slice_cache.get(key)
        if cached is not None:
            return cached
        answers = self._route_slice(query)
        self.slice_cache.put(key, answers)
        return answers

    def _route_slice(self, query: SliceQuery) -> List[QueryAnswer]:
        pinned = query.fixed_mapping().get(self.partition_dim)
        if pinned is not None:
            shards: Iterable[QueryEngine] = (
                [self.shards[pinned]] if pinned in self.shards else []
            )
        else:
            shards = list(self.shards.values())
        targets: Set[Cell] = set()
        for shard in shards:
            targets |= shard._slice_targets(query)
        return [
            self._point_nolock(target) for target in sorted(targets, key=sort_key)
        ]

    # ------------------------------------------------------------------ #

    def execute(self, query: Query) -> ExecuteResult:
        if isinstance(query, PointQuery):
            return self.point(query.cell)
        if isinstance(query, RollupQuery):
            return self.rollup(query.cell, query.dims)
        if isinstance(query, SliceQuery):
            return self.slice(query.fixed_mapping(), query.group_by)
        raise QueryError(f"unsupported query object: {query!r}")

    def execute_many(self, queries: Iterable[Query]) -> List[ExecuteResult]:
        """Answer a batch of queries, preserving input order.

        Each query is routed individually: queries pinning the partitioning
        dimension touch one shard, the rest fan out and merge.
        """
        return [self.execute(query) for query in queries]

    def stats(self) -> Dict[str, object]:
        return {
            "partition_dim": self.partition_dim,
            "shards": len(self.shards),
            "shard_sizes": {
                ("*" if value is None else value): size
                for value, size in sorted(
                    self.shard_sizes().items(), key=lambda kv: (kv[0] is None, kv[0])
                )
            },
            "cache": self.cache.stats(),
            "slice_cache": self.slice_cache.stats(),
            "version": self.version,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionedQueryEngine(dim={self.partition_dim}, "
            f"shards={len(self.shards)}, cells={len(self.cube)})"
        )


def open_partitioned_query_engine(
    relation: Relation,
    algorithm: str = "c-cubing-star",
    min_sup: int = 1,
    partition_dim: Optional[int] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    memory_budget_tuples: Optional[int] = None,
) -> Tuple[PartitionedQueryEngine, "object"]:
    """Materialise a partitioned closed cube and open a routing engine over it.

    Runs :class:`repro.storage.partition.PartitionedCubeComputer` (Section 6.3)
    on ``relation`` and shards the resulting cube on the same partitioning
    dimension the computation used, so serving mirrors materialisation.
    Returns ``(engine, partition_report)``.
    """
    from ..storage.partition import PartitionedCubeComputer

    computer = PartitionedCubeComputer(
        algorithm=algorithm,
        min_sup=min_sup,
        closed=True,
        memory_budget_tuples=memory_budget_tuples,
    )
    cube, report = computer.compute(relation, partition_dim=partition_dim)
    engine = PartitionedQueryEngine(
        cube, partition_dim=report.partition_dim, cache_size=cache_size
    )
    return engine, report
