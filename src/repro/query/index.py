"""Inverted per-dimension index over the materialised cells of a cube.

The closed cube answers a query on *any* cell of the lattice through the
quotient-cube closure property (see :meth:`repro.core.cube.CubeResult.
closure_query`): the answer is carried by the materialised specialisation with
the maximum count.  Finding that cell by scanning every materialised cell is
``O(cells)`` per query, which is what makes a naive serving layer collapse
under load.

:class:`CubeIndex` turns the lookup into a posting-list intersection.  For
every dimension ``d`` it keeps a mapping ``value -> {slots}`` of the cells
that *fix* ``d`` to ``value``.  The materialised specialisations of a query
cell are exactly the intersection of the posting lists of its fixed
dimensions, so a point lookup touches only the cells sharing the query's
rarest fixed value instead of the whole cube.  The all-``*`` (apex) query is
answered from a precomputed best slot without touching any posting list.

The index is maintainable in place: it shares :class:`~repro.core.cube.
CellStats` objects with the owning cube (so in-place stat updates are visible
immediately) and exposes :meth:`CubeIndex.add_cells` / :meth:`CubeIndex.
remove_cells` / :meth:`CubeIndex.touch_cell` for the incremental-maintenance
path (:mod:`repro.incremental`).  :class:`repro.core.cube.CubeResult` keeps
its lazily built index current through exactly these hooks, so callers never
observe a stale view — and serving engines keep a warm index across merges
instead of rebuilding from scratch.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..core.cell import Cell
from ..core.cube import CellStats, CubeResult
from ..core.errors import QueryError


class CubeIndex:
    """Posting-list index over materialised cells, one list per (dim, value).

    Cells are addressed by *slot* — their insertion position.  :meth:`cell_at`
    / :meth:`stats_at` translate a slot back to the cell and its aggregated
    statistics.  Removed cells leave tombstoned slots (cheap, and removals are
    rare: append-only maintenance never removes); tombstones are excluded from
    every lookup path.

    Mutations (:meth:`add_cells` / :meth:`remove_cells` / :meth:`touch_cell`)
    run under an internal mutex and bump :attr:`generation`, so two
    maintenance callers can never interleave half-applied posting updates and
    observers can detect that the index moved under them.  Lookups stay
    lock-free: the concurrent serving layer (:mod:`repro.server`) only ever
    queries *published* indexes, which are immutable by construction
    (copy-on-publish — see :meth:`repro.query.engine.QueryEngine.publish`);
    the in-place mutation hooks exist for the single-writer synchronous
    maintenance path.
    """

    def __init__(self, num_dims: int, items: Iterable[Tuple[Cell, CellStats]]) -> None:
        self.num_dims = num_dims
        self._cells: List[Cell] = []
        self._stats: List[CellStats] = []
        #: Per dimension: fixed value -> set of slots fixing that value.
        self._postings: List[Dict[int, Set[int]]] = [{} for _ in range(num_dims)]
        #: Cell -> slot, for in-place maintenance.
        self._slot_of: Dict[Cell, int] = {}
        #: Tombstoned slots of removed cells.
        self._dead: Set[int] = set()
        #: Slot of the maximum-count cell: the closure of the apex query.
        self._best_slot: Optional[int] = None
        #: Serialises the mutation hooks against each other.
        self._mutate_lock = threading.Lock()
        #: Bumped once per mutation call that changed the index.
        self.generation = 0
        #: ``(generation, per-dim arrays)`` cache for :meth:`columns_view`.
        self._columns_cache: Optional[Tuple[int, List[object]]] = None
        self.add_cells(items)

    @classmethod
    def from_cube(cls, cube: CubeResult) -> "CubeIndex":
        """Index every materialised cell of ``cube``."""
        return cls(cube.num_dims, cube.items())

    @classmethod
    def from_snapshot_state(
        cls,
        num_dims: int,
        cells: List[Cell],
        stats: List[CellStats],
        postings: Iterable[Mapping[int, Iterable[int]]],
        best_slot: Optional[int],
        slot_ints: Optional[List[int]] = None,
    ) -> "CubeIndex":
        """Reconstruct an index from persisted state, skipping the re-index.

        The v2 snapshot format (:mod:`repro.storage.snapshot`) persists the
        posting lists and the pre-scored apex slot it derived while writing
        the cells in slot order; this constructor reinstates them wholesale —
        set construction and one slot-map comprehension, all C-speed — instead
        of replaying the per-cell :meth:`add_cells` loop.  ``stats`` must be
        the same :class:`CellStats` objects the owning cube holds (shared, as
        :meth:`add_cells` would share them), in slot order matching ``cells``.

        Takes ownership of the ``cells`` / ``stats`` lists and of any posting
        map whose slot collections are already ``set``\\ s (callers that
        interned their slot ints keep that sharing; plain iterables are
        copied into fresh sets).
        """
        if len(cells) != len(stats):
            raise QueryError(
                f"{len(cells)} cells with {len(stats)} stats entries"
            )
        index = cls.__new__(cls)
        index.num_dims = num_dims
        index._cells = cells
        index._stats = stats
        index._postings = [
            {
                value: slots if isinstance(slots, set) else set(slots)
                for value, slots in dim_postings.items()
            }
            for dim_postings in postings
        ]
        if len(index._postings) != num_dims:
            raise QueryError(
                f"{len(index._postings)} posting maps for {num_dims} dimensions"
            )
        # ``slot_ints`` lets the caller share one canonical int object per
        # slot between the slot map and its (pre-interned) posting sets.
        if slot_ints is not None and len(slot_ints) == len(cells):
            index._slot_of = dict(zip(cells, slot_ints))
        else:
            index._slot_of = {cell: slot for slot, cell in enumerate(cells)}
        if len(index._slot_of) != len(cells):
            raise QueryError("duplicate cells in persisted index state")
        index._dead = set()
        index._best_slot = best_slot
        index._mutate_lock = threading.Lock()
        index.generation = 0
        index._columns_cache = None
        return index

    # ------------------------------------------------------------------ #
    # In-place maintenance                                                #
    # ------------------------------------------------------------------ #

    def add_cells(self, items: Iterable[Tuple[Cell, CellStats]]) -> None:
        """Index additional cells without rebuilding.

        The stats objects are shared, not copied — a caller that later mutates
        a cell's :class:`CellStats` in place (the incremental-merge update
        path) must call :meth:`touch_cell` so the apex closure stays correct.
        """
        with self._mutate_lock:
            added = False
            for cell, stats in items:
                if len(cell) != self.num_dims:
                    raise QueryError(
                        f"cell {cell!r} has {len(cell)} entries, "
                        f"expected {self.num_dims}"
                    )
                if cell in self._slot_of:
                    raise QueryError(f"cell {cell!r} is already indexed")
                slot = len(self._cells)
                self._cells.append(cell)
                self._stats.append(stats)
                self._slot_of[cell] = slot
                for dim, value in enumerate(cell):
                    if value is not None:
                        self._postings[dim].setdefault(value, set()).add(slot)
                if (
                    self._best_slot is None
                    or stats.count > self._stats[self._best_slot].count
                ):
                    self._best_slot = slot
                added = True
            if added:
                self.generation += 1

    def remove_cells(self, cells: Iterable[Cell]) -> None:
        """Drop cells from every posting list, tombstoning their slots."""
        with self._mutate_lock:
            rescore = False
            removed = False
            for cell in cells:
                slot = self._slot_of.pop(cell, None)
                if slot is None:
                    raise QueryError(f"cell {cell!r} is not indexed")
                self._dead.add(slot)
                removed = True
                for dim, value in enumerate(cell):
                    if value is not None:
                        slots = self._postings[dim].get(value)
                        if slots is not None:
                            slots.discard(slot)
                            if not slots:
                                del self._postings[dim][value]
                if slot == self._best_slot:
                    rescore = True
            if rescore:
                self._best_slot = max(
                    self._slot_of.values(),
                    key=lambda live: self._stats[live].count,
                    default=None,
                )
            if removed:
                self.generation += 1

    def touch_cell(self, cell: Cell) -> None:
        """Re-evaluate the apex closure after a cell's count changed in place."""
        with self._mutate_lock:
            slot = self._slot_of.get(cell)
            if slot is None:
                raise QueryError(f"cell {cell!r} is not indexed")
            if (
                self._best_slot is None
                or self._stats[slot].count > self._stats[self._best_slot].count
            ):
                self._best_slot = slot
            elif slot == self._best_slot:
                # The best cell's own count changed (it can only have grown
                # under append-only maintenance, but re-scan to stay correct
                # in general).
                self._best_slot = max(
                    self._slot_of.values(),
                    key=lambda live: self._stats[live].count,
                    default=None,
                )
            self.generation += 1

    # ------------------------------------------------------------------ #
    # Slot translation                                                    #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._slot_of)

    def cell_at(self, slot: int) -> Cell:
        return self._cells[slot]

    def stats_at(self, slot: int) -> CellStats:
        return self._stats[slot]

    def postings_size(self) -> int:
        """Total number of slot entries across all posting lists (for reports)."""
        return sum(
            len(slots) for postings in self._postings for slots in postings.values()
        )

    # ------------------------------------------------------------------ #
    # Lookups                                                             #
    # ------------------------------------------------------------------ #

    def specialisation_slots(self, cell: Cell) -> Set[int]:
        """Slots of the materialised cells that are specialisations of ``cell``.

        Computed as the intersection of the posting lists of the query's fixed
        dimensions, starting from the smallest list.  A fixed value never seen
        by the cube short-circuits to the empty set.  The apex query (no fixed
        dimension) matches every slot.
        """
        if len(cell) != self.num_dims:
            raise QueryError(
                f"query cell {cell!r} has {len(cell)} entries, expected {self.num_dims}"
            )
        lists: List[Set[int]] = []
        for dim, value in enumerate(cell):
            if value is None:
                continue
            slots = self._postings[dim].get(value)
            if slots is None:
                return set()
            lists.append(slots)
        if not lists:
            return set(self._slot_of.values())
        lists.sort(key=len)
        result = set(lists[0])
        for slots in lists[1:]:
            result &= slots
            if not result:
                break
        return result

    def specialisations(self, cell: Cell) -> Iterator[Tuple[Cell, CellStats]]:
        """The materialised specialisations of ``cell`` with their stats."""
        for slot in self.specialisation_slots(cell):
            yield self._cells[slot], self._stats[slot]

    def closure_slot(self, cell: Cell) -> Optional[int]:
        """Slot of the closure of ``cell``: its maximum-count specialisation.

        ``None`` when no materialised cell specialises ``cell`` — i.e. the
        query cell is empty or was pruned by the iceberg condition.
        """
        fixed_dims = [dim for dim, value in enumerate(cell) if value is not None]
        if len(cell) != self.num_dims:
            raise QueryError(
                f"query cell {cell!r} has {len(cell)} entries, expected {self.num_dims}"
            )
        if not fixed_dims:
            return self._best_slot
        best: Optional[int] = None
        for slot in self.specialisation_slots(cell):
            if best is None or self._stats[slot].count > self._stats[best].count:
                best = slot
        return best

    def closure(self, cell: Cell) -> Optional[Tuple[Cell, CellStats]]:
        """The closure cell and its stats, or ``None`` when unanswerable."""
        slot = self.closure_slot(cell)
        if slot is None:
            return None
        return self._cells[slot], self._stats[slot]

    def columns_view(self) -> Optional[List[object]]:
        """Per-dimension ``int64`` arrays over the indexed cells, by slot.

        ``arrays[dim][slot]`` is the cell's fixed value on ``dim``, with
        ``-1`` standing in for ``*`` (value codes are non-negative by
        construction — see :mod:`repro.core.encode`).  Tombstoned slots keep
        their stale rows; callers only ever gather at live slots.  Returns
        ``None`` when the active column backend is not vectorized, which
        tells callers to take their per-slot reference path.

        The arrays are cached per :attr:`generation`.  Published indexes are
        immutable, so on the serving path the rebuild cost is paid once per
        publish and amortised across every query against that index.
        """
        from ..core.columns import get_backend

        backend = get_backend()
        if backend.np is None:
            return None
        cached = self._columns_cache
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        np = backend.np
        cells = self._cells
        arrays: List[object] = [
            np.fromiter(
                (-1 if cell[dim] is None else cell[dim] for cell in cells),
                dtype=np.int64,
                count=len(cells),
            )
            for dim in range(self.num_dims)
        ]
        self._columns_cache = (self.generation, arrays)
        return arrays

    def values_on_dimension(self, dim: int) -> Mapping[int, Set[int]]:
        """The posting map of one dimension (used by slice enumeration)."""
        if not 0 <= dim < self.num_dims:
            raise QueryError(f"dimension {dim} outside 0..{self.num_dims - 1}")
        return self._postings[dim]
