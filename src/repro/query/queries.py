"""Query and answer model of the serving layer.

Three query shapes cover the OLAP operations the closed cube can answer
without recomputation:

* :class:`PointQuery` — the aggregate of one cell of the lattice, materialised
  or not (quotient-cube closure semantics).
* :class:`SliceQuery` — fix some dimensions, group by others: the iceberg
  cells of one cuboid restricted to the fixed values.
* :class:`RollupQuery` — start from a cell and collapse some of its fixed
  dimensions to ``*`` (the classic roll-up move), then answer the resulting
  point.

Queries are frozen dataclasses so they are hashable — the engine uses the
normalised target cell as its cache key.  Answers always come back as
:class:`QueryAnswer`; ``count is None`` means the cell is empty or was pruned
by the iceberg condition (the closed iceberg cube cannot answer it, by
design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from ..core.cell import Cell, cell_from_mapping, make_cell
from ..core.errors import QueryError, SchemaError


@dataclass(frozen=True)
class QueryAnswer:
    """The answer to one point-shaped query.

    Attributes
    ----------
    cell:
        The (normalised) query cell.
    count:
        Its aggregate count, or ``None`` when the cell is empty or below the
        iceberg threshold.
    measures:
        Payload measure values of the closure, keyed by measure name.
    closure:
        The materialised closed cell that carried the answer, when any.
    """

    cell: Cell
    count: Optional[int]
    measures: Tuple[Tuple[str, float], ...] = ()
    closure: Optional[Cell] = None

    @property
    def found(self) -> bool:
        """``True`` when the cube could answer the query."""
        return self.count is not None

    def measure(self, name: str) -> float:
        for key, value in self.measures:
            if key == name:
                return value
        raise QueryError(f"answer carries no measure named {name!r}")

    def measures_dict(self) -> Dict[str, float]:
        return dict(self.measures)


def _validate_cell(num_dims: int, cell: Sequence[Optional[int]]) -> Cell:
    try:
        normalised = cell_from_mapping(num_dims, tuple(cell))
    except SchemaError as exc:
        raise QueryError(str(exc)) from exc
    for dim, value in enumerate(normalised):
        if value is not None and (not isinstance(value, int) or value < 0):
            raise QueryError(
                f"dimension {dim} of query cell {cell!r} must be a "
                f"non-negative encoded value or None, got {value!r}"
            )
    return normalised


@dataclass(frozen=True)
class PointQuery:
    """Aggregate of a single cell; ``cell`` uses ``None`` for ``*``."""

    cell: Cell

    def target_cell(self, num_dims: int) -> Cell:
        return _validate_cell(num_dims, self.cell)


@dataclass(frozen=True)
class RollupQuery:
    """Collapse ``dims`` of ``cell`` to ``*`` and answer the resulting cell."""

    cell: Cell
    dims: Tuple[int, ...]

    def target_cell(self, num_dims: int) -> Cell:
        base = _validate_cell(num_dims, self.cell)
        for dim in self.dims:
            if not 0 <= dim < num_dims:
                raise QueryError(f"roll-up dimension {dim} outside 0..{num_dims - 1}")
        rolled = set(self.dims)
        return tuple(None if dim in rolled else value for dim, value in enumerate(base))


@dataclass(frozen=True)
class SliceQuery:
    """Fix ``fixed`` dimensions, group by ``group_by`` dimensions.

    The answer is one :class:`QueryAnswer` per iceberg cell of the
    ``fixed + group_by`` cuboid whose fixed dimensions carry the requested
    values — exactly the rows a ``GROUP BY`` over the slice would produce
    under the iceberg condition.
    """

    fixed: Tuple[Tuple[int, int], ...]
    group_by: Tuple[int, ...] = ()

    @classmethod
    def of(cls, fixed: Mapping[int, int], group_by: Sequence[int] = ()) -> "SliceQuery":
        """Build from a ``{dim: value}`` mapping and a group-by dimension list."""
        return cls(tuple(sorted(fixed.items())), tuple(group_by))

    def fixed_mapping(self) -> Dict[int, int]:
        return dict(self.fixed)

    def validate(self, num_dims: int) -> Cell:
        """Check dimension ranges/overlap; return the fixed-part cell."""
        fixed = self.fixed_mapping()
        if len(fixed) != len(self.fixed):
            raise QueryError(f"slice fixes a dimension twice: {self.fixed!r}")
        overlap = set(fixed) & set(self.group_by)
        if overlap:
            raise QueryError(
                f"slice group-by dimensions {sorted(overlap)} are already fixed"
            )
        if len(set(self.group_by)) != len(self.group_by):
            raise QueryError(f"duplicate group-by dimensions: {self.group_by!r}")
        for dim in list(fixed) + list(self.group_by):
            if not 0 <= dim < num_dims:
                raise QueryError(f"slice dimension {dim} outside 0..{num_dims - 1}")
        return make_cell(num_dims, fixed)


#: Anything the engine's ``execute`` / ``execute_many`` accepts.
Query = Union[PointQuery, RollupQuery, SliceQuery]


def point(num_dims: int, assignment: Mapping[int, int]) -> PointQuery:
    """Convenience constructor: a point query from a sparse ``{dim: value}``."""
    return PointQuery(make_cell(num_dims, dict(assignment)))
