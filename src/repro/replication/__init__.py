"""The replicated serving tier: one leader, N followers, one chain.

This package promotes the catalog's snapshot + delta-segment + append-journal
chain (:mod:`repro.catalog`, :mod:`repro.storage`) into a replication log.
Nothing new is written to disk — the chain the leader already maintains for
crash recovery *is* the log followers tail:

* :mod:`~repro.replication.lease` — per-cube single-writer leases held
  through the catalog manifest: ``leader_id`` / monotonically increasing
  ``leader_epoch`` / ``lease_expires_at``.  The epoch fences superseded
  leaders: :meth:`repro.catalog.CubeCatalog.append` with ``lease=...``
  rejects writes carrying a stale epoch with
  :class:`~repro.core.errors.LeaseFencedError`.
* :mod:`~repro.replication.tailer` — :class:`ReplicationTailer` /
  :class:`CubeFollower`: replay journal records and reconcile published
  compactions into read-only replicas, publishing pinned
  :class:`~repro.session.serving.CubeView` reads and a cached
  ``replica_lag`` (un-applied journal bytes + leader-epoch delta).
* :mod:`~repro.replication.client` — :class:`ReplicaSet`: the routing
  client that sends writes to the leader and round-robins reads over
  followers.

A follower process is one command away::

    python -m repro.replication /var/lib/cubes --port 7172

See docs/REPLICATION.md for the design (lease/epoch semantics, failover,
compaction interaction) and docs/OPERATIONS.md for the runbook.
"""

from .client import ReplicaSet
from .lease import (
    DEFAULT_LEASE_TTL,
    CubeLease,
    acquire,
    read,
    release,
    renew,
)
from .tailer import CubeFollower, ReplicationTailer

__all__ = [
    "CubeFollower",
    "CubeLease",
    "DEFAULT_LEASE_TTL",
    "ReplicaSet",
    "ReplicationTailer",
    "acquire",
    "read",
    "release",
    "renew",
]
