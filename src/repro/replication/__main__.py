"""``python -m repro.replication``: run a read-only follower over TCP.

Point it at the same catalog directory the leader serves::

    PYTHONPATH=src python -m repro.server      /var/lib/cubes --port 7171
    PYTHONPATH=src python -m repro.replication /var/lib/cubes --port 7172
    PYTHONPATH=src python -m repro.replication /var/lib/cubes --port 7173

Each follower bootstraps its replicas from the snapshot chain, tails the
append journal on a background thread, and serves the read verbs of the
line-JSON protocol (:mod:`repro.server.tcp`); write verbs answer
``{"ok": false}``.  ``{"op": "replica"}`` reports each cube's cursor and
lag; ``{"op": "stats"}`` carries ``role`` and per-cube ``replica_lag``.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
from typing import Optional, Sequence

from ..catalog import CubeCatalog
from ..server.server import AsyncCubeServer
from ..server.tcp import serve_tcp
from .tailer import DEFAULT_POLL_INTERVAL, ReplicationTailer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replication",
        description="Run a read-only follower of a cube catalog directory: "
        "tail the append journal into replicas and serve them over the "
        "line-JSON TCP protocol.",
    )
    parser.add_argument("catalog", help="the leader's catalog directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7172)
    parser.add_argument(
        "--cubes", nargs="*", default=None,
        help="cube names to follow (default: every registered cube)",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=DEFAULT_POLL_INTERVAL,
        help="seconds between journal polls "
        f"(default {DEFAULT_POLL_INTERVAL})",
    )
    parser.add_argument(
        "--state-dir", default=None,
        help="directory for persisted chain cursors (enables warm restarts "
        "that skip the snapshot re-read; default: none)",
    )
    parser.add_argument(
        "--query-workers", type=int, default=4,
        help="threads answering queries (default 4)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="most query specs coalesced per engine call (default 64)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=1024,
        help="per-cube query queue bound (back-pressure, default 1024)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=None,
        help="per-request deadline in seconds (default: no timeout)",
    )
    return parser


async def run_follower(args: argparse.Namespace) -> None:
    catalog = CubeCatalog(args.catalog)
    tailer = ReplicationTailer(
        args.catalog,
        cubes=args.cubes,
        poll_interval=args.poll_interval,
        state_dir=args.state_dir,
    )
    tailer.start()
    server = AsyncCubeServer(
        catalog,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        query_workers=args.query_workers,
        request_timeout=args.request_timeout,
        role="follower",
        tailer=tailer,
    )
    try:
        async with server:
            tcp = await serve_tcp(server, host=args.host, port=args.port)
            sockets = tcp.sockets or ()
            for sock in sockets:
                print(
                    f"following catalog {catalog.directory!r} "
                    f"({sorted(tailer.followers)}) on {sock.getsockname()}"
                )
            try:
                await asyncio.Event().wait()  # run until cancelled
            finally:
                tcp.close()
                await tcp.wait_closed()
    finally:
        tailer.stop()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(run_follower(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
