"""`ReplicaSet`: one client over a leader + N follower endpoints.

The routing policy of the replicated tier, in one object: every *write*
(append, create, drop, save, compact) goes to the leader — the lease holder
is the only process whose catalog may touch the chain — and every *read*
(query, query_many) round-robins over the follower connections, falling
back to the leader when no followers are attached.  Reads on followers are
eventually consistent: a follower answers from its pinned replica view,
which trails the leader by its ``replica_lag`` (readable per endpoint via
:meth:`ReplicaSet.replica_status`).

Built on the same pipelined :class:`~repro.loadgen.client.LineConnection`
the load harness uses, so a ReplicaSet composes with the open-loop replayer
and with plain ``asyncio`` code alike::

    replicas = await ReplicaSet.connect(
        ("127.0.0.1", 7171),                       # leader
        [("127.0.0.1", 7172), ("127.0.0.1", 7173)] # followers
    )
    await replicas.append("sales", new_rows)       # -> leader
    await replicas.query("sales", {"store": "nyc"})  # -> a follower
    await replicas.close()
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ReplicationError
from ..loadgen.client import LineConnection

__all__ = ["ReplicaSet"]

#: A TCP endpoint: ``(host, port)``.
Endpoint = Tuple[str, int]


class ReplicaSet:
    """Route requests across a replicated serving tier (async)."""

    def __init__(
        self,
        leader: LineConnection,
        followers: Sequence[LineConnection] = (),
        request_timeout: Optional[float] = None,
    ) -> None:
        self.leader = leader
        self.followers: List[LineConnection] = list(followers)
        self.request_timeout = request_timeout
        self._next_follower = 0
        self.counters: Dict[str, int] = {"leader_requests": 0, "follower_requests": 0}

    @classmethod
    async def connect(
        cls,
        leader: Endpoint,
        followers: Sequence[Endpoint] = (),
        request_timeout: Optional[float] = None,
    ) -> "ReplicaSet":
        """Open one pipelined connection per endpoint."""
        leader_conn = await LineConnection.open(*leader)
        follower_conns = []
        try:
            for endpoint in followers:
                follower_conns.append(await LineConnection.open(*endpoint))
        except BaseException:
            await leader_conn.close()
            for conn in follower_conns:
                await conn.close()
            raise
        return cls(leader_conn, follower_conns, request_timeout=request_timeout)

    # -------------------------------------------------------------- #
    # Routing                                                         #
    # -------------------------------------------------------------- #

    def _read_connection(self) -> LineConnection:
        if not self.followers:
            return self.leader
        conn = self.followers[self._next_follower % len(self.followers)]
        self._next_follower += 1
        return conn

    async def _request(
        self, conn: LineConnection, payload: Dict[str, object]
    ) -> object:
        if conn is self.leader:
            self.counters["leader_requests"] += 1
        else:
            self.counters["follower_requests"] += 1
        response = await conn.request(payload, timeout=self.request_timeout)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ReplicationError(
                f"{payload.get('op')!r} failed on the "
                f"{'leader' if conn is self.leader else 'follower'}: "
                f"{error.get('type')}: {error.get('message')}"
            )
        return response.get("result")

    # -------------------------------------------------------------- #
    # Reads (load-balanced over followers)                            #
    # -------------------------------------------------------------- #

    async def query(self, cube: str, spec: Dict[str, object]) -> object:
        """One op-spec (or bare point spec), on the next follower in turn."""
        return await self._request(
            self._read_connection(), {"op": "query", "cube": cube, "q": spec}
        )

    async def query_many(
        self, cube: str, specs: Sequence[Dict[str, object]]
    ) -> List[object]:
        """A batch of specs on one follower (one version, one round trip)."""
        result = await self._request(
            self._read_connection(),
            {"op": "query_many", "cube": cube, "q": list(specs)},
        )
        return result  # type: ignore[return-value]

    # -------------------------------------------------------------- #
    # Writes (always the leader)                                      #
    # -------------------------------------------------------------- #

    async def append(self, cube: str, rows: Sequence[object]) -> object:
        return await self._request(
            self.leader,
            {"op": "append", "cube": cube, "rows": [list(row) for row in rows]},
        )

    async def create(
        self,
        cube: str,
        rows: Sequence[object],
        schema: Optional[object] = None,
    ) -> object:
        payload: Dict[str, object] = {
            "op": "create", "cube": cube, "rows": [list(row) for row in rows],
        }
        if schema is not None:
            payload["schema"] = schema
        return await self._request(self.leader, payload)

    async def drop(self, cube: str) -> object:
        return await self._request(self.leader, {"op": "drop", "cube": cube})

    async def save(self, cube: str) -> object:
        return await self._request(self.leader, {"op": "save", "cube": cube})

    async def compact(self, cube: str, mode: str = "auto") -> object:
        return await self._request(
            self.leader, {"op": "compact", "cube": cube, "mode": mode}
        )

    # -------------------------------------------------------------- #
    # Introspection                                                   #
    # -------------------------------------------------------------- #

    async def describe(self, cube: str) -> object:
        """Manifest metadata, from the leader (the writer's view is the
        authoritative one — followers share the same directory anyway)."""
        return await self._request(
            self.leader, {"op": "describe", "cube": cube}
        )

    async def stats(self) -> Dict[str, object]:
        """``stats()`` from every endpoint: the leader plus each follower."""
        results = await asyncio.gather(
            self._request(self.leader, {"op": "stats"}),
            *(
                self._request(conn, {"op": "stats"})
                for conn in self.followers
            ),
        )
        return {
            "leader": results[0],
            "followers": list(results[1:]),
            "client": dict(self.counters),
        }

    async def replica_status(self) -> List[object]:
        """The ``replica`` verb from every follower (cursor, counters, lag)."""
        return list(
            await asyncio.gather(
                *(
                    self._request(conn, {"op": "replica"})
                    for conn in self.followers
                )
            )
        )

    async def close(self) -> None:
        await self.leader.close()
        for conn in self.followers:
            await conn.close()
