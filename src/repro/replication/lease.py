"""Per-cube single-writer leases, held through the catalog manifest.

The replicated tier's coordination point is the file every process already
shares: ``catalog.json``.  Each cube's manifest entry carries a lease triple
— ``leader_id`` (who may append), ``leader_epoch`` (a monotonic acquisition
counter), and ``lease_expires_at`` (the wall-clock instant after which the
lease may be taken over).  This module owns every transition of that triple:

* :func:`acquire` — take the cube's lease if it is free, expired, or already
  ours.  Every takeover from another holder bumps the epoch; the epoch never
  decreases, so a superseded leader's appends are *fenced* by comparing its
  remembered epoch against the manifest (see
  :meth:`repro.catalog.CubeCatalog.append`).
* :func:`renew` — extend our own lease.  Fenced: renewing a lease someone
  else took over raises :class:`~repro.core.errors.LeaseFencedError` instead
  of silently stealing it back.
* :func:`release` — give the lease up early (expiry zeroed, holder cleared,
  epoch kept — it must stay monotonic).
* :func:`read` — the current on-disk triple, for observers.

Transitions are serialised by the directory's manifest lock
(:class:`repro.storage.locks.ManifestLock` — an ``O_EXCL`` ``catalog.lock``
file next to the manifest, broken by rename-and-verify once stale).  The
*same* lock is taken by the leader catalog around every one of its own
manifest saves (``CubeCatalog._save_manifest``), so the two kinds of
``catalog.json`` writer — lease transitions here, chain flips there — can
never interleave their load–mutate–save cycles: a takeover written by
:func:`acquire` cannot be rolled back on disk by a concurrent compaction,
and the append-path fence always sees the current triple.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from ..core.errors import LeaseFencedError, ReplicationError
from ..storage.locks import ManifestLock
from ..storage.manifest import CatalogManifest

__all__ = [
    "CubeLease",
    "DEFAULT_LEASE_TTL",
    "acquire",
    "release",
    "renew",
    "read",
]

#: Default lease lifetime in seconds.  Long enough that a healthy leader
#: renewing at half-TTL never loses its lease to scheduling jitter, short
#: enough that failover (expiry + takeover) completes in seconds.
DEFAULT_LEASE_TTL = 10.0


@dataclass(frozen=True)
class CubeLease:
    """One writer's claim on one cube, as last read from the manifest.

    Frozen: a lease is a *fact about a moment* — renewing or re-acquiring
    returns a new value rather than mutating the one a fenced append may
    still be holding.  ``holder_id`` / ``epoch`` are what the catalog's
    append fencing compares against the manifest.
    """

    name: str
    holder_id: str
    epoch: int
    expires_at: float

    def remaining(self, now: float | None = None) -> float:
        """Seconds of validity left (negative once expired)."""
        return self.expires_at - (time.time() if now is None else now)


def _load_entry(directory: str, name: str):
    manifest = CatalogManifest.load(directory)
    entry = manifest.entries.get(name)
    if entry is None:
        raise ReplicationError(
            f"no cube named {name!r} in catalog {directory!r}; known cubes: "
            f"{sorted(manifest.entries)}"
        )
    return manifest, entry


def read(directory: str, name: str) -> CubeLease:
    """The cube's current lease triple as recorded on disk."""
    _, entry = _load_entry(directory, name)
    return CubeLease(
        name=name,
        holder_id=entry.leader_id,
        epoch=entry.leader_epoch,
        expires_at=entry.lease_expires_at,
    )


def acquire(
    directory: str,
    name: str,
    holder_id: str,
    ttl: float = DEFAULT_LEASE_TTL,
) -> CubeLease:
    """Take the cube's lease for ``holder_id``; raise if it is validly held.

    Acquirable states: never held, expired, or already held by
    ``holder_id`` (re-acquiring our own live lease just extends it, same
    epoch).  Taking over from a *different* holder — even an expired one —
    bumps the epoch, which is what fences the old holder's in-flight
    appends.  Raises :class:`~repro.core.errors.ReplicationError` while
    another holder's lease is still live.
    """
    if not holder_id:
        raise ReplicationError("lease holder_id must be a non-empty string")
    with ManifestLock(directory):
        manifest, entry = _load_entry(directory, name)
        now = time.time()
        if (
            entry.leader_id
            and entry.leader_id != holder_id
            and entry.lease_expires_at > now
        ):
            raise ReplicationError(
                f"cube {name!r} lease is held by {entry.leader_id!r} (epoch "
                f"{entry.leader_epoch}) for another "
                f"{entry.lease_expires_at - now:.1f}s"
            )
        if entry.leader_id != holder_id:
            entry.leader_epoch += 1
        entry.leader_id = holder_id
        entry.lease_expires_at = now + ttl
        manifest.save(directory)
        return CubeLease(
            name=name,
            holder_id=holder_id,
            epoch=entry.leader_epoch,
            expires_at=entry.lease_expires_at,
        )


def renew(
    directory: str, lease: CubeLease, ttl: float = DEFAULT_LEASE_TTL
) -> CubeLease:
    """Extend ``lease``; fenced against takeovers.

    Raises :class:`~repro.core.errors.LeaseFencedError` when the manifest
    records a different holder or a higher epoch — the renewer has been
    superseded and must stop writing, not win the lease back.
    """
    with ManifestLock(directory):
        manifest, entry = _load_entry(directory, lease.name)
        if entry.leader_epoch > lease.epoch or entry.leader_id != lease.holder_id:
            raise LeaseFencedError(
                f"cannot renew lease on {lease.name!r}: {lease.holder_id!r} "
                f"holds epoch {lease.epoch}, but the manifest records leader "
                f"{entry.leader_id!r} at epoch {entry.leader_epoch}"
            )
        entry.lease_expires_at = time.time() + ttl
        manifest.save(directory)
        return replace(lease, expires_at=entry.lease_expires_at)


def release(directory: str, lease: CubeLease) -> None:
    """Give the lease up early; a no-op if it was already taken over."""
    with ManifestLock(directory):
        manifest, entry = _load_entry(directory, lease.name)
        if entry.leader_epoch != lease.epoch or entry.leader_id != lease.holder_id:
            return  # superseded: the new holder's lease is not ours to clear
        entry.leader_id = ""
        entry.lease_expires_at = 0.0
        manifest.save(directory)
