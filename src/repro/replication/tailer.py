"""Followers: replaying the catalog chain into read-only replicas.

A follower process points a :class:`ReplicationTailer` at the *same catalog
directory* the leader writes (shared-nothing applies to serving state, not
to the replication log — the chain on disk IS the log).  Per tailed cube a
:class:`CubeFollower` keeps

* a **replica** :class:`~repro.session.serving.ServingCube` built once from
  the snapshot chain (the bootstrap), then advanced incrementally,
* a :class:`~repro.storage.chain.ChainPosition` **cursor** — which chain
  identity the replica has folded and how many journal bytes past it,
* a published :class:`~repro.session.serving.CubeView` — the pinned,
  cache-free read surface follower servers answer from, republished
  copy-on-publish after every applied batch,
* a cached **lag** pair (un-applied journal bytes + leader-epoch delta) so
  server ``stats()`` never touches disk.

Each :meth:`CubeFollower.poll` reconciles against the manifest:

1. durable rows exceed the replica's rows → a compaction folded batches the
   replica never saw (or the replica is behind a truncated journal); the
   only safe move is a full **re-bootstrap** from the new chain.  Delta
   segments cannot be applied to a live replica — the on-disk fold is
   exact-start-aligned and pre-engine — so the tailer never tries.
2. the chain identity (generation / segment list) changed but the replica
   already holds at least the durable rows → the compaction folded batches
   the replica *had already replayed from the journal*; adopt the new
   identity and reset the cursor to the entry's journal offset.  No data
   moves.
3. otherwise replay the journal tail from the cursor (tolerating one torn
   tail line by not advancing past it) and apply each batch with
   ``copy_on_publish=True`` so in-flight reads keep their pinned view.

Cursors persist (``<name>.cursor.json`` under ``state_dir``, written through
the :mod:`repro.storage.atomic` funnel), so a tailer restarted over a
still-live replica resumes from the cursor and replays only the journal
tail — no snapshot re-read (``snapshot_loads`` stays 0 across the restart).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import CatalogError, ReplicationError
from ..session.serving import CubeView, ServingCube
from ..storage.atomic import atomic_write_text
from ..storage.chain import ChainPosition, read_journal_tail
from ..storage.manifest import CatalogManifest, CubeEntry
from . import lease as lease_mod

__all__ = ["CubeFollower", "ReplicationTailer"]

#: How often a background tailer polls the chain for new records.
DEFAULT_POLL_INTERVAL = 0.05

#: After this many *consecutive* failed polls a follower stops claiming its
#: cached ``caught_up`` lag: one or two failures are transient races with
#: the leader (a compaction unlinking a chain file between the manifest
#: read and the load) that the next poll resolves, but a persistent streak
#: means the cached lag is a stale claim and operators must see the
#: follower as degraded, not frozen-but-healthy.
POLL_ERRORS_BEFORE_STALE = 3

#: Default promotion catch-up budget, in seconds (see
#: :meth:`ReplicationTailer.promote`).
DEFAULT_CATCHUP_TIMEOUT = 30.0


class CubeFollower:
    """One cube's read-only replica, advanced by tailing its chain."""

    def __init__(
        self, directory: str, name: str, state_dir: Optional[str] = None
    ) -> None:
        self.directory = os.path.abspath(directory)
        self.name = name
        self.state_dir = os.path.abspath(state_dir) if state_dir else None
        self.replica: Optional[ServingCube] = None
        self.cursor = ChainPosition()
        self._view: Optional[CubeView] = None
        self._lag: Dict[str, object] = {
            "journal_bytes": 0,
            "epoch_delta": 0,
            "caught_up": False,
        }
        self._caught_up_epoch = 0
        self.counters: Dict[str, int] = {
            "polls": 0,
            "poll_errors": 0,
            "snapshot_loads": 0,
            "rebootstraps": 0,
            "batches_applied": 0,
            "rows_applied": 0,
        }
        self._last_error: Optional[str] = None
        self._consecutive_errors = 0
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Chain access                                                    #
    # -------------------------------------------------------------- #

    def _entry(self) -> CubeEntry:
        manifest = CatalogManifest.load(self.directory)
        entry = manifest.entries.get(self.name)
        if entry is None:
            raise ReplicationError(
                f"cube {self.name!r} is not in the manifest of "
                f"{self.directory!r}; known cubes: {sorted(manifest.entries)}"
            )
        return entry

    def _journal_path(self, entry: CubeEntry) -> str:
        return os.path.join(self.directory, entry.appends)

    @staticmethod
    def _as_rows(batch: List[object]) -> List[object]:
        return [tuple(row) if isinstance(row, list) else row for row in batch]

    # -------------------------------------------------------------- #
    # Bootstrap / resume                                              #
    # -------------------------------------------------------------- #

    def bootstrap(self) -> None:
        """Build the replica from the full chain: snapshot + segments + tail."""
        entry = self._entry()
        snapshot_path = os.path.join(self.directory, entry.snapshot)
        segment_paths = [
            os.path.join(self.directory, segment) for segment in entry.segments
        ]
        replica = ServingCube.load(snapshot_path, segments=segment_paths)
        self.counters["snapshot_loads"] += 1
        batches, consumed = read_journal_tail(
            self._journal_path(entry), entry.journal_offset
        )
        for batch in batches:
            rows = self._as_rows(batch)
            replica.append(rows)
            self.counters["batches_applied"] += 1
            self.counters["rows_applied"] += len(rows)
        self.replica = replica
        self.cursor = ChainPosition(
            generation=entry.generation,
            segments=tuple(entry.segments),
            journal_offset=consumed,
            rows=replica.relation.num_tuples,
        )
        self._publish(entry)
        self._persist_cursor()

    def resume(
        self, replica: ServingCube, cursor: Optional[ChainPosition] = None
    ) -> None:
        """Adopt a still-live ``replica`` and continue from its cursor.

        This is the warm-restart path: a tailer torn down and rebuilt in the
        same process (or handed a replica by its supervisor) does not pay a
        snapshot re-read — it trusts the persisted cursor, verifies it still
        matches the replica and the on-disk chain, and replays only the
        journal tail on the next :meth:`poll`.  Falls back to a cold
        :meth:`bootstrap` when no valid cursor exists or the chain has moved
        past it.
        """
        if cursor is None:
            cursor = self._load_cursor()
        if cursor is None:
            self.bootstrap()
            return
        entry = self._entry()
        if (
            cursor.rows != replica.relation.num_tuples
            or not cursor.same_chain(entry.generation, tuple(entry.segments))
            or entry.rows > cursor.rows
        ):
            self.bootstrap()
            return
        self.replica = replica
        self.cursor = cursor
        self._publish(entry)

    # -------------------------------------------------------------- #
    # Tailing                                                         #
    # -------------------------------------------------------------- #

    def poll(self) -> bool:
        """Advance the replica by one reconciliation pass.

        Returns whether anything changed (batches applied, identity adopted,
        or a re-bootstrap).  Thread-safe against concurrent :meth:`poll` /
        :meth:`view` calls.
        """
        with self._lock:
            changed = self._poll_locked()
            self._consecutive_errors = 0
            return changed

    def note_poll_error(self, exc: BaseException) -> None:
        """Record a failed :meth:`poll` so the failure is visible, not fatal.

        The background tailer routes every poll exception here and keeps
        tailing: a cube dropped from the manifest, a compaction unlinking a
        stale snapshot between the manifest read and the load, a torn
        cursor directory — all either resolve on a later poll or deserve an
        operator's eye, and neither justifies silently killing the thread
        for every *other* follower.  After
        :data:`POLL_ERRORS_BEFORE_STALE` consecutive failures the cached
        lag stops claiming ``caught_up`` so ``stats()`` shows the follower
        degraded instead of frozen at its last healthy report.
        """
        self.counters["poll_errors"] += 1
        self._consecutive_errors += 1
        self._last_error = f"{type(exc).__name__}: {exc}"
        if self._consecutive_errors >= POLL_ERRORS_BEFORE_STALE:
            lag = dict(self._lag)
            lag["caught_up"] = False
            self._lag = lag

    def _poll_locked(self) -> bool:
        self.counters["polls"] += 1
        if self.replica is None:
            self.bootstrap()
            return True
        entry = self._entry()
        applied = self.cursor.rows
        if entry.rows > applied:
            # Durable state holds rows this replica never replayed: a
            # compaction folded batches from a journal window we missed.
            self.counters["rebootstraps"] += 1
            self.bootstrap()
            return True
        changed = False
        if not self.cursor.same_chain(entry.generation, tuple(entry.segments)):
            # Compaction folded batches we had already applied from the
            # journal: adopt the new identity, nothing to re-read.
            self.cursor = ChainPosition(
                generation=entry.generation,
                segments=tuple(entry.segments),
                journal_offset=entry.journal_offset,
                rows=applied,
            )
            changed = True
        path = self._journal_path(entry)
        try:
            batches, consumed = read_journal_tail(
                path, self.cursor.journal_offset
            )
        except CatalogError:
            # The journal was truncated and rewritten underneath our cursor
            # (compaction raced this poll); the chain identity we would
            # reconcile against is already stale too.  Start over.
            self.counters["rebootstraps"] += 1
            self.bootstrap()
            return True
        for batch in batches:
            rows = self._as_rows(batch)
            self.replica.append(rows, copy_on_publish=True)
            self.counters["batches_applied"] += 1
            self.counters["rows_applied"] += len(rows)
        if batches or changed:
            self.cursor = ChainPosition(
                generation=self.cursor.generation,
                segments=self.cursor.segments,
                journal_offset=consumed,
                rows=self.replica.relation.num_tuples,
            )
            self._publish(entry)
            self._persist_cursor()
        else:
            self._update_lag(entry)
        return bool(batches) or changed

    def _publish(self, entry: CubeEntry) -> None:
        assert self.replica is not None
        self._view = self.replica.read_snapshot()
        self._update_lag(entry)

    def _update_lag(self, entry: CubeEntry) -> None:
        try:
            size = os.path.getsize(self._journal_path(entry))
        except OSError:
            size = 0
        pending = max(0, size - min(self.cursor.journal_offset, size))
        caught_up = pending == 0 and entry.rows <= self.cursor.rows
        if caught_up:
            self._caught_up_epoch = entry.leader_epoch
        self._lag = {
            "journal_bytes": pending,
            "epoch_delta": max(0, entry.leader_epoch - self._caught_up_epoch),
            "caught_up": caught_up,
        }

    # -------------------------------------------------------------- #
    # Read surface                                                    #
    # -------------------------------------------------------------- #

    def view(self) -> CubeView:
        """The replica's current pinned read view."""
        view = self._view
        if view is None:
            raise ReplicationError(
                f"follower for {self.name!r} has not bootstrapped yet"
            )
        return view

    def lag(self) -> Dict[str, object]:
        """The lag pair cached at the last poll — never touches disk."""
        return dict(self._lag)

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = dict(self.counters)
        stats["cursor"] = self.cursor.as_dict()
        stats["replica_lag"] = self.lag()
        stats["rows"] = self.cursor.rows
        stats["last_error"] = self._last_error
        return stats

    # -------------------------------------------------------------- #
    # Cursor persistence                                              #
    # -------------------------------------------------------------- #

    def _cursor_path(self) -> Optional[str]:
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, f"{self.name}.cursor.json")

    def _persist_cursor(self) -> None:
        path = self._cursor_path()
        if path is None:
            return
        os.makedirs(self.state_dir, exist_ok=True)  # type: ignore[arg-type]
        text = json.dumps(self.cursor.as_dict(), sort_keys=True) + "\n"
        atomic_write_text(path, text, prefix=".cursor-")

    def _load_cursor(self) -> Optional[ChainPosition]:
        path = self._cursor_path()
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                return ChainPosition.from_dict(json.load(handle))
        except (OSError, ValueError, CatalogError):
            return None


class ReplicationTailer:
    """Tail a catalog directory's cubes into replicas on a background thread.

    The follower server hands queries to :meth:`view`; operators read
    :meth:`stats` (surfaced through the server's ``stats()`` as
    ``replica_lag``).  ``cubes=None`` tails every cube registered at start
    time.
    """

    def __init__(
        self,
        directory: str,
        cubes: Optional[Sequence[str]] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        state_dir: Optional[str] = None,
    ) -> None:
        self.directory = os.path.abspath(directory)
        self.poll_interval = poll_interval
        if cubes is None:
            cubes = sorted(CatalogManifest.load(self.directory).entries)
        self.followers: Dict[str, CubeFollower] = {
            name: CubeFollower(self.directory, name, state_dir=state_dir)
            for name in cubes
        }
        #: Guards mutation of the followers map (:meth:`promote` removes
        #: entries from the caller's thread while :meth:`_run` iterates).
        self._followers_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False

    def _snapshot_followers(self) -> List[Tuple[str, CubeFollower]]:
        """A point-in-time copy of the followers map, safe to iterate.

        Every iteration over the map goes through here: :meth:`promote`
        deletes entries from the caller's thread, and a ``del`` landing
        mid-iteration in the background :meth:`_run` loop would raise
        ``RuntimeError`` and kill the tailer thread for every remaining
        follower.
        """
        with self._followers_lock:
            return list(self.followers.items())

    # -------------------------------------------------------------- #
    # Lifecycle                                                       #
    # -------------------------------------------------------------- #

    def start(self) -> "ReplicationTailer":
        """Bootstrap every follower, then poll on a daemon thread."""
        if self._started:
            return self
        for _, follower in self._snapshot_followers():
            if follower.replica is None:
                follower.poll()  # first poll bootstraps
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-replication-tailer", daemon=True
        )
        self._thread.start()
        self._started = True
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None
        self._started = False

    def __enter__(self) -> "ReplicationTailer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.is_set():
            for _, follower in self._snapshot_followers():
                if self._stop.is_set():
                    break
                try:
                    follower.poll()
                except Exception as exc:  # noqa: BLE001 — see note_poll_error
                    # A cube dropped mid-tail (ReplicationError), a chain
                    # file unlinked by a leader compaction between the
                    # manifest read and the load (FileNotFoundError/OSError),
                    # a corrupt manifest read (CatalogError): record it and
                    # keep tailing.  The daemon dying here would silently
                    # freeze every replica while their servers keep
                    # reporting the last cached lag.
                    follower.note_poll_error(exc)
            self._stop.wait(self.poll_interval)

    # -------------------------------------------------------------- #
    # Read surface                                                    #
    # -------------------------------------------------------------- #

    def _follower(self, name: str) -> CubeFollower:
        follower = self.followers.get(name)
        if follower is None:
            raise ReplicationError(
                f"tailer does not follow {name!r}; following "
                f"{sorted(self.followers)}"
            )
        return follower

    def view(self, name: str) -> CubeView:
        return self._follower(name).view()

    def lag(self, name: str) -> Dict[str, object]:
        return self._follower(name).lag()

    def stats(self) -> Dict[str, object]:
        return {
            name: follower.stats()
            for name, follower in self._snapshot_followers()
        }

    def caught_up(self) -> bool:
        """Whether every follower reported zero lag at its last poll."""
        return all(
            follower.lag().get("caught_up")
            for _, follower in self._snapshot_followers()
        )

    def wait_caught_up(self, timeout: float = 30.0) -> None:
        """Block until every follower reaches the chain tip (or raise)."""
        deadline = time.time() + timeout
        while True:
            if not self._started:
                for _, follower in self._snapshot_followers():
                    follower.poll()
            if self.caught_up():
                return
            if time.time() > deadline:
                lags = {
                    name: follower.lag()
                    for name, follower in self._snapshot_followers()
                    if not follower.lag().get("caught_up")
                }
                raise ReplicationError(
                    f"followers did not catch up within {timeout}s: {lags}"
                )
            time.sleep(self.poll_interval)

    # -------------------------------------------------------------- #
    # Promotion                                                       #
    # -------------------------------------------------------------- #

    def promote(
        self,
        name: str,
        holder_id: str,
        catalog: Optional[object] = None,
        ttl: float = lease_mod.DEFAULT_LEASE_TTL,
        catchup_timeout: float = DEFAULT_CATCHUP_TIMEOUT,
    ) -> Tuple["lease_mod.CubeLease", ServingCube]:
        """Take the cube's lease and hand its replica over as the new leader.

        Failover: acquire the lease (only possible once the old leader's
        lease expired — the acquisition bumps the epoch, fencing the old
        leader's stragglers), drain the journal until the replica reports
        ``caught_up``, stop following, and install the replica into
        ``catalog`` (a :class:`~repro.catalog.CubeCatalog`, if given) so
        the new leader serves writes without reloading a chain it already
        holds.

        A replica that cannot reach the chain tip within
        ``catchup_timeout`` seconds is **never installed**: the lease is
        released (the epoch bump stays — epochs are monotonic, so nothing
        is un-fenced) and :class:`~repro.core.errors.ReplicationError` is
        raised.  Installing a behind replica would let the new leader's
        next compaction snapshot the behind in-memory state and truncate
        the journal, permanently losing the rows that existed only in the
        journal tail.
        """
        follower = self._follower(name)
        acquired = lease_mod.acquire(self.directory, name, holder_id, ttl=ttl)
        try:
            deadline = time.time() + catchup_timeout
            while True:
                follower.poll()  # drain under our own (now-fenced) epoch
                if follower.lag().get("caught_up"):
                    break
                if time.time() > deadline:
                    raise ReplicationError(
                        f"cannot promote {name!r}: replica still behind the "
                        f"chain tip after {catchup_timeout}s "
                        f"(lag {follower.lag()!r})"
                    )
                time.sleep(self.poll_interval)
        except BaseException:
            # Not leader material: free the lease for the next candidate.
            lease_mod.release(self.directory, acquired)
            raise
        replica = follower.replica
        assert replica is not None
        with self._followers_lock:
            self.followers.pop(name, None)
        if catalog is not None:
            catalog.install(name, replica)  # type: ignore[attr-defined]
        return acquired, replica
