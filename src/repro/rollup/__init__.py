"""Adaptive materialized rollups: shape mining, advising, routing.

The serving engine answers every slice/roll-up from the closed cube; repeated
dashboard-style aggregates pay closure resolution and slice enumeration on
every cache miss.  This package adds the workload-awareness layer on top:

* :class:`~repro.rollup.recorder.ShapeRecorder` — a seeded-sampled log of
  executed query *shapes* ``(fixed_dims, group_dims)``, folded in by
  :class:`~repro.query.engine.QueryEngine` on every query;
* :mod:`~repro.rollup.advisor` — picks the top-K shapes under a byte budget
  and materializes each as a flat pre-aggregated
  :class:`~repro.rollup.table.RollupTable` (built with the vectorized
  :func:`~repro.vector.kernels.grouped_closed_aggregate` kernel over
  :class:`~repro.core.columns.ColumnStore` views);
* :class:`~repro.rollup.router.RollupRouter` — pattern-matches incoming
  queries against the installed grains (exact match, or coarser-grain
  reaggregation from a finer table) and falls back to the closed-cube
  engine otherwise.

Freshness follows the engine's copy-on-publish discipline: appends derive
merged table copies from the same delta window the cube merge consumes, and
the engine swaps the whole table set inside its write-locked publish section,
so the router can never serve a pre-append answer after the merge publishes.
Enable through :meth:`repro.session.serving.ServingCube.enable_rollups`.
"""

from .advisor import (
    DEFAULT_BUDGET_BYTES,
    DEFAULT_TOP_K,
    RollupChoice,
    advise_rollups,
    materialise_rollups,
)
from .recorder import ShapeRecorder, ShapeStat
from .router import RollupRouter
from .table import RollupTable

__all__ = [
    "DEFAULT_BUDGET_BYTES",
    "DEFAULT_TOP_K",
    "RollupChoice",
    "RollupRouter",
    "RollupTable",
    "ShapeRecorder",
    "ShapeStat",
    "advise_rollups",
    "materialise_rollups",
]
