"""Rollup advisor: pick the top-K hot grains under a byte budget.

The advisor turns the :class:`~repro.rollup.recorder.ShapeRecorder`'s log
into a materialisation plan.  Shapes are collapsed onto their *grain* (the
union of fixed and group-by dimensions — one table serves every shape whose
grain it covers), ranked by the total estimated engine cost they accounted
for (what materializing them saves), and selected greedily until ``top_k``
grains are chosen or the byte budget is exhausted.

Two entry points: :func:`advise_rollups` is the dry run — it sizes each
candidate with the deterministic model of :func:`~repro.rollup.table.
estimate_table_bytes` over a cardinality-product row bound, without touching
the data (this is what the TCP ``advise`` verb returns); :func:`
materialise_rollups` additionally builds the chosen tables and re-checks the
budget against their *actual* sizes, dropping any grain whose estimate was
too optimistic (sparse data can only make tables smaller, so this is rare).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..core.measures import MeasureSet
from ..core.relation import Relation
from .recorder import ShapeRecorder
from .table import RollupTable, estimate_table_bytes

#: Default materialisation budget.  Deliberately modest: closedness keeps
#: hot grains small (see docs/ROLLUPS.md), so a few megabytes covers a
#: dashboard fleet's worth of shapes.
DEFAULT_BUDGET_BYTES = 8_000_000

#: Default number of grains to materialise.
DEFAULT_TOP_K = 8


@dataclass(frozen=True)
class RollupChoice:
    """One candidate grain and what the advisor decided about it."""

    dims: Tuple[int, ...]
    hits: int
    cost: float
    estimated_rows: int
    estimated_bytes: int
    chosen: bool
    reason: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (the TCP ``advise`` verb returns these)."""
        return {
            "dims": list(self.dims),
            "hits": self.hits,
            "cost": round(self.cost, 3),
            "estimated_rows": self.estimated_rows,
            "estimated_bytes": self.estimated_bytes,
            "chosen": self.chosen,
            "reason": self.reason,
        }


def _candidate_grains(
    recorder: ShapeRecorder, min_hits: int
) -> List[Tuple[Tuple[int, ...], int, float]]:
    """Logged shapes collapsed onto grains: ``(dims, hits, cost)`` ranked."""
    grains: Dict[Tuple[int, ...], List[float]] = {}
    for stat in recorder.snapshot():
        grain = stat.grain
        if not grain:
            continue  # the apex has no table to build
        entry = grains.get(grain)
        if entry is None:
            grains[grain] = [stat.hits, stat.cost]
        else:
            entry[0] += stat.hits
            entry[1] += stat.cost
    ranked = [
        (grain, int(hits), cost)
        for grain, (hits, cost) in grains.items()
        if hits >= min_hits
    ]
    ranked.sort(key=lambda item: (-item[2], -item[1], item[0]))
    return ranked


def advise_rollups(
    relation: Relation,
    recorder: ShapeRecorder,
    measures: MeasureSet,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
    top_k: int = DEFAULT_TOP_K,
    min_hits: int = 1,
) -> List[RollupChoice]:
    """Rank logged grains and mark which fit ``top_k`` and the budget.

    Row counts are estimated as ``min(num_tuples, product of dimension
    cardinalities)`` — an upper bound, since a grain can never have more
    rows than tuples or than its value space.  Estimation only; nothing is
    built.
    """
    measure_width = len(measures.specs) if measures else 0
    choices: List[RollupChoice] = []
    spent = 0
    chosen = 0
    for grain, hits, cost in _candidate_grains(recorder, min_hits):
        rows = 1
        for dim in grain:
            rows *= max(1, len(relation.encoder(dim)))
            if rows >= relation.num_tuples:
                rows = relation.num_tuples
                break
        size = estimate_table_bytes(rows, len(grain), measure_width)
        if chosen >= top_k:
            choices.append(
                RollupChoice(grain, hits, cost, rows, size, False, "beyond top-k")
            )
        elif spent + size > budget_bytes:
            choices.append(
                RollupChoice(grain, hits, cost, rows, size, False, "over budget")
            )
        else:
            choices.append(
                RollupChoice(grain, hits, cost, rows, size, True, "selected")
            )
            spent += size
            chosen += 1
    return choices


def materialise_rollups(
    relation: Relation,
    recorder: ShapeRecorder,
    measures: MeasureSet,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
    top_k: int = DEFAULT_TOP_K,
    min_hits: int = 1,
) -> Tuple[List[RollupChoice], Dict[Tuple[int, ...], RollupTable]]:
    """Advise, then build the chosen tables, re-budgeting on actual sizes.

    Returns ``(choices, tables)`` where each chosen choice carries its built
    table's real row count and byte estimate.  A table whose actual size
    pushes the running total over the budget is dropped and its choice
    re-marked (estimates bound rows from above, so this only fires when the
    budget is nearly exhausted anyway).
    """
    advised = advise_rollups(
        relation, recorder, measures,
        budget_bytes=budget_bytes, top_k=top_k, min_hits=min_hits,
    )
    tables: Dict[Tuple[int, ...], RollupTable] = {}
    final: List[RollupChoice] = []
    spent = 0
    for choice in advised:
        if not choice.chosen:
            final.append(choice)
            continue
        table = RollupTable.build(relation, choice.dims, measures)
        if spent + table.estimated_bytes > budget_bytes:
            final.append(
                replace(
                    choice,
                    estimated_rows=len(table),
                    estimated_bytes=table.estimated_bytes,
                    chosen=False,
                    reason="over budget (actual size)",
                )
            )
            continue
        spent += table.estimated_bytes
        tables[table.dims] = table
        final.append(
            replace(
                choice,
                estimated_rows=len(table),
                estimated_bytes=table.estimated_bytes,
                reason="materialised",
            )
        )
    return final, tables
