"""Query-shape log: what the workload actually asks, mined for the advisor.

A query's *shape* is the pair ``(fixed_dims, group_dims)`` — which dimensions
it fixes and which it groups by, each as a sorted tuple of dimension indices.
``slice({A: a1}, group_by=[B])`` and ``slice({A: a2}, group_by=[B])`` share
one shape: the rollup that serves one serves the other, so shapes (not
concrete cells) are the unit the advisor reasons about.

:class:`ShapeRecorder` folds every executed query into a bounded shape log
with hit counts and an estimated serving cost (the number of answers the
engine enumerated — a proxy for the slots it touched).  Sampling, when
enabled, uses an explicitly seeded :class:`random.Random` instance so two
runs over the same query stream record the same log (the RL006 discipline:
no process-seeded randomness outside ``random_seed`` plumbing).

The recorder is attached to every :class:`~repro.query.engine.QueryEngine`
and updated inside the engine's read-locked query paths; its own mutex only
guards the log dictionary, so recording costs one lock plus a dict upsert.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: A query shape: ``(fixed_dims, group_dims)``, both sorted dim-index tuples.
QueryShape = Tuple[Tuple[int, ...], Tuple[int, ...]]

#: Shape-log capacity.  A workload has few *shapes* even when it has many
#: distinct cells (shapes are subsets of the dimension list), so a small
#: bound suffices; when full, the least-hit shape is evicted.
MAX_SHAPES = 512


@dataclass(frozen=True)
class ShapeStat:
    """One logged shape: its traffic and accumulated estimated cost."""

    fixed_dims: Tuple[int, ...]
    group_dims: Tuple[int, ...]
    hits: int
    #: Sum of per-query estimated costs — the total engine effort this shape
    #: accounted for, which is exactly what materializing it would save.
    cost: float

    @property
    def grain(self) -> Tuple[int, ...]:
        """The dimensions a rollup table must carry to serve this shape."""
        return tuple(sorted(set(self.fixed_dims) | set(self.group_dims)))


class ShapeRecorder:
    """Seeded-sampled log of executed query shapes (thread-safe, bounded)."""

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 0,
        max_shapes: int = MAX_SHAPES,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.max_shapes = max_shapes
        #: Seeded instance on purpose: the log of a replayed query stream is
        #: deterministic, so advisor decisions are reproducible.
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: shape -> ``[hits, total estimated cost]``.
        self._shapes: Dict[QueryShape, List[float]] = {}
        self.recorded = 0
        self.sampled_out = 0

    def record(
        self,
        fixed_dims: Tuple[int, ...],
        group_dims: Tuple[int, ...] = (),
        cost: float = 1.0,
    ) -> None:
        """Fold one executed query into the log (maybe sampled out)."""
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            self.sampled_out += 1
            return
        shape = (fixed_dims, group_dims)
        with self._lock:
            entry = self._shapes.get(shape)
            if entry is None:
                if len(self._shapes) >= self.max_shapes:
                    coldest = min(self._shapes, key=lambda s: self._shapes[s][0])
                    del self._shapes[coldest]
                self._shapes[shape] = [1, cost]
            else:
                entry[0] += 1
                entry[1] += cost
            self.recorded += 1

    def snapshot(self) -> List[ShapeStat]:
        """The logged shapes, hottest (by accumulated cost) first."""
        with self._lock:
            stats = [
                ShapeStat(fixed, group, int(hits), cost)
                for (fixed, group), (hits, cost) in self._shapes.items()
            ]
        stats.sort(key=lambda s: (-s.cost, -s.hits, s.fixed_dims, s.group_dims))
        return stats

    def clear(self) -> None:
        """Drop the log; the sampler's sequence position survives."""
        with self._lock:
            self._shapes.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            shapes = len(self._shapes)
        return {
            "shapes": shapes,
            "recorded": self.recorded,
            "sampled_out": self.sampled_out,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._shapes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShapeRecorder(shapes={len(self)}, recorded={self.recorded}, "
            f"sample_rate={self.sample_rate})"
        )
