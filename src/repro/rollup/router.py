"""Workload-aware query router: serve hot shapes from flat rollup tables.

Installed on a :class:`~repro.query.engine.QueryEngine` (see
:meth:`repro.session.serving.ServingCube.enable_rollups`), the router is
consulted inside the engine's read-locked query paths, after the answer
caches and before closure resolution.  Matching is AppLovin-style multi-grain
pattern matching:

* **exact grain** — the query's dimension set equals an installed grain: a
  slice is a posting intersection over the table, a point a single row probe;
* **coarser grain** — the query's dimension set is a strict subset of an
  installed grain: the finer table's matching rows are re-grouped on the
  queried dimensions and their measure states merged (exact, because rows
  carry state scalars — see :mod:`repro.rollup.table`);
* **no covering grain** — the router returns ``None`` and the engine falls
  back to closed-cube resolution, so routing is invisible to correctness.

Iceberg semantics are applied at serve time: tables store unfiltered base
counts and the router drops groups below ``min_sup``, which reproduces the
engine's slice membership exactly (a cell appears in an engine slice iff its
count clears the threshold) and its point not-found convention.  Routed
answers carry ``closure=None`` — they come from a flat table, not a
materialised closed cell; count and measures are identical to the engine's.

Concurrency follows the engine's discipline: :attr:`tables` is replaced
wholesale by reference swap inside the engine's write-locked publish section
(never mutated in place), so readers always see one consistent table
generation — the generation published together with the cube they are
querying.  Counters are best-effort, like the engine's.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.cell import Cell
from ..query.queries import QueryAnswer, SliceQuery
from .table import RollupTable

#: Cached per-shape routing decision: ``(table, exact, group placement pairs,
#: sort key over the table's row keys)``, or ``False`` for "no covering
#: grain" so repeat misses skip the grain scan too.
SlicePlan = Union[
    Tuple[RollupTable, bool, Tuple[Tuple[int, int], ...], Optional[Callable]],
    bool,
]


class RollupRouter:
    """Pattern-match queries against materialised grains, else fall back."""

    def __init__(self, min_sup: int = 1) -> None:
        self.min_sup = min_sup
        self._tables: Dict[Tuple[int, ...], RollupTable] = {}
        #: Per-shape slice plans; repeat queries on a hot shape skip grain
        #: matching and sort-order derivation.  Dropped whenever the table
        #: generation is swapped (see the :attr:`tables` setter).
        self._slice_plans: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...]], SlicePlan
        ] = {}
        #: Per-grain routed-query counts; survives table swaps.
        self.hits: Dict[Tuple[int, ...], int] = {}
        self.counters: Dict[str, int] = {
            "routed_points": 0,
            "routed_slices": 0,
            "exact_grain": 0,
            "reaggregated": 0,
            "fallbacks": 0,
        }

    @property
    def tables(self) -> Dict[Tuple[int, ...], RollupTable]:
        """grain (sorted dim tuple) -> table.  Swapped wholesale on publish."""
        return self._tables

    @tables.setter
    def tables(self, tables: Dict[Tuple[int, ...], RollupTable]) -> None:
        self._tables = tables
        self._slice_plans = {}

    # ------------------------------------------------------------------ #
    # Matching                                                            #
    # ------------------------------------------------------------------ #

    def match(
        self, dims_needed: Tuple[int, ...]
    ) -> Optional[Tuple[RollupTable, bool]]:
        """The best installed grain covering ``dims_needed``, if any.

        Exact grain wins; otherwise the smallest (fewest-row) strictly finer
        table — fewer rows to re-group.  Returns ``(table, exact)``.
        """
        tables = self.tables
        table = tables.get(dims_needed)
        if table is not None:
            return table, True
        needed = frozenset(dims_needed)
        best: Optional[RollupTable] = None
        for candidate in tables.values():
            if needed <= candidate.dims_set and (
                best is None or len(candidate.rows) < len(best.rows)
            ):
                best = candidate
        if best is None:
            return None
        return best, False

    def _record(self, table: RollupTable, exact: bool, kind: str) -> None:
        self.counters[kind] += 1
        self.counters["exact_grain" if exact else "reaggregated"] += 1
        self.hits[table.dims] = self.hits.get(table.dims, 0) + 1

    # ------------------------------------------------------------------ #
    # Point routing                                                       #
    # ------------------------------------------------------------------ #

    def route_point(self, target: Cell) -> Optional[QueryAnswer]:
        """A routed point answer, or ``None`` when no grain covers it."""
        if not self.tables:
            return None
        fixed = {dim: value for dim, value in enumerate(target) if value is not None}
        found = self.match(tuple(sorted(fixed)))
        if found is None:
            self.counters["fallbacks"] += 1
            return None
        table, exact = found
        self._record(table, exact, "routed_points")
        if exact:
            key = tuple(fixed[dim] for dim in table.dims)
            entry = table.lookup(key)
            if entry is None:
                return QueryAnswer(cell=target, count=None)
            count, row = entry
            if count < self.min_sup:
                return QueryAnswer(cell=target, count=None)
            return QueryAnswer(
                cell=target, count=count, measures=table.finalised[key]
            )
        else:
            count = 0
            row: Optional[Tuple[float, ...]] = None
            for key in table.select(fixed):
                sub_count, sub_row = table.rows[key]
                count += sub_count
                row = sub_row if row is None else table.merge_state_rows(row, sub_row)
            if row is None:
                return QueryAnswer(cell=target, count=None)
        if count < self.min_sup:
            # Below the iceberg threshold: the engine answers not-found (the
            # closed iceberg cube discards this information); so do we.
            return QueryAnswer(cell=target, count=None)
        return QueryAnswer(
            cell=target, count=count, measures=table.measure_items(count, row)
        )

    # ------------------------------------------------------------------ #
    # Slice routing                                                       #
    # ------------------------------------------------------------------ #

    def _slice_plan(
        self, fixed_dims: Tuple[int, ...], group: Tuple[int, ...]
    ) -> SlicePlan:
        """Build (and cache) the routing plan for one slice shape.

        Every cell of one slice shares its arity and star pattern, and the
        fixed values are constant across the result, so the engine's
        sort_key ordering reduces to the group-by values in ascending
        dimension order — the plan's sort key reads them straight off the
        table's row keys (exact grain) or the re-grouped sub-keys (coarser
        grain) with a C-level :func:`operator.itemgetter`.
        """
        found = self.match(tuple(sorted(set(fixed_dims) | set(group))))
        if found is None:
            plan: SlicePlan = False
        else:
            table, exact = found
            group_pos = tuple(table._pos[dim] for dim in group)
            order = sorted(range(len(group)), key=lambda i: group[i])
            if exact:
                pairs = tuple(zip(group, group_pos))
                spos = [group_pos[i] for i in order]
                getter = itemgetter(*spos) if spos else None
            else:
                pairs = group_pos
                getter = itemgetter(*order) if order else None
            plan = (table, exact, pairs, getter)
        self._slice_plans[(fixed_dims, group)] = plan
        return plan

    def route_slice(
        self, query: SliceQuery, num_dims: int
    ) -> Optional[List[QueryAnswer]]:
        """A routed slice result, or ``None`` when no grain covers it."""
        if not self._tables:
            return None
        fixed = query.fixed_mapping()
        group = tuple(query.group_by)
        shape = (tuple(sorted(fixed)), group)
        plan = self._slice_plans.get(shape)
        if plan is None:
            plan = self._slice_plan(*shape)
        if plan is False:
            self.counters["fallbacks"] += 1
            return None
        table, exact, pairs, getter = plan
        self._record(table, exact, "routed_slices")
        min_sup = self.min_sup
        base: List[Optional[int]] = [None] * num_dims
        for dim, value in fixed.items():
            base[dim] = value
        answers: List[QueryAnswer] = []
        if exact:
            rows = table.rows
            finalised = table.finalised
            for key in sorted(table.select(fixed), key=getter):
                count, _row = rows[key]
                if count < min_sup:
                    continue
                values = base.copy()
                for dim, pos in pairs:
                    values[dim] = key[pos]
                answers.append(
                    QueryAnswer(
                        cell=tuple(values),
                        count=count,
                        measures=finalised[key],
                    )
                )
        else:
            group_pos = pairs
            grouped: Dict[Tuple[int, ...], List[object]] = {}
            for key in table.select(fixed):
                count, row = table.rows[key]
                sub = tuple(key[pos] for pos in group_pos)
                entry = grouped.get(sub)
                if entry is None:
                    grouped[sub] = [count, row]
                else:
                    entry[0] += count
                    entry[1] = table.merge_state_rows(entry[1], row)
            for sub in sorted(grouped, key=getter):
                count, row = grouped[sub]
                if count < min_sup:
                    continue
                values = base.copy()
                for dim, value in zip(group, sub):
                    values[dim] = value
                answers.append(
                    QueryAnswer(
                        cell=tuple(values),
                        count=count,
                        measures=table.measure_items(count, row),
                    )
                )
        return answers

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def total_bytes(self) -> int:
        return sum(table.estimated_bytes for table in self.tables.values())

    def stats(self) -> Dict[str, object]:
        """Per-rollup hits/rows/bytes plus router-level counters.

        ``fallbacks`` is the miss count: queries no installed grain covered
        (cache hits are answered before the router and are not counted).
        """
        per_table = {
            ",".join(str(dim) for dim in grain): {
                "dims": list(grain),
                "rows": len(table),
                "bytes": table.estimated_bytes,
                "hits": self.hits.get(grain, 0),
                "covered_tuples": table.covered_tuples,
            }
            for grain, table in self.tables.items()
        }
        return {
            "enabled": True,
            "grains": len(self.tables),
            "total_bytes": self.total_bytes(),
            "tables": per_table,
            **self.counters,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RollupRouter(grains={len(self.tables)}, "
            f"min_sup={self.min_sup}, bytes={self.total_bytes()})"
        )
