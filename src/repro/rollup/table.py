"""Flat pre-aggregated rollup tables, one materialised grain each.

A :class:`RollupTable` over grain ``dims`` holds one row per distinct value
combination the base relation carries on those dimensions — the exact
(unfiltered) group-by of the fact table at that grain, built in one pass with
the vectorized :func:`repro.vector.kernels.grouped_closed_aggregate` kernel
over :class:`~repro.core.columns.ColumnStore` views.

Rows carry measure *state* scalars, not display values — the same
:data:`~repro.vector.kernels.GroupEntry` convention the kernels use (the
group sum for ``Sum`` *and* ``Avg``, extrema for ``Min``/``Max``, the count
for ``Count``) — so a coarser-grain reaggregation merges rows exactly:
partial sums add, extrema fold, and the average is refinalised from its
``(sum, count)`` pair only at answer time.  Counts are stored unfiltered;
iceberg semantics (``count >= min_sup``) are applied by the router at serve
time, which reproduces the engine's answers for any threshold.

Publish discipline (the RL004 contract): an installed table is never mutated.
Maintenance derives a *new* table via :meth:`RollupTable.merged_delta` — the
append window is aggregated with the same kernel and folded into a fresh row
dictionary in chunks, with the same scheduler-yield cadence as the chunked
cube merge — and the engine swaps the whole table set inside its write-locked
publish section.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.columns import column_store
from ..core.measures import MaxMeasure, MeasureSet, MinMeasure
from ..core.relation import Relation
from ..vector import kernels

#: One table row: ``(count, measure state row)`` keyed by the grain's values.
Row = Tuple[int, Tuple[float, ...]]

#: Deterministic size model used for budgeting (a CPython measurement of the
#: dict slot, key tuple, and row tuple would vary per build; the advisor
#: needs stable arithmetic): fixed table overhead, per-row container cost,
#: and per-field cost counted twice for key fields (the posting index holds
#: a second reference per key field).
_TABLE_OVERHEAD_BYTES = 512
_ROW_BYTES = 96
_FIELD_BYTES = 16


def estimate_table_bytes(num_rows: int, key_width: int, measure_width: int) -> int:
    """The size model shared by built tables and the advisor's dry runs."""
    per_row = _ROW_BYTES + _FIELD_BYTES * (2 * key_width + measure_width)
    return _TABLE_OVERHEAD_BYTES + num_rows * per_row


def _merge_ops(measures: MeasureSet) -> Tuple[Optional[Callable], ...]:
    """Per-spec state-scalar merge: ``None`` means add (count/sum/avg-sum)."""
    ops: List[Optional[Callable]] = []
    for spec in measures.specs:
        if type(spec) is MinMeasure:
            ops.append(min)
        elif type(spec) is MaxMeasure:
            ops.append(max)
        else:
            ops.append(None)
    return tuple(ops)


class RollupTable:
    """One materialised grain: the exact base-table group-by over ``dims``."""

    __slots__ = (
        "dims",
        "dims_set",
        "measures",
        "rows",
        "covered_tuples",
        "estimated_bytes",
        "finalised",
        "_pos",
        "_postings",
        "_ops",
    )

    def __init__(
        self,
        dims: Tuple[int, ...],
        measures: MeasureSet,
        rows: Dict[Tuple[int, ...], Row],
        covered_tuples: int,
    ) -> None:
        self.dims = tuple(dims)
        self.dims_set = frozenset(self.dims)
        self.measures = measures
        self.rows = rows
        #: Relation length this table aggregates; :meth:`merged_delta` folds
        #: in exactly the window from here to the grown relation's end.
        self.covered_tuples = covered_tuples
        self._pos = {dim: pos for pos, dim in enumerate(self.dims)}
        self._ops = _merge_ops(measures)
        #: Per-dimension-position postings: value -> row keys carrying it.
        #: Rebuilt per table version — tables are small by construction (the
        #: advisor's byte budget), so O(rows) per publish is cheap.
        postings: List[Dict[int, List[Tuple[int, ...]]]] = [
            {} for _ in self.dims
        ]
        for key in rows:
            for pos, value in enumerate(key):
                postings[pos].setdefault(value, []).append(key)
        self._postings = postings
        #: Finalised measure items per row, computed once per table version —
        #: a table is immutable once published, so the exact-grain serving
        #: path can hand these out without per-query state finalisation.
        self.finalised: Dict[Tuple[int, ...], Tuple[Tuple[str, float], ...]] = {
            key: self.measure_items(count, row)
            for key, (count, row) in rows.items()
        }
        self.estimated_bytes = estimate_table_bytes(
            len(rows), len(self.dims), len(measures.specs) if measures else 0
        )

    # ------------------------------------------------------------------ #
    # Construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls, relation: Relation, dims: Iterable[int], measures: MeasureSet
    ) -> "RollupTable":
        """Aggregate the whole relation at grain ``dims`` in one kernel pass."""
        dims = tuple(sorted(dims))
        return cls(
            dims,
            measures,
            cls._aggregate(relation, dims, measures, 0, relation.num_tuples),
            covered_tuples=relation.num_tuples,
        )

    @staticmethod
    def _aggregate(
        relation: Relation,
        dims: Tuple[int, ...],
        measures: MeasureSet,
        start_tid: int,
        end_tid: int,
    ) -> Dict[Tuple[int, ...], Row]:
        """Group-by rows of one tuple window, via the fused kernel."""
        if end_tid <= start_tid:
            return {}
        store = column_store(relation)
        keys = [store.dimension(dim)[start_tid:end_tid] for dim in dims]
        groups = kernels.grouped_closed_aggregate(
            relation,
            range(start_tid, end_tid),
            keys,
            measures,
            track_closedness=False,
        )
        return {
            coords: (count, row)
            for coords, (count, _rep, _mask, row) in groups.items()
        }

    def merged_delta(
        self,
        relation: Relation,
        batch_size: Optional[int] = None,
        yield_between_batches: Optional[Callable[[], None]] = None,
    ) -> "RollupTable":
        """A new table with the append window folded in (copy-on-publish).

        Aggregates only ``covered_tuples..num_tuples`` — the same delta
        window the cube merge consumes — and merges the delta groups into a
        copy of the row dictionary, ``batch_size`` groups between
        ``yield_between_batches`` calls (the chunked-merge discipline of
        :class:`~repro.incremental.maintainer.CubeMaintainer`).  ``self`` is
        untouched; the caller publishes the returned table by swap.
        """
        end_tid = relation.num_tuples
        if end_tid <= self.covered_tuples:
            return self
        delta = self._aggregate(
            relation, self.dims, self.measures, self.covered_tuples, end_tid
        )
        rows = dict(self.rows)
        ops = self._ops
        items = list(delta.items())
        step = batch_size if batch_size else len(items) or 1
        for chunk_start in range(0, len(items), step):
            for coords, (count, row) in items[chunk_start:chunk_start + step]:
                existing = rows.get(coords)
                if existing is None:
                    rows[coords] = (count, row)
                else:
                    rows[coords] = (
                        existing[0] + count,
                        self.merge_state_rows(existing[1], row),
                    )
            if (
                yield_between_batches is not None
                and chunk_start + step < len(items)
            ):
                yield_between_batches()
        return RollupTable(self.dims, self.measures, rows, covered_tuples=end_tid)

    # ------------------------------------------------------------------ #
    # Lookup                                                              #
    # ------------------------------------------------------------------ #

    def lookup(self, values: Tuple[int, ...]) -> Optional[Row]:
        """The row fully fixing the grain (exact point at this grain)."""
        return self.rows.get(values)

    def select(self, fixed: Mapping[int, int]) -> Iterable[Tuple[int, ...]]:
        """Row keys matching ``{dim: value}`` via posting intersection.

        Every ``fixed`` dimension must be in the grain; an empty mapping
        selects every row (the grain's full cuboid).
        """
        if not fixed:
            return self.rows.keys()
        constraints = []
        for dim, value in fixed.items():
            keys = self._postings[self._pos[dim]].get(value)
            if keys is None:
                return ()
            constraints.append((keys, self._pos[dim], value))
        if len(constraints) == 1:
            return constraints[0][0]
        # Filter the shortest posting list by direct key probes — posting
        # lists are short (one value's rows), so a scan beats building sets.
        constraints.sort(key=lambda item: len(item[0]))
        keys = constraints[0][0]
        checks = [(pos, value) for _keys, pos, value in constraints[1:]]
        if len(checks) == 1:
            pos, value = checks[0]
            return [key for key in keys if key[pos] == value]
        return [
            key for key in keys if all(key[p] == v for p, v in checks)
        ]

    # ------------------------------------------------------------------ #
    # Measure handling                                                    #
    # ------------------------------------------------------------------ #

    def merge_state_rows(
        self, first: Tuple[float, ...], second: Tuple[float, ...]
    ) -> Tuple[float, ...]:
        """Fold two state rows: sums/counts add, extrema min/max."""
        return tuple(
            (a + b) if op is None else op(a, b)
            for op, a, b in zip(self._ops, first, second)
        )

    def measure_items(
        self, count: int, row: Tuple[float, ...]
    ) -> Tuple[Tuple[str, float], ...]:
        """Finalise a row's states into the engine's sorted answer format."""
        if not self.measures:
            return ()
        states = kernels.states_from_row(self.measures, row, count)
        return tuple(sorted(self.measures.values(states).items()))

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RollupTable(dims={list(self.dims)}, rows={len(self.rows)}, "
            f"covered={self.covered_tuples})"
        )
