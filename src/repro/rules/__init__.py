"""Closed-rule mining (Section 6.2)."""

from .closed_rules import (
    ClosedRule,
    compression_report,
    mine_closed_rules,
    minimal_generators,
    verify_rules,
)

__all__ = [
    "ClosedRule",
    "compression_report",
    "mine_closed_rules",
    "minimal_generators",
    "verify_rules",
]
