"""Closed-rule mining (Section 6.2 of the paper).

A *closed rule* has the form ``A=a, B=b -> C=c, D=d``: whenever a cell fixes
the condition values, the target dimensions are forced to the target values.
The paper proposes closed rules as a more compact companion to the closed
cube than the Quotient-Cube lower-bound lists: many (lower bound, upper
bound) pairs share one rule, so the rule set is much smaller than the closed
cell set (the paper reports 57k rules vs. 462k closed cells on the weather
data).

This module derives the rules from a closed cube:

* for each closed cell, the *minimal generators* — minimal sub-cells with the
  same count (hence the same tuple set) — are found by a breadth-first search
  over subsets of the cell's fixed dimensions;
* each (generator, closed cell) pair yields the rule
  ``generator values -> remaining values``;
* identical rules produced by different cells are deduplicated, which is
  where the compression comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.cell import Cell, cell_dimensions, project_cell
from ..core.cube import CubeResult
from ..core.errors import ValidationError
from ..core.relation import Relation


@dataclass(frozen=True)
class ClosedRule:
    """``condition -> consequent`` over (dimension, value) pairs."""

    condition: Tuple[Tuple[int, int], ...]
    consequent: Tuple[Tuple[int, int], ...]

    def format(self, relation: Optional[Relation] = None) -> str:
        """Human-readable rendering, optionally decoding values."""

        def render(pairs: Iterable[Tuple[int, int]]) -> str:
            parts = []
            for dim, value in pairs:
                if relation is not None:
                    name = relation.schema.dimension_names[dim]
                    shown = relation.decode(dim, value)
                else:
                    name, shown = f"d{dim}", value
                parts.append(f"{name}={shown}")
            return ", ".join(parts) if parts else "(true)"

        return f"{render(self.condition)} -> {render(self.consequent)}"


def _cell_count(relation: Relation, cube: CubeResult, cell: Cell) -> int:
    """Count of an arbitrary cell, answered through the closed cube."""
    stats = cube.closure_query(cell)
    if stats is None:
        raise ValidationError(
            f"cell {cell} cannot be answered from the closed cube; "
            "closed rules require a full (min_sup=1) closed cube or a cube whose "
            "iceberg threshold the queried cells satisfy"
        )
    return stats.count


def minimal_generators(
    relation: Relation, cube: CubeResult, cell: Cell, max_arity: Optional[int] = None
) -> List[Tuple[int, ...]]:
    """Minimal subsets of the cell's fixed dimensions preserving its count.

    A subset ``S`` is a generator when the cell restricted to ``S`` has the
    same count (therefore the same tuple set) as the full cell; it is minimal
    when no proper subset is a generator.  The search proceeds by increasing
    arity and prunes supersets of found generators.
    """
    dims = cell_dimensions(cell)
    target = cube[cell].count if cell in cube else _cell_count(relation, cube, cell)
    limit = len(dims) if max_arity is None else min(max_arity, len(dims))
    found: List[Tuple[int, ...]] = []
    found_sets: List[FrozenSet[int]] = []
    for arity in range(0, limit + 1):
        for subset in combinations(dims, arity):
            subset_set = frozenset(subset)
            if any(generator <= subset_set for generator in found_sets):
                continue
            projected = project_cell(cell, subset)
            if _cell_count(relation, cube, projected) == target:
                found.append(subset)
                found_sets.append(subset_set)
        if found and arity >= max(len(g) for g in found):
            # Supersets of found generators are never minimal; once every
            # candidate at this arity has been checked we can still find new
            # incomparable generators at higher arity, so keep going only if
            # some dimensions remain uncovered.
            pass
    return found


def mine_closed_rules(
    relation: Relation,
    closed_cube: CubeResult,
    max_condition_arity: Optional[int] = None,
) -> Set[ClosedRule]:
    """Derive the deduplicated closed-rule set from a closed cube."""
    rules: Set[ClosedRule] = set()
    for cell in closed_cube:
        dims = cell_dimensions(cell)
        if not dims:
            continue
        generators = minimal_generators(relation, closed_cube, cell, max_condition_arity)
        for generator in generators:
            condition = tuple((dim, cell[dim]) for dim in generator)
            consequent = tuple(
                (dim, cell[dim]) for dim in dims if dim not in set(generator)
            )
            if not consequent:
                continue
            rules.add(ClosedRule(condition, consequent))
    return rules


def compression_report(
    closed_cube: CubeResult, rules: Set[ClosedRule]
) -> Dict[str, float]:
    """Summary numbers matching the paper's Section 6.2 comparison."""
    num_cells = len(closed_cube)
    num_rules = len(rules)
    ratio = (num_rules / num_cells) if num_cells else 0.0
    return {
        "closed_cells": num_cells,
        "closed_rules": num_rules,
        "rules_per_cell": ratio,
    }


def verify_rules(relation: Relation, rules: Iterable[ClosedRule]) -> None:
    """Check every rule holds on the base table (used by tests)."""
    for rule in rules:
        for row in relation.rows():
            if all(row[dim] == value for dim, value in rule.condition):
                for dim, value in rule.consequent:
                    if row[dim] != value:
                        raise ValidationError(
                            f"rule {rule.format()} violated by tuple {row}"
                        )
