"""Concurrent serving: the asyncio front end over a cube catalog.

* :class:`AsyncCubeServer` (:mod:`repro.server.server`) — batched queries,
  back-pressure, copy-on-publish appends that never block the read hot path;
* :mod:`repro.server.tcp` — the line-JSON TCP protocol
  (``python -m repro.server CATALOG_DIR`` serves it; see
  :mod:`repro.server.__main__`).
"""

from .server import AsyncCubeServer
from .tcp import serve_tcp

__all__ = ["AsyncCubeServer", "serve_tcp"]
