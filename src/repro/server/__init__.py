"""Concurrent serving: the asyncio front end over a cube catalog.

* :class:`AsyncCubeServer` (:mod:`repro.server.server`) — batched queries,
  back-pressure, copy-on-publish appends that never block the read hot path.
  Runs as a ``"leader"`` (the default) or, wired to a
  :class:`~repro.replication.ReplicationTailer`, as a read-only
  ``"follower"`` that answers from pinned replica views and reports
  ``replica_lag`` in ``stats()``;
* :mod:`repro.server.tcp` — the line-JSON TCP protocol
  (``python -m repro.server CATALOG_DIR`` serves a leader,
  ``python -m repro.replication CATALOG_DIR`` a follower; the ``replica``
  verb reports follower cursors and lag).
"""

from .server import AsyncCubeServer
from .tcp import serve_tcp

__all__ = ["AsyncCubeServer", "serve_tcp"]
