"""``python -m repro.server``: serve a catalog directory over TCP.

Example::

    PYTHONPATH=src python -m repro.server /var/lib/cubes --port 7171

then, from anywhere::

    printf '%s\n' '{"op": "list"}' | nc 127.0.0.1 7171

See :mod:`repro.server.tcp` for the line-JSON protocol.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
from typing import Optional, Sequence

from ..catalog import CubeCatalog
from .server import AsyncCubeServer
from .tcp import serve_tcp


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a cube catalog directory over a line-JSON TCP "
        "protocol (concurrent queries and appends).",
    )
    parser.add_argument("catalog", help="catalog directory (created if missing)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7171)
    parser.add_argument(
        "--query-workers", type=int, default=4,
        help="threads answering queries (default 4)",
    )
    parser.add_argument(
        "--maintenance-workers", type=int, default=2,
        help="threads driving appends and catalog I/O (default 2)",
    )
    parser.add_argument(
        "--refresh-processes", type=int, default=None,
        help="worker processes for delta/partition cubing "
        "(default: compute in the maintenance threads)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="most query specs coalesced per engine call (default 64)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=1024,
        help="per-cube query queue bound (back-pressure, default 1024)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=None,
        help="per-request deadline in seconds (queueing + lock wait + "
        "execution); exceeded requests answer {ok:false} with a "
        "ServerTimeout and are counted in stats() (default: no timeout)",
    )
    return parser


async def run_server(args: argparse.Namespace) -> None:
    catalog = CubeCatalog(args.catalog)
    server = AsyncCubeServer(
        catalog,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        query_workers=args.query_workers,
        maintenance_workers=args.maintenance_workers,
        refresh_processes=args.refresh_processes,
        request_timeout=args.request_timeout,
    )
    async with server:
        tcp = await serve_tcp(server, host=args.host, port=args.port)
        sockets = tcp.sockets or ()
        for sock in sockets:
            print(f"serving catalog {catalog.directory!r} "
                  f"({len(catalog)} cubes) on {sock.getsockname()}")
        try:
            await asyncio.Event().wait()  # run until cancelled
        finally:
            tcp.close()
            await tcp.wait_closed()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(run_server(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
