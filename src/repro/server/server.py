"""The asyncio serving layer: concurrent queries and appends over a catalog.

:class:`AsyncCubeServer` fronts a :class:`~repro.catalog.CubeCatalog` with
one event loop and three execution domains, chosen so the read hot path
never waits on maintenance:

* **queries** flow through one bounded :class:`asyncio.Queue` per cube
  (back-pressure: a full queue makes ``await query(...)`` wait its turn
  instead of letting an unbounded backlog eat the process).  A per-cube
  dispatcher coalesces whatever is queued — up to ``max_batch`` specs — into
  a single :meth:`~repro.session.serving.ServingCube.query_many` call on the
  query thread pool, so a bursty client costs one executor hop per batch,
  not per query;
* **appends** serialise per cube (an :class:`asyncio.Lock` each) and run on
  the maintenance thread pool in copy-on-publish mode: the merge happens on
  a private clone and lands with one atomic publish, so queries interleave
  with the append and only ever see a fully published cube version;
* **cubing compute** (the delta cube, partition recomputes) optionally runs
  in a process pool (``refresh_processes``), taking an append's CPU burn out
  of the GIL the query threads share.

Appends to one cube apply in submission order; appends to different cubes
overlap.  Queries against cube A proceed while cube B (or A!) is mid-append
— zero torn reads is the contract the interleaving tests enforce.

**Roles.**  A server is a ``"leader"`` (the default: full read/write surface)
or a ``"follower"`` in the replicated tier (:mod:`repro.replication`): wired
to a :class:`~repro.replication.ReplicationTailer`, it answers queries from
the tailer's pinned replica views and *rejects* every mutating verb (append,
create, drop, save, compact, ``advise(apply=True)``) — the single-writer
lease lives with the leader.  Followers report their role and per-cube
``replica_lag`` in :meth:`~AsyncCubeServer.stats`.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..catalog import CubeCatalog
from ..core.errors import ServerError, ServerTimeout
from ..incremental.maintainer import AppendReport
from ..incremental.parallel import create_refresh_pool
from ..loadgen.histogram import LatencyHistogram
from ..session.serving import BatchResult, NamedAnswer, QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..replication.tailer import ReplicationTailer

#: Queue sentinel that tells a dispatcher to shut down.
_SHUTDOWN = object()


@dataclass
class _QueryItem:
    """One queued unit of query work: a batch of specs and its future."""

    specs: List[QuerySpec]
    future: "asyncio.Future[List[BatchResult]]"
    enqueued: float = 0.0


@dataclass
class _Channel:
    """Per-cube serving state: the queue, its dispatcher, the append lock."""

    queue: "asyncio.Queue[object]"
    dispatcher: "asyncio.Task[None]"
    append_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: Deepest the queue has ever been — the saturation telltale stats()
    #: reports as ``pending_hwm`` (a rising mark under steady offered load
    #: means the dispatcher is falling behind).
    depth_hwm: int = 0


class AsyncCubeServer:
    """Serve many cubes concurrently: batched queries, non-blocking appends.

    Use as an async context manager (or call :meth:`start` / :meth:`stop`)::

        catalog = CubeCatalog(directory)
        async with AsyncCubeServer(catalog, refresh_processes=2) as server:
            answer = await server.query("sales", {"store": "nyc"})
            await server.append("sales", new_rows)   # queries keep flowing

    Parameters
    ----------
    catalog:
        The cube registry to serve.  Cubes are loaded lazily on first touch.
    max_pending:
        Bound of each per-cube query queue — the back-pressure knob.
    max_batch:
        Most query specs coalesced into one ``query_many`` executor call.
    query_workers:
        Threads answering queries.  Queries are index lookups (microseconds);
        a handful of threads saturates them.
    maintenance_workers:
        Threads driving appends and catalog I/O.  One append occupies a
        worker for its whole merge, so this bounds *concurrent* appends
        (appends to one cube serialise regardless).
    refresh_processes:
        When set, a ``spawn`` process pool of this size computes delta cubes
        and partition recomputes, freeing the GIL for query threads.
    refresh_executor:
        Alternatively, bring your own executor for the cubing compute (the
        tests inject a thread pool); mutually exclusive with
        ``refresh_processes``.
    request_timeout:
        When set, every query and append is bounded to this many seconds
        end to end (queueing + lock wait + execution).  Exceeding it
        raises :class:`~repro.core.errors.ServerTimeout` (answered as
        ``{"ok": false}`` over TCP), counted under the ``timeouts``
        counter in :meth:`stats` — so one wedged maintenance task cannot
        silently hang a connection forever.
    role:
        ``"leader"`` (default) serves the full surface; ``"follower"``
        serves reads from ``tailer``'s pinned replica views and rejects
        every mutating verb with :class:`~repro.core.errors.ServerError`.
    tailer:
        The :class:`~repro.replication.ReplicationTailer` a follower
        answers from (required for — and only legal with — the follower
        role).  The caller starts and stops it.
    """

    def __init__(
        self,
        catalog: CubeCatalog,
        max_pending: int = 1024,
        max_batch: int = 64,
        query_workers: int = 4,
        maintenance_workers: int = 2,
        refresh_processes: Optional[int] = None,
        refresh_executor: Optional[Executor] = None,
        request_timeout: Optional[float] = None,
        role: str = "leader",
        tailer: Optional["ReplicationTailer"] = None,
    ) -> None:
        if refresh_processes is not None and refresh_executor is not None:
            raise ServerError(
                "pass refresh_processes (server-owned pool) or "
                "refresh_executor (caller-owned), not both"
            )
        if request_timeout is not None and request_timeout <= 0:
            raise ServerError("request_timeout must be positive (seconds)")
        if role not in ("leader", "follower"):
            raise ServerError(
                f"unknown server role {role!r}; use 'leader' or 'follower'"
            )
        if (role == "follower") != (tailer is not None):
            raise ServerError(
                "the follower role requires a ReplicationTailer (and a "
                "leader must not carry one)"
            )
        self.role = role
        self.tailer = tailer
        self.catalog = catalog
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.request_timeout = request_timeout
        self._query_workers = query_workers
        self._maintenance_workers = maintenance_workers
        self._refresh_processes = refresh_processes
        self._refresh_executor = refresh_executor
        self._owns_refresh_pool = False
        self._query_pool: Optional[ThreadPoolExecutor] = None
        self._maintenance_pool: Optional[ThreadPoolExecutor] = None
        self._channels: Dict[str, _Channel] = {}
        self._started = False
        self._closing = False
        self._counters: Dict[str, int] = {
            "queries": 0,
            "batches": 0,
            "appends": 0,
            "appended_rows": 0,
            "compactions": 0,
            "errors": 0,
            "timeouts": 0,
        }
        # Server-side latency, per operation class, measured from enqueue
        # to answer on the event loop (so it brackets queueing + executor
        # time but not the network).  The load harness cross-checks its
        # client-side view against these.
        self._latency: Dict[str, LatencyHistogram] = {
            "query": LatencyHistogram(),
            "append": LatencyHistogram(),
        }

    # ------------------------------------------------------------------ #
    # Lifecycle                                                           #
    # ------------------------------------------------------------------ #

    async def start(self) -> "AsyncCubeServer":
        """Create the execution pools; idempotent."""
        if self._started:
            return self
        self._query_pool = ThreadPoolExecutor(
            max_workers=self._query_workers, thread_name_prefix="repro-query"
        )
        self._maintenance_pool = ThreadPoolExecutor(
            max_workers=self._maintenance_workers,
            thread_name_prefix="repro-maint",
        )
        if self._refresh_processes is not None:
            self._refresh_executor = create_refresh_pool(self._refresh_processes)
            self._owns_refresh_pool = True
        self._started = True
        self._closing = False
        return self

    async def stop(self) -> None:
        """Drain dispatchers, fail queued work, and shut the pools down."""
        if not self._started:
            return
        self._closing = True
        for channel in list(self._channels.values()):
            await channel.queue.put(_SHUTDOWN)
        for channel in list(self._channels.values()):
            await channel.dispatcher
        self._channels.clear()
        if self._query_pool is not None:
            self._query_pool.shutdown(wait=True)
            self._query_pool = None
        if self._maintenance_pool is not None:
            self._maintenance_pool.shutdown(wait=True)
            self._maintenance_pool = None
        if self._owns_refresh_pool and self._refresh_executor is not None:
            self._refresh_executor.shutdown(wait=True)
            self._refresh_executor = None
            self._owns_refresh_pool = False
        self._started = False

    async def __aenter__(self) -> "AsyncCubeServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    def _require_running(self) -> None:
        if not self._started or self._closing:
            raise ServerError("the server is not running (start() it first)")

    def _require_writable(self, op: str) -> None:
        if self.role != "leader":
            raise ServerError(
                f"{op!r} is a write and this server is a read-only "
                "follower; route writes to the leader (the lease holder)"
            )

    # ------------------------------------------------------------------ #
    # Queries                                                             #
    # ------------------------------------------------------------------ #

    async def query(self, cube: str, spec: QuerySpec) -> NamedAnswer:
        """Answer one point spec (``{dimension: value}``) on ``cube``.

        Enqueued behind the cube's earlier queries; a full queue makes this
        await (back-pressure).  The answer reflects some published cube
        version current while the query was in flight — never a torn state.
        """
        results = await self.execute_many(cube, [spec])
        answer = results[0]
        if not isinstance(answer, NamedAnswer):  # pragma: no cover - guarded by spec
            raise ServerError("point spec produced a non-point result")
        return answer

    async def execute(self, cube: str, spec: QuerySpec) -> BatchResult:
        """Answer one op-spec (``{"op": "slice"/"rollup"/"point", ...}``)."""
        results = await self.execute_many(cube, [spec])
        return results[0]

    async def execute_many(
        self, cube: str, specs: Sequence[QuerySpec]
    ) -> List[BatchResult]:
        """Answer a batch of specs in order — the server's native unit.

        The whole batch enters the cube's queue as one item and is answered
        by (at most a few) ``query_many`` calls, so callers that naturally
        batch pay one round trip.
        """
        self._require_running()
        if not specs:
            return []
        loop = asyncio.get_running_loop()
        item = _QueryItem(
            specs=list(specs), future=loop.create_future(),
            enqueued=time.monotonic(),
        )
        channel = self._channel(cube)
        await channel.queue.put(item)
        depth = channel.queue.qsize()
        if depth > channel.depth_hwm:
            channel.depth_hwm = depth
        if self.request_timeout is None:
            return await item.future
        try:
            # wait_for cancels the future on timeout; the dispatcher's
            # ``cancelled()`` guards make the late answer a no-op.
            return await asyncio.wait_for(item.future, self.request_timeout)
        except asyncio.TimeoutError:
            self._counters["timeouts"] += 1
            raise ServerTimeout(
                f"query batch on {cube!r} timed out after "
                f"{self.request_timeout}s ({len(item.specs)} specs)"
            ) from None

    def _channel(self, cube: str) -> _Channel:
        channel = self._channels.get(cube)
        if channel is None:
            queue: "asyncio.Queue[object]" = asyncio.Queue(maxsize=self.max_pending)
            dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch(cube, queue)
            )
            channel = _Channel(queue=queue, dispatcher=dispatcher)
            self._channels[cube] = channel
        return channel

    async def _dispatch(self, cube: str, queue: "asyncio.Queue[object]") -> None:
        """Per-cube dispatcher: coalesce queued items, answer them batched."""
        loop = asyncio.get_running_loop()
        while True:
            first = await queue.get()
            if first is _SHUTDOWN:
                self._fail_pending(queue)
                return
            batch: List[_QueryItem] = [first]  # type: ignore[list-item]
            total = len(batch[0].specs)
            while total < self.max_batch:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _SHUTDOWN:
                    # Serve what we already took, then shut down.
                    await queue.put(_SHUTDOWN)
                    break
                batch.append(item)  # type: ignore[arg-type]
                total += len(item.specs)  # type: ignore[union-attr]
            await self._answer_batch(loop, cube, batch)

    async def _answer_batch(
        self,
        loop: asyncio.AbstractEventLoop,
        cube: str,
        batch: List[_QueryItem],
    ) -> None:
        specs: List[QuerySpec] = []
        for item in batch:
            specs.extend(item.specs)
        try:
            results = await loop.run_in_executor(
                self._query_pool, partial(self._run_batch, cube, specs)
            )
        except Exception:
            # One bad spec must not fail its queue-mates: isolate per item.
            await self._answer_items_individually(loop, cube, batch)
            return
        self._counters["queries"] += len(specs)
        self._counters["batches"] += 1
        now = time.monotonic()
        cursor = 0
        for item in batch:
            share = results[cursor : cursor + len(item.specs)]
            cursor += len(item.specs)
            # Record service latency even for callers that timed out and
            # went away — their work was still done, and hiding it would
            # bias the server-side tail downward.
            self._latency["query"].record(
                max(0.0, now - item.enqueued), len(item.specs)
            )
            if not item.future.cancelled():
                item.future.set_result(share)

    async def _answer_items_individually(
        self,
        loop: asyncio.AbstractEventLoop,
        cube: str,
        batch: List[_QueryItem],
    ) -> None:
        for item in batch:
            try:
                results = await loop.run_in_executor(
                    self._query_pool, partial(self._run_batch, cube, item.specs)
                )
            except Exception as exc:
                self._counters["errors"] += 1
                if not item.future.cancelled():
                    item.future.set_exception(exc)
            else:
                self._counters["queries"] += len(item.specs)
                self._counters["batches"] += 1
                self._latency["query"].record(
                    max(0.0, time.monotonic() - item.enqueued), len(item.specs)
                )
                if not item.future.cancelled():
                    item.future.set_result(results)

    def _run_batch(self, cube: str, specs: List[QuerySpec]) -> List[BatchResult]:
        """Executed on a query worker thread: resolve the cube, answer all.

        A follower answers from the tailer's pinned replica view — the
        whole batch resolves at one published replica version and the
        leader's catalog instance is never loaded in this process.
        """
        if self.tailer is not None:
            return self.tailer.view(cube).query_many(specs)
        return self.catalog.open(cube).query_many(specs)

    def _fail_pending(self, queue: "asyncio.Queue[object]") -> None:
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not _SHUTDOWN and not item.future.cancelled():  # type: ignore[union-attr]
                item.future.set_exception(  # type: ignore[union-attr]
                    ServerError("the server stopped before answering")
                )

    # ------------------------------------------------------------------ #
    # Maintenance                                                         #
    # ------------------------------------------------------------------ #

    async def append(self, cube: str, rows: Sequence[object]) -> AppendReport:
        """Append rows to ``cube`` without stalling anyone's queries.

        Per-cube appends serialise (submission order); the merge runs
        copy-on-publish on the maintenance pool — and its cubing compute in
        the refresh process pool when one is configured — so concurrent
        queries, including queries on this very cube, keep answering against
        the published version until the atomic swap.

        With ``request_timeout`` set, one deadline brackets the whole
        append — the wait for the cube's append lock *and* the merge — so
        an earlier wedged append surfaces here as a
        :class:`~repro.core.errors.ServerTimeout` instead of an unbounded
        lock wait.  A merge abandoned by its timeout keeps running on its
        worker thread and may still publish; the catalog's per-name gates
        keep that safe.
        """
        self._require_running()
        self._require_writable("append")
        loop = asyncio.get_running_loop()
        channel = self._channel(cube)
        started = time.monotonic()
        deadline = (
            None if self.request_timeout is None
            else started + self.request_timeout
        )
        if deadline is None:
            await channel.append_lock.acquire()
        else:
            try:
                await asyncio.wait_for(
                    channel.append_lock.acquire(), deadline - started
                )
            except asyncio.TimeoutError:
                self._counters["timeouts"] += 1
                raise ServerTimeout(
                    f"append to {cube!r} timed out after "
                    f"{self.request_timeout}s waiting for an earlier append"
                ) from None
        try:
            work = loop.run_in_executor(
                self._maintenance_pool,
                partial(
                    self.catalog.append,
                    cube,
                    rows,
                    copy_on_publish=True,
                    executor=self._refresh_executor,
                ),
            )
            if deadline is None:
                report = await work
            else:
                try:
                    report = await asyncio.wait_for(
                        work, max(0.0, deadline - time.monotonic())
                    )
                except asyncio.TimeoutError:
                    self._counters["timeouts"] += 1
                    raise ServerTimeout(
                        f"append to {cube!r} timed out after "
                        f"{self.request_timeout}s mid-merge (the merge may "
                        "still publish in the background)"
                    ) from None
        finally:
            channel.append_lock.release()
        self._latency["append"].record(max(0.0, time.monotonic() - started))
        self._counters["appends"] += 1
        self._counters["appended_rows"] += report.appended_rows
        return report

    async def create(
        self,
        name: str,
        rows: Sequence[object],
        schema: Optional[object] = None,
    ) -> Dict[str, object]:
        """Build and register a new cube from raw rows; returns its metadata."""
        self._require_running()
        self._require_writable("create")
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._maintenance_pool,
            partial(self.catalog.create, name, rows, schema=schema),
        )
        return await self.describe(name)

    async def describe(self, name: str) -> Dict[str, object]:
        """One cube's catalog metadata, without blocking the event loop.

        :meth:`repro.catalog.CubeCatalog.describe` counts the journaled
        batches pending replay, which means opening and scanning the cube's
        append stream — real disk I/O that must not run on the loop thread.
        It runs on the maintenance pool instead, like every other
        catalog-touching operation.
        """
        self._require_running()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._maintenance_pool, partial(self.catalog.describe, name)
        )

    async def drop(self, name: str) -> None:
        """Unregister a cube and delete its files; its queue drains first."""
        self._require_running()
        self._require_writable("drop")
        channel = self._channels.pop(name, None)
        if channel is not None:
            await channel.queue.put(_SHUTDOWN)
            await channel.dispatcher
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._maintenance_pool, partial(self.catalog.drop, name)
        )

    async def save(self, name: Optional[str] = None) -> None:
        """Snapshot one cube (or all loaded cubes) through the catalog."""
        self._require_running()
        self._require_writable("save")
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._maintenance_pool, partial(self.catalog.save, name)
        )

    async def compact(self, name: str, mode: str = "auto") -> Dict[str, object]:
        """Fold a cube's append journal into durable snapshot state.

        Runs :meth:`repro.catalog.CubeCatalog.compact` on the maintenance
        pool, serialised against that cube's appends (the catalog's per-name
        gate); queries on every cube — including this one — keep flowing
        meanwhile.  Returns the catalog's compaction report.
        """
        self._require_running()
        self._require_writable("compact")
        loop = asyncio.get_running_loop()
        channel = self._channel(name)
        async with channel.append_lock:
            report = await loop.run_in_executor(
                self._maintenance_pool,
                partial(self.catalog.compact, name, mode),
            )
        if report.get("mode") != "none":
            self._counters["compactions"] += 1
        return report

    # ------------------------------------------------------------------ #
    # Adaptive rollups                                                    #
    # ------------------------------------------------------------------ #

    async def rollups(self, name: str) -> Dict[str, object]:
        """One cube's rollup-router statistics (``{"enabled": False}`` when
        no router is installed).  Loads the cube if needed, so it runs off
        the event loop like every catalog-touching operation."""
        self._require_running()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._query_pool,
            partial(self._rollup_stats, name),
        )

    def _rollup_stats(self, name: str) -> Dict[str, object]:
        return self.catalog.open(name).rollup_stats()

    async def advise(
        self,
        name: str,
        budget_bytes: Optional[int] = None,
        top_k: Optional[int] = None,
        apply: bool = False,
    ) -> Dict[str, object]:
        """Mine ``name``'s query log for rollup candidates; optionally apply.

        The dry run (default) estimates sizes without building anything and
        runs on the query pool.  ``apply=True`` materialises the chosen
        tables and installs the router — maintenance-class work, so it runs
        on the maintenance pool under the cube's append lock (an advisor
        snapshot racing an append would size tables for a superseded
        relation length).
        """
        self._require_running()
        loop = asyncio.get_running_loop()
        if apply:
            self._require_writable("advise(apply=True)")
            channel = self._channel(name)
            async with channel.append_lock:
                report = await loop.run_in_executor(
                    self._maintenance_pool,
                    partial(self._apply_rollups, name, budget_bytes, top_k),
                )
            return report
        return await loop.run_in_executor(
            self._query_pool,
            partial(self._advise_rollups, name, budget_bytes, top_k),
        )

    def _advise_rollups(
        self, name: str, budget_bytes: Optional[int], top_k: Optional[int]
    ) -> Dict[str, object]:
        report = self.catalog.open(name).advise_rollups(
            budget_bytes=budget_bytes, top_k=top_k
        )
        report["applied"] = False
        return report

    def _apply_rollups(
        self, name: str, budget_bytes: Optional[int], top_k: Optional[int]
    ) -> Dict[str, object]:
        report = self.catalog.open(name).enable_rollups(
            budget_bytes=budget_bytes, top_k=top_k
        )
        report["applied"] = True
        return report

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def list_cubes(self) -> List[str]:
        return self.catalog.list()

    def stats(self) -> Dict[str, object]:
        """Server-level counters plus per-cube queue depth and version.

        Runs on the event loop, so it must never touch disk: versions are
        reported only for cubes already in memory
        (:meth:`CubeCatalog.get_loaded`), never by triggering a snapshot
        load.
        """
        cubes: Dict[str, Dict[str, object]] = {}
        names = set(self._channels)
        if self.tailer is not None:
            # Followed cubes appear even before their first query, so an
            # operator watching lag sees every replica from the start.
            names.update(self.tailer.followers)
        for name in sorted(names):
            channel = self._channels.get(name)
            entry: Dict[str, object] = {
                "pending": 0 if channel is None else channel.queue.qsize(),
                "pending_hwm": 0 if channel is None else channel.depth_hwm,
                "appending": (
                    False if channel is None else channel.append_lock.locked()
                ),
            }
            if self.tailer is not None and name in self.tailer.followers:
                follower = self.tailer.followers[name]
                # Cached at the tailer's last poll — no disk from here.
                entry["replica_lag"] = follower.lag()
                entry["replica_rows"] = follower.cursor.rows
            loaded = self.catalog.get_loaded(name)
            if loaded is not None:
                entry["version"] = loaded.version
                entry["merge_cache"] = dict(loaded.merge_cache_stats)
                rollups = loaded.rollup_stats()
                # A summary, not the full per-grain table map: stats() runs
                # on the event loop and feeds dashboards, not debuggers.
                entry["rollups"] = {
                    "enabled": rollups.get("enabled", False),
                    "grains": rollups.get("grains", 0),
                    "total_bytes": rollups.get("total_bytes", 0),
                    "routed_points": rollups.get("routed_points", 0),
                    "routed_slices": rollups.get("routed_slices", 0),
                    "fallbacks": rollups.get("fallbacks", 0),
                }
            cubes[name] = entry
        return {
            "running": self._started and not self._closing,
            "role": self.role,
            "max_pending": self.max_pending,
            "max_batch": self.max_batch,
            "request_timeout": self.request_timeout,
            "counters": dict(self._counters),
            "latency": {
                name: histogram.summary()
                for name, histogram in self._latency.items()
            },
            "compaction": self.catalog.compaction_stats(),
            "cubes": cubes,
        }

    def replica_status(self) -> Dict[str, object]:
        """The replication view of this server (the TCP ``replica`` verb).

        On a follower: the tailer's per-cube cursor, counters, and cached
        lag.  On a leader: just the role — leaders have no replicas to
        report on.  Never touches disk (the lag pair is cached at each
        tailer poll), so it is safe on the event loop.
        """
        if self.tailer is None:
            return {"role": self.role, "cubes": {}}
        return {"role": self.role, "cubes": self.tailer.stats()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncCubeServer(cubes={self.list_cubes()!r}, "
            f"running={self._started})"
        )
