"""Line-JSON TCP protocol over an :class:`~repro.server.AsyncCubeServer`.

The wire format is one JSON object per line, both directions — trivially
scriptable (``nc``, a five-line client in any language) and the same shape
the catalog's append streams use.  Requests::

    {"op": "ping"}
    {"op": "list"}
    {"op": "stats"}
    {"op": "replica"}
    {"op": "describe", "cube": "sales"}
    {"op": "query",      "cube": "sales", "q": {"store": "nyc"}}
    {"op": "query_many", "cube": "sales", "q": [{...}, {"op": "rollup", ...}]}
    {"op": "append",     "cube": "sales", "rows": [[...], ...]}
    {"op": "create",     "cube": "sales", "rows": [...], "schema": {...}}
    {"op": "drop",       "cube": "sales"}
    {"op": "save",       "cube": "sales"}
    {"op": "compact",    "cube": "sales", "mode": "auto"}
    {"op": "rollups",    "cube": "sales"}
    {"op": "advise",     "cube": "sales", "budget_bytes": 4000000,
                         "top_k": 4, "apply": true}

An optional ``"id"`` is echoed back verbatim.  Responses are
``{"id": ..., "ok": true, "result": ...}`` or ``{"id": ..., "ok": false,
"error": {"type": ..., "message": ...}}`` — a request that overruns the
server's ``request_timeout`` answers ``ok: false`` with type
``ServerTimeout`` rather than stalling the connection; answers serialise as
``{"coordinates": {...}, "count": ..., "measures": {...}, "closure": ...,
"found": ...}``.  Requests on one connection are answered in order; open
many connections for client-side parallelism — the server batches across
connections anyway.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Union

from ..core.errors import ReproError, ServerError
from ..incremental.maintainer import AppendReport
from ..session.serving import BatchResult, NamedAnswer
from .server import AsyncCubeServer

#: Bytes per request line we are willing to buffer (64 MiB: bulk appends).
MAX_LINE_BYTES = 64 * 1024 * 1024


def serialize_answer(answer: NamedAnswer) -> Dict[str, object]:
    """A :class:`NamedAnswer` as plain JSON data."""
    return {
        "coordinates": dict(answer.coordinates),
        "count": answer.count,
        "measures": dict(answer.measures),
        "closure": None if answer.closure is None else dict(answer.closure),
        "found": answer.found,
    }


def serialize_result(result: BatchResult) -> Union[Dict[str, object], List[object]]:
    """One batch result: a single answer or a list of answers."""
    if isinstance(result, NamedAnswer):
        return serialize_answer(result)
    return [serialize_answer(answer) for answer in result]


def serialize_report(report: AppendReport) -> Dict[str, object]:
    """An :class:`AppendReport` as plain JSON data."""
    return {
        "appended_rows": report.appended_rows,
        "mode": report.mode,
        "algorithm": report.algorithm,
        "elapsed_seconds": report.elapsed_seconds,
        "invalidated_answers": report.invalidated_answers,
    }


async def _dispatch_request(
    server: AsyncCubeServer, request: Dict[str, object]
) -> object:
    """Execute one decoded request; returns the JSON-shaped result."""
    op = request.get("op")
    if op == "ping":
        return "pong"
    if op == "list":
        return server.list_cubes()
    if op == "stats":
        return server.stats()
    if op == "replica":
        return server.replica_status()
    if op not in (
        "describe", "query", "query_many", "append", "create", "drop", "save",
        "compact", "rollups", "advise",
    ):
        raise ServerError(
            f"unknown op {op!r}; expected ping/list/stats/replica/describe/"
            "query/query_many/append/create/drop/save/compact/rollups/advise"
        )
    cube = request.get("cube")
    if not isinstance(cube, str):
        raise ServerError(f"op {op!r} needs a string 'cube' field")
    if op == "describe":
        # Via the server, not server.catalog: describe() scans the cube's
        # append journal on disk and must stay off the event loop.
        return await server.describe(cube)
    if op == "query":
        spec = request.get("q")
        if not isinstance(spec, dict):
            raise ServerError("'query' needs a 'q' object ({dimension: value})")
        return serialize_result(await server.execute(cube, spec))
    if op == "query_many":
        specs = request.get("q")
        if not isinstance(specs, list):
            raise ServerError("'query_many' needs a 'q' array of specs")
        results = await server.execute_many(cube, specs)
        return [serialize_result(result) for result in results]
    if op == "append":
        rows = request.get("rows")
        if not isinstance(rows, list):
            raise ServerError("'append' needs a 'rows' array")
        decoded = [tuple(row) if isinstance(row, list) else row for row in rows]
        return serialize_report(await server.append(cube, decoded))
    if op == "create":
        rows = request.get("rows")
        if not isinstance(rows, list):
            raise ServerError("'create' needs a 'rows' array")
        decoded = [tuple(row) if isinstance(row, list) else row for row in rows]
        return await server.create(cube, decoded, schema=request.get("schema"))
    if op == "drop":
        await server.drop(cube)
        return {"dropped": cube}
    if op == "compact":
        mode = request.get("mode", "auto")
        if not isinstance(mode, str):
            raise ServerError("'compact' takes an optional string 'mode'")
        return await server.compact(cube, mode)
    if op == "rollups":
        return await server.rollups(cube)
    if op == "advise":
        budget_bytes = request.get("budget_bytes")
        top_k = request.get("top_k")
        apply = request.get("apply", False)
        if budget_bytes is not None and not isinstance(budget_bytes, int):
            raise ServerError("'advise' takes an optional integer 'budget_bytes'")
        if top_k is not None and not isinstance(top_k, int):
            raise ServerError("'advise' takes an optional integer 'top_k'")
        if not isinstance(apply, bool):
            raise ServerError("'advise' takes an optional boolean 'apply'")
        return await server.advise(
            cube, budget_bytes=budget_bytes, top_k=top_k, apply=apply
        )
    await server.save(cube)
    return {"saved": cube}


async def handle_connection(
    server: AsyncCubeServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection until EOF (one JSON object per line)."""
    try:
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                await _respond(
                    writer,
                    None,
                    error=ServerError(
                        f"request line exceeds {MAX_LINE_BYTES} bytes"
                    ),
                )
                return
            if not line:
                return
            if not line.strip():
                continue
            request_id: object = None
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ServerError("a request must be a JSON object")
                request_id = request.get("id")
                result = await _dispatch_request(server, request)
            except Exception as exc:
                # Any request-induced failure — library errors, but also
                # e.g. a TypeError from an unhashable JSON value inside a
                # spec — must answer {"ok": false} and keep the connection
                # (and its pipelined requests) alive.  Cancellation is
                # BaseException and still propagates.
                if not isinstance(exc, (ReproError, ValueError)):
                    exc = ServerError(
                        f"request failed: {type(exc).__name__}: {exc}"
                    )
                await _respond(writer, request_id, error=exc)
            else:
                await _respond(writer, request_id, result=result)
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def _respond(
    writer: asyncio.StreamWriter,
    request_id: object,
    result: object = None,
    error: Optional[Exception] = None,
) -> None:
    if error is None:
        payload: Dict[str, object] = {"id": request_id, "ok": True, "result": result}
    else:
        payload = {
            "id": request_id,
            "ok": False,
            "error": {"type": type(error).__name__, "message": str(error)},
        }
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()


async def serve_tcp(
    server: AsyncCubeServer, host: str = "127.0.0.1", port: int = 7171
) -> "asyncio.AbstractServer":
    """Start listening; returns the :class:`asyncio.Server` (caller closes)."""

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await handle_connection(server, reader, writer)

    return await asyncio.start_server(
        handler, host=host, port=port, limit=MAX_LINE_BYTES
    )
