"""Named-schema session API: the documented entry point of the library.

Everything downstream of the raw data speaks *names* here — named dimensions,
named measures, raw (un-encoded) values — with the positional core
(:mod:`repro.core`, :mod:`repro.query`) doing the actual work underneath:

>>> from repro.session import CubeSession, Sum
>>> rows = [("a1", "b1", "c1", 10.0),
...         ("a1", "b1", "c2", 20.0),
...         ("a1", "b2", "c1", 30.0)]
>>> cube = (
...     CubeSession.from_rows(
...         rows,
...         schema={"dimensions": ["A", "B", "C"], "measures": ["price"]},
...     )
...     .closed(min_sup=2)
...     .measures(Sum("price"))
...     .using("auto")
...     .build()
... )
>>> cube.point({"A": "a1", "C": "c1"}).count
2

The pieces:

* :class:`CubeSession` (:mod:`repro.session.session`) — fluent builder;
* :class:`ServingCube` (:mod:`repro.session.serving`) — named point / slice /
  roll-up queries, batching, and :meth:`~repro.session.serving.ServingCube.
  explain`;
* :mod:`repro.session.planner` — the ``"auto"`` algorithm planner (the
  paper's Figure 15 regions over relation statistics);
* :mod:`repro.session.schema` — named schemas and raw-row splitting;
* ``Sum`` / ``Min`` / ``Max`` / ``Avg`` / ``Count`` — measure DSL (aliases of
  the core measure specs, re-exported under query-friendly names).
"""

from ..core.measures import (
    AvgMeasure as Avg,
    CountMeasure as Count,
    MaxMeasure as Max,
    MinMeasure as Min,
    SumMeasure as Sum,
)
from .planner import Plan, RelationStats, plan_algorithm
from .schema import CubeSchema
from .serving import CubeView, Explanation, NamedAnswer, ServingConfig, ServingCube
from .session import CubeSession

__all__ = [
    "CubeSession",
    "ServingCube",
    "ServingConfig",
    "CubeView",
    "NamedAnswer",
    "Explanation",
    "CubeSchema",
    "Plan",
    "RelationStats",
    "plan_algorithm",
    "Sum",
    "Min",
    "Max",
    "Avg",
    "Count",
]
