"""Algorithm auto-planner: pick a C-Cubing variant from relation statistics.

The paper's evaluation ends with a "best algorithm" map (Figure 15): neither
C-Cubing(MM) nor C-Cubing(Star) dominates — which one wins depends on where
the workload sits in the (min_sup, data regularity) plane, and the dense/flat
regime has its own winner in the array-based variant (Figure 16's StarArray
trade-off).  The planner encodes those regions as explicit, inspectable rules
over cheap relation statistics:

* **dense region** — few dimensions, small per-dimension cardinality, and a
  base table that fills a non-trivial fraction of the cell space: array
  aggregation amortises best, so C-Cubing(StarArray) is chosen;
* **high-min_sup region** — when ``min_sup`` is large relative to the table,
  iceberg pruning does most of the work and the simpler MM-Cubing host wins:
  C-Cubing(MM);
* **everything else** — star-tree sharing pays off, C-Cubing(Star); and the
  more *regular* (skewed / value-concentrated) the data, the larger
  ``min_sup`` has to grow before MM overtakes Star, exactly the drift of the
  switching point across Figure 15's rows.

The planner is consulted whenever an algorithm is named ``"auto"`` — both by
:class:`repro.session.CubeSession` and by the positional facade
(:func:`repro.core.api.compute_closed_cube` and friends) through the hook in
:mod:`repro.algorithms.base`.  Statistics are computed in one pass over the
columns; planning never runs the data through a cubing engine.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Tuple

from ..algorithms import base as _base
from ..core.relation import Relation

# Region boundaries.  The absolute values are calibrated to the paper's
# synthetic workloads (T up to 1M, C up to 1000); what matters for the planner
# is the *shape* of the regions: the dense region triggers on cardinality and
# fill factor, and the MM/Star switching min_sup scales with table size and
# grows with data regularity (Figure 15).
DENSE_MAX_DIMS = 12
DENSE_MAX_CARDINALITY = 64
DENSE_MIN_FILL = 0.05
BASE_SWITCH_MIN_SUP = 8
SWITCH_TUPLES_DIVISOR = 5000
SKEW_SWITCH_BOOST = 4.0


@dataclass(frozen=True)
class RelationStats:
    """Cheap shape statistics of a relation, the planner's only input.

    ``skew`` is the mean per-dimension entropy deficit ``1 - H / log(C)`` —
    ``0.0`` for uniform value distributions, approaching ``1.0`` as each
    dimension concentrates on few values.  It proxies both the Zipf skew ``S``
    and the dependence score ``R`` of the paper's generators: either knob
    lowers value entropy.  ``fill`` is the fraction of the full cell space the
    base table could cover (``T`` over the cardinality product, capped at 1).
    """

    num_tuples: int
    num_dims: int
    cardinalities: Tuple[int, ...]
    skew: float
    fill: float

    @property
    def max_cardinality(self) -> int:
        return max(self.cardinalities)

    @classmethod
    def from_relation(cls, relation: Relation) -> "RelationStats":
        """Measure a relation in one pass per column."""
        num_tuples = relation.num_tuples
        cardinalities = []
        deficits = []
        for column in relation.columns:
            counts = Counter(column)
            cardinality = len(counts)
            cardinalities.append(cardinality)
            if cardinality <= 1 or num_tuples <= 1:
                deficits.append(1.0 if cardinality == 1 else 0.0)
                continue
            entropy = -sum(
                (count / num_tuples) * math.log(count / num_tuples)
                for count in counts.values()
            )
            deficits.append(max(0.0, 1.0 - entropy / math.log(cardinality)))
        space = 1.0
        for cardinality in cardinalities:
            space *= cardinality
        return cls(
            num_tuples=num_tuples,
            num_dims=relation.num_dimensions,
            cardinalities=tuple(cardinalities),
            skew=sum(deficits) / len(deficits),
            fill=min(1.0, num_tuples / space),
        )


@dataclass(frozen=True)
class Plan:
    """The planner's decision plus the evidence behind it."""

    algorithm: str
    closed: bool
    min_sup: int
    stats: RelationStats
    reasons: Tuple[str, ...]

    def explain(self) -> str:
        """Human-readable account of the decision."""
        stats = self.stats
        header = (
            f"chose {self.algorithm!r} for "
            f"{'closed' if self.closed else 'iceberg'} cube, min_sup={self.min_sup} "
            f"(T={stats.num_tuples}, D={stats.num_dims}, "
            f"C_max={stats.max_cardinality}, skew={stats.skew:.3f}, "
            f"fill={stats.fill:.2g})"
        )
        return "\n".join([header, *(f"- {reason}" for reason in self.reasons)])


def switching_min_sup(stats: RelationStats) -> float:
    """The MM/Star switching threshold for this data shape.

    Scales with table size and grows with regularity: regular data keeps the
    star-tree sharing of C-Cubing(Star) profitable deeper into the iceberg,
    moving the switch point right — the Figure 15 drift.
    """
    base = max(BASE_SWITCH_MIN_SUP, stats.num_tuples / SWITCH_TUPLES_DIVISOR)
    return base * (1.0 + SKEW_SWITCH_BOOST * stats.skew)


def plan_algorithm(
    relation: Relation,
    min_sup: int = 1,
    closed: bool = True,
    with_measures: bool = False,
) -> Plan:
    """Pick the best-suited engine for ``relation`` under the given run mode.

    ``with_measures`` declares that payload measures ride along: the star
    family aggregates count only, so measures restrict the choice to the MM
    host (the fast engine with full measure support).
    """
    stats = RelationStats.from_relation(relation)
    reasons = []
    if with_measures:
        algorithm = "c-cubing-mm" if closed else "mm-cubing"
        reasons.append(
            "payload measures requested: the star family aggregates count "
            "only, so the MM host is the fastest measure-capable engine"
        )
    elif (
        stats.num_dims <= DENSE_MAX_DIMS
        and stats.max_cardinality <= DENSE_MAX_CARDINALITY
        and stats.fill >= DENSE_MIN_FILL
    ):
        algorithm = "c-cubing-star-array" if closed else "star-array"
        reasons.append(
            f"dense region: D={stats.num_dims} <= {DENSE_MAX_DIMS}, "
            f"C_max={stats.max_cardinality} <= {DENSE_MAX_CARDINALITY}, "
            f"fill={stats.fill:.2g} >= {DENSE_MIN_FILL} — array aggregation "
            "amortises best (Fig. 16 regime)"
        )
    else:
        switch = switching_min_sup(stats)
        if min_sup >= switch:
            algorithm = "c-cubing-mm" if closed else "mm-cubing"
            reasons.append(
                f"high-min_sup region: min_sup={min_sup} >= switching point "
                f"{switch:.1f} — iceberg pruning dominates, the MM host wins "
                "(Fig. 15 upper region)"
            )
        else:
            algorithm = "c-cubing-star" if closed else "star-cubing"
            reasons.append(
                f"star region: min_sup={min_sup} < switching point {switch:.1f} "
                "— shared star-tree aggregation wins (Fig. 15 lower region)"
            )
        if stats.skew > 0:
            reasons.append(
                f"regularity skew={stats.skew:.3f} scaled the switching point by "
                f"{1.0 + SKEW_SWITCH_BOOST * stats.skew:.2f}x (Fig. 15: the "
                "MM/Star switch moves right as data grows more regular)"
            )
    capabilities = _base.algorithm_capabilities().get(algorithm)
    if (
        capabilities is None
        or (closed and not capabilities["supports_closed"])
        or (with_measures and not capabilities["supports_measures"])
    ):
        # Defensive: a stripped-down registry (e.g. a future plugin build)
        # may lack the planned variant; fall back to the documented default.
        from ..core.api import DEFAULT_CLOSED_ALGORITHM, DEFAULT_ICEBERG_ALGORITHM

        algorithm = DEFAULT_CLOSED_ALGORITHM if closed else DEFAULT_ICEBERG_ALGORITHM
        reasons.append(f"planned variant unavailable; fell back to {algorithm!r}")
    return Plan(
        algorithm=algorithm,
        closed=closed,
        min_sup=min_sup,
        stats=stats,
        reasons=tuple(reasons),
    )


@_base.register_planner
def _auto_planner(relation: Relation, options: "_base.CubingOptions") -> str:
    """The hook :func:`repro.algorithms.base.resolve_algorithm` consults."""
    return plan_algorithm(
        relation,
        min_sup=options.min_sup,
        closed=options.closed,
        with_measures=bool(options.measures),
    ).algorithm
