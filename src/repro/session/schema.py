"""Named cube schemas and the raw-row splitting used by :class:`CubeSession`.

The positional core (:mod:`repro.core.relation`) speaks dictionary-encoded
integers; applications speak *names* — dimension names, measure-column names,
raw values.  :class:`CubeSchema` is the declarative bridge: it names the
dimension and measure columns of the raw input, splits heterogeneous rows
(tuples or mappings) into the dimension part and the per-measure value
columns, and hands the result to :meth:`repro.core.relation.Relation.from_rows`
which owns the actual value dictionaries.

A schema can be declared several ways; :meth:`CubeSchema.coerce` accepts all
of them::

    CubeSchema(("store", "product"), ("price",))
    ["store", "product"]                                  # dimensions only
    {"dimensions": ["store", "product"], "measures": ["price"]}
    relation.schema                                       # a core Schema
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..core.errors import SchemaError
from ..core.relation import Relation, Schema


@dataclass(frozen=True)
class CubeSchema:
    """Named description of the raw input: dimension and measure columns."""

    dimensions: Tuple[str, ...]
    measures: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = list(self.dimensions) + list(self.measures)
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in cube schema: {names}")
        if not self.dimensions:
            raise SchemaError("a cube schema needs at least one dimension")

    # ------------------------------------------------------------------ #

    @classmethod
    def coerce(cls, spec: object) -> "CubeSchema":
        """Build a :class:`CubeSchema` from any accepted schema declaration."""
        if isinstance(spec, CubeSchema):
            return spec
        if isinstance(spec, Schema):
            return cls(spec.dimension_names, spec.measure_names)
        if isinstance(spec, Mapping):
            unknown = set(spec) - {"dimensions", "measures"}
            if unknown:
                raise SchemaError(
                    f"unknown cube schema keys {sorted(unknown)}; "
                    "expected 'dimensions' and optionally 'measures'"
                )
            if "dimensions" not in spec:
                raise SchemaError("cube schema mapping needs a 'dimensions' entry")
            return cls(
                tuple(spec["dimensions"]), tuple(spec.get("measures", ()))
            )
        if isinstance(spec, str):
            raise SchemaError(
                f"cube schema must name columns collectively, got the single "
                f"string {spec!r}"
            )
        try:
            names = tuple(spec)  # type: ignore[arg-type]
        except TypeError as exc:
            raise SchemaError(f"cannot interpret {spec!r} as a cube schema") from exc
        if not all(isinstance(name, str) for name in names):
            raise SchemaError(f"cube schema column names must be strings: {names!r}")
        return cls(names)

    # ------------------------------------------------------------------ #

    @property
    def num_dimensions(self) -> int:
        return len(self.dimensions)

    def dimension_index(self, name: str) -> int:
        """Index of dimension ``name``; raises with the valid names listed."""
        try:
            return self.dimensions.index(name)
        except ValueError as exc:
            raise SchemaError(
                f"unknown dimension {name!r}; dimensions are {list(self.dimensions)}"
            ) from exc

    def split_rows(
        self, rows: Sequence[object]
    ) -> Tuple[List[Tuple[object, ...]], Dict[str, List[float]]]:
        """Split raw rows into dimension tuples and per-measure value columns.

        Rows may be sequences (dimension values first, measure values after,
        both in schema order) or mappings keyed by column name.  The two styles
        may not be mixed within one input.
        """
        if not rows:
            raise SchemaError("cannot build a cube session from zero rows")
        dim_rows: List[Tuple[object, ...]] = []
        measure_values: Dict[str, List[float]] = {name: [] for name in self.measures}
        width = self.num_dimensions + len(self.measures)
        for position, row in enumerate(rows):
            if isinstance(row, Mapping):
                missing = [
                    name
                    for name in (*self.dimensions, *self.measures)
                    if name not in row
                ]
                if missing:
                    raise SchemaError(
                        f"row {position} is missing columns {missing}"
                    )
                dim_rows.append(tuple(row[name] for name in self.dimensions))
                for name in self.measures:
                    measure_values[name].append(float(row[name]))
            else:
                values = tuple(row)  # type: ignore[arg-type]
                if len(values) != width:
                    raise SchemaError(
                        f"row {position} has {len(values)} columns; the schema "
                        f"declares {width} "
                        f"({self.num_dimensions} dimensions + "
                        f"{len(self.measures)} measures)"
                    )
                dim_rows.append(values[: self.num_dimensions])
                for offset, name in enumerate(self.measures):
                    measure_values[name].append(
                        float(values[self.num_dimensions + offset])
                    )
        return dim_rows, measure_values

    def build_relation(self, rows: Sequence[object]) -> Relation:
        """Dictionary-encode raw rows into a :class:`Relation` for this schema."""
        dim_rows, measure_values = self.split_rows(rows)
        return Relation.from_rows(dim_rows, self.dimensions, measure_values)
