"""The named query surface: :class:`ServingCube` and its answer model.

A :class:`ServingCube` is what :meth:`repro.session.CubeSession.build`
returns: a materialised (closed) cube plus a serving engine, fronted by the
schema's value dictionaries so that queries are expressed in dimension
*names* and raw values::

    cube.point({"A": "a1", "C": "c1"})          # one cell, any lattice cell
    cube.slice({"B": "b2"}, group_by=["A"])     # GROUP BY under fixed values
    cube.rollup(["A"])                          # aggregate up to one cuboid
    cube.query_many([...])                      # batched, order-preserving
    cube.explain({"A": "a1"})                   # which closed cell answered
    cube.append(new_rows)                       # incremental maintenance
    cube.save(path); ServingCube.load(path)     # snapshot persistence

Answers come back as :class:`NamedAnswer` — decoded coordinates, count, and
payload measures — never as encoded integers.  Unknown dimension *names* are
an error (:class:`~repro.core.errors.QueryError`); unknown dimension *values*
are not: a value that never appears in the base table simply has an empty
cell, so the answer is a not-found :class:`NamedAnswer`, consistent with how
the closed iceberg cube treats below-threshold cells.

Decoded answers are memoised per target cell in an LRU cache sized like the
engine's answer cache, so hot named traffic costs one dictionary encode plus
two cache hits — the overhead benchmarks/bench_api_overhead.py keeps honest.

Concurrency: queries may run from any number of threads at once.  Each query
resolves against one *published* cube version (the engine's read/write lock
plus the decoded cache's generation counter guarantee no torn or stale
state), and maintenance is serialised by an internal lock.  ``append(...,
copy_on_publish=True)`` — what :meth:`ServingCube.append_async` and the
concurrent server (:mod:`repro.server`) use — merges into a private clone and
publishes by reference swap, so the read hot path never waits on a merge;
the default in-place append remains the fastest option for single-threaded
use.  :meth:`ServingCube.read_snapshot` pins one published version for
repeated reads; :attr:`ServingCube.version` counts publishes.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.cell import Cell
from ..core.cube import CubeResult
from ..core.errors import QueryError
from ..core.measures import MeasureSpec
from ..core.relation import Relation
from ..query.cache import LRUCache
from ..query.engine import (
    DEFAULT_CACHE_SIZE,
    PartitionedQueryEngine,
    QueryEngine,
)
from ..query.queries import QueryAnswer
from .planner import Plan
from .schema import CubeSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..incremental.maintainer import AppendReport
    from ..storage.partition import PartitionReport

#: Decoded coordinates: ``(dimension name, raw value)`` pairs in schema order.
Coordinates = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class NamedAnswer:
    """One decoded query answer.

    ``coordinates`` fixes the queried cell in names and raw values
    (aggregated ``*`` dimensions are omitted); ``count is None`` means the
    cell is empty or below the iceberg threshold.  ``closure`` names the
    materialised closed cell that carried the answer, when one did.
    """

    coordinates: Coordinates
    count: Optional[int]
    measures: Tuple[Tuple[str, float], ...] = ()
    closure: Optional[Coordinates] = None

    @property
    def found(self) -> bool:
        return self.count is not None

    def coordinates_dict(self) -> Dict[str, object]:
        return dict(self.coordinates)

    def measures_dict(self) -> Dict[str, float]:
        return dict(self.measures)

    def measure(self, name: str) -> float:
        for key, value in self.measures:
            if key == name:
                return value
        raise QueryError(f"answer carries no measure named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        coords = ", ".join(f"{name}={value!r}" for name, value in self.coordinates)
        return f"NamedAnswer({coords or '*'}: count={self.count})"


@dataclass(frozen=True)
class Explanation:
    """How one point answer came to be (see :meth:`ServingCube.explain`).

    ``covering_cell`` is the materialised closed cell whose aggregate answered
    the query — the quotient-cube closure; ``direct_hit`` says whether the
    queried cell itself was materialised, and ``from_cache`` whether the
    engine's answer cache already held the answer before this call.
    """

    question: Coordinates
    answer: NamedAnswer
    covering_cell: Optional[Coordinates]
    direct_hit: bool
    from_cache: bool
    algorithm: str
    plan: Optional[Plan]

    def describe(self) -> str:
        """Multi-line human-readable account."""
        question = ", ".join(f"{n}={v!r}" for n, v in self.question) or "(apex)"
        lines = [f"query point({question})"]
        if not self.answer.found:
            lines.append(
                "-> not answerable: the cell is empty or below the iceberg "
                "threshold (information the closed iceberg cube discards)"
            )
        else:
            lines.append(f"-> count={self.answer.count}")
            covering = ", ".join(
                f"{n}={v!r}" for n, v in (self.covering_cell or ())
            )
            if self.direct_hit:
                lines.append("-> covered by itself (materialised closed cell)")
            else:
                lines.append(
                    f"-> covered by closed cell ({covering}) — the maximum-count "
                    "materialised specialisation (quotient-cube closure)"
                )
        lines.append(f"-> served from cache: {'yes' if self.from_cache else 'no'}")
        lines.append(f"-> cube computed by {self.algorithm!r}")
        if self.plan is not None:
            lines.append("-> planner: " + self.plan.explain().replace("\n", "\n   "))
        return "\n".join(lines)


#: A batched query specification (see :meth:`ServingCube.query_many`).
QuerySpec = Mapping[str, object]
#: One batched result: a single answer or, for slices/roll-ups, a list.
BatchResult = Union[NamedAnswer, List[NamedAnswer]]


@dataclass(frozen=True)
class ServingConfig:
    """How a serving cube was built — everything maintenance needs to rebuild.

    Stored on every :class:`ServingCube` (and in its snapshots) so that
    :meth:`ServingCube.append` can pick the right maintenance path and
    :meth:`ServingCube.refresh` can recompute with the original settings
    after the relation has grown.
    """

    min_sup: int = 1
    closed: bool = True
    measures: Tuple[MeasureSpec, ...] = ()
    algorithm: str = "auto"
    cache_size: int = DEFAULT_CACHE_SIZE
    dimension_order: object = None
    partitioned: bool = False
    partition_dim: Optional[int] = None


def build_serving_state(relation: Relation, config: ServingConfig) -> Tuple[
    CubeResult,
    Union[QueryEngine, PartitionedQueryEngine],
    str,
    Optional[Plan],
    Optional[float],
    Optional["PartitionReport"],
]:
    """Compute a relation's cube and open its engine, per one config.

    The single build path shared by :meth:`CubeSession.build` and
    :meth:`ServingCube.refresh`, so a refresh (or an append falling back to
    one) can never drift from how the session originally built the cube.
    Returns ``(cube, engine, algorithm, plan, build_seconds,
    partition_report)`` — ``plan`` only when the config asked for ``"auto"``,
    ``partition_report`` only for partitioned configs.
    """
    from ..algorithms.base import AUTO_ALGORITHM, CubingOptions, get_algorithm
    from ..core.errors import AlgorithmError
    from ..core.measures import MeasureSet
    from .planner import plan_algorithm

    plan: Optional[Plan] = None
    algorithm = config.algorithm
    if algorithm.lower() == AUTO_ALGORITHM:
        plan = plan_algorithm(
            relation,
            min_sup=config.min_sup,
            closed=config.closed,
            with_measures=bool(config.measures),
        )
        algorithm = plan.algorithm
    if config.partitioned:
        from ..storage.partition import PartitionedCubeComputer

        if config.measures:
            raise AlgorithmError(
                "partitioned sessions do not carry payload measures yet; "
                "drop .measures(...) or build unpartitioned"
            )
        computer = PartitionedCubeComputer(
            algorithm=algorithm,
            min_sup=config.min_sup,
            closed=config.closed,
            dimension_order=config.dimension_order,
        )
        cube, report = computer.compute(relation, partition_dim=config.partition_dim)
        engine: Union[QueryEngine, PartitionedQueryEngine] = PartitionedQueryEngine(
            cube, partition_dim=report.partition_dim, cache_size=config.cache_size
        )
        return cube, engine, algorithm, plan, None, report
    options = CubingOptions(
        min_sup=config.min_sup,
        closed=config.closed,
        measures=MeasureSet(tuple(config.measures)),
        dimension_order=config.dimension_order,
    )
    result = get_algorithm(algorithm, options).run(relation)
    engine = QueryEngine(result.cube, cache_size=config.cache_size)
    return result.cube, engine, result.algorithm, plan, result.elapsed_seconds, None


class ServingCube:
    """A materialised cube served through the schema's value dictionaries.

    Beyond queries, the cube is *maintainable*: :meth:`append` folds new fact
    rows in (incrementally when exact, recomputing otherwise), :meth:`refresh`
    rebuilds from the grown relation, and :meth:`save` / :meth:`load`
    round-trip the whole serving state through the versioned snapshot format
    (:mod:`repro.storage.snapshot`).
    """

    def __init__(
        self,
        relation: Relation,
        schema: CubeSchema,
        cube: CubeResult,
        engine: Union[QueryEngine, PartitionedQueryEngine],
        algorithm: str,
        plan: Optional[Plan] = None,
        build_seconds: Optional[float] = None,
        config: Optional[ServingConfig] = None,
        partition_report: Optional["PartitionReport"] = None,
    ) -> None:
        self.relation = relation
        self.schema = schema
        self.cube = cube
        self.engine = engine
        self.algorithm = algorithm
        self.plan = plan
        self.build_seconds = build_seconds
        #: Whether the builder supplied an explicit config.  Maintenance
        #: refuses to run on a guessed config: assuming min_sup/closed/
        #: measures that do not match how the cube was really computed would
        #: corrupt it silently (e.g. delta-merging an iceberg cube).
        self.config_known = config is not None
        self.config = config if config is not None else ServingConfig(
            partitioned=isinstance(engine, PartitionedQueryEngine),
            cache_size=engine.cache.capacity,
        )
        #: The computation report of the partitioned driver, kept so that
        #: appends can refresh partition by partition.
        self.partition_report = partition_report
        self._dim_of = {name: dim for dim, name in enumerate(schema.dimensions)}
        self._num_dims = len(schema.dimensions)
        self._encoders = [
            relation.encoder(dim) for dim in range(relation.num_dimensions)
        ]
        #: Decoded answers keyed by encoded target cell.  Invalidated by the
        #: maintenance paths exactly like the engine's answer cache — the hot
        #: named path can return from here without re-entering the engine.
        #: Writes go through ``put_if_generation`` so an answer resolved
        #: against a superseded cube version is never cached after a publish.
        self._decoded: LRUCache[NamedAnswer] = LRUCache(engine.cache.capacity)
        #: Serialises maintenance (append / refresh / save) against itself;
        #: queries never take it.  Reentrant because append's fallback path
        #: calls :meth:`refresh`.
        self._maintenance_lock = threading.RLock()
        #: Lazily created single worker thread behind :meth:`append_async`
        #: (one per cube, so async appends to one cube stay ordered).
        self._append_pool: Optional[ThreadPoolExecutor] = None
        #: Remote-merge worker-cache traffic (see
        #: :meth:`repro.incremental.maintainer.CubeMaintainer._remote_merge`):
        #: how many merges shipped only the delta because the worker still
        #: held the base state, how many had to resend the full base, and how
        #: many delta attempts missed and fell back.
        self.merge_cache_stats: Dict[str, int] = {
            "delta_sends": 0,
            "full_sends": 0,
            "misses": 0,
        }
        #: Last :meth:`enable_rollups` parameters, reused by re-advises with
        #: no arguments (``None`` until rollups are first enabled).
        self._rollup_params: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------ #
    # Name / value translation                                            #
    # ------------------------------------------------------------------ #

    def _dim_index(self, name: str) -> int:
        dim = self._dim_of.get(name)
        if dim is None:
            raise QueryError(
                f"unknown dimension {name!r}; dimensions are "
                f"{list(self.schema.dimensions)}"
            )
        return dim

    def _target_cell(
        self, spec: Mapping[str, object]
    ) -> Tuple[Cell, List[Tuple[str, object]]]:
        """Encode a ``{name: raw value}`` spec; unseen values are reported, not raised."""
        cell: List[Optional[int]] = [None] * self._num_dims
        unseen: List[Tuple[str, object]] = []
        encoders = self._encoders
        for name, raw in spec.items():
            dim = self._dim_index(name)
            code = encoders[dim].get(raw)
            if code is None:
                unseen.append((name, raw))
            else:
                cell[dim] = code
        return tuple(cell), unseen

    def _decode_cell(self, cell: Cell) -> Coordinates:
        relation = self.relation
        names = self.schema.dimensions
        return tuple(
            (names[dim], relation.decode(dim, code))
            for dim, code in enumerate(cell)
            if code is not None
        )

    def _decode_answer(
        self,
        answer: QueryAnswer,
        generation: Optional[int] = None,
        reuse_cached: bool = True,
    ) -> NamedAnswer:
        """Decode one engine answer, memoising through the decoded cache.

        ``generation`` is the decoded cache's generation *captured before the
        engine resolved the answer*; the write-back is dropped when a publish
        invalidated the cache in between (the answer belongs to a superseded
        cube version).  ``None`` means "current" — only safe when no publish
        can be concurrent (the single-threaded fast path never passes it).

        ``reuse_cached=False`` skips the cache *read*: a slice resolves all
        its answers atomically at one version, and substituting a cached
        decode from a newer publish would tear the result set.  (A point
        query is a single answer, so any published version's decode is a
        consistent reply there.)
        """
        decoded = self._decoded
        if reuse_cached:
            cached = decoded.get(answer.cell)
            if cached is not None:
                return cached
        named = NamedAnswer(
            coordinates=self._decode_cell(answer.cell),
            count=answer.count,
            measures=answer.measures,
            closure=(
                self._decode_cell(answer.closure)
                if answer.closure is not None
                else None
            ),
        )
        decoded.put_if_generation(
            answer.cell,
            named,
            decoded.generation if generation is None else generation,
        )
        return named

    def _spec_coordinates(self, spec: Mapping[str, object]) -> Coordinates:
        """A spec as schema-ordered coordinates (the documented invariant)."""
        dim_of = self._dim_of
        return tuple(sorted(spec.items(), key=lambda item: dim_of[item[0]]))

    def _unseen_answer(self, spec: Mapping[str, object]) -> NamedAnswer:
        return NamedAnswer(coordinates=self._spec_coordinates(spec), count=None)

    # ------------------------------------------------------------------ #
    # Queries                                                             #
    # ------------------------------------------------------------------ #

    def point(self, spec: Mapping[str, object]) -> NamedAnswer:
        """Aggregate of one cell: ``{dimension name: raw value}``, rest ``*``.

        Any lattice cell is answerable, materialised or not (quotient-cube
        closure semantics); ``count is None`` means empty or below threshold.
        """
        target, unseen = self._target_cell(spec)
        if unseen:
            return self._unseen_answer(spec)
        # Capture the decoded cache's generation before resolving: if a
        # publish lands in between, the write-back below is dropped instead
        # of caching an answer from the superseded cube version.
        generation = self._decoded.generation
        cached = self._decoded.get(target)
        if cached is not None:
            return cached
        return self._decode_answer(self.engine.point(target), generation)

    def slice(
        self,
        fixed: Mapping[str, object],
        group_by: Sequence[str] = (),
    ) -> List[NamedAnswer]:
        """Fix some dimensions by raw value, group by others — one answer per
        iceberg cell of that cuboid, in stable order."""
        fixed_encoded: Dict[int, int] = {}
        for name, raw in fixed.items():
            dim = self._dim_index(name)
            code = self.relation.try_encode(dim, raw)
            if code is None:
                return []  # a never-seen value matches no cell
            fixed_encoded[dim] = code
        group_dims = [self._dim_index(name) for name in group_by]
        generation = self._decoded.generation
        answers = self.engine.slice(fixed_encoded, group_dims)
        # reuse_cached=False: the engine resolved the whole slice at one
        # published version; mixing in decoded-cache entries from a newer
        # publish would tear the result set (see _decode_answer).
        return [
            self._decode_answer(answer, generation, reuse_cached=False)
            for answer in answers
        ]

    def rollup(self, dims: Sequence[str]) -> List[NamedAnswer]:
        """Roll the whole cube up to the cuboid over ``dims``.

        Equivalent to ``slice({}, group_by=dims)``: every other dimension is
        collapsed to ``*``, one answer per iceberg cell of the target cuboid.
        """
        return self.slice({}, group_by=dims)

    def query_many(self, specs: Iterable[QuerySpec]) -> List[BatchResult]:
        """Answer a batch of query specs, preserving input order.

        Each spec is a mapping with an ``"op"`` key naming the operation
        (``"point"``, ``"slice"``, or ``"rollup"``) plus that operation's
        arguments (``"cell"``, ``"fixed"``/``"group_by"``, ``"dims"``).  A
        mapping without an ``"op"`` entry is shorthand for a point query on
        itself; so is a mapping whose ``"op"`` entry is not one of the three
        operation names, provided the schema has a dimension called ``"op"``
        (on such schemas the operation names win the tie — use the explicit
        ``{"op": "point", "cell": ...}`` envelope to query those values).
        """
        results: List[BatchResult] = []
        for spec in specs:
            op = spec.get("op")
            if op == "point":
                results.append(self.point(spec.get("cell", {})))  # type: ignore[arg-type]
            elif op == "slice":
                results.append(
                    self.slice(
                        spec.get("fixed", {}),  # type: ignore[arg-type]
                        spec.get("group_by", ()),  # type: ignore[arg-type]
                    )
                )
            elif op == "rollup":
                results.append(self.rollup(spec.get("dims", ())))  # type: ignore[arg-type]
            elif op is None or "op" in self._dim_of:
                results.append(self.point(spec))
            else:
                raise QueryError(
                    f"unknown query op {op!r}; expected 'point', 'slice', or "
                    "'rollup' (or a bare {dimension: value} point spec)"
                )
        return results

    # ------------------------------------------------------------------ #
    # Maintenance                                                         #
    # ------------------------------------------------------------------ #

    def append(
        self,
        rows: Sequence[object],
        copy_on_publish: bool = False,
        executor: Optional[Executor] = None,
    ) -> "AppendReport":
        """Fold new fact rows into the served cube.

        Rows use the same shapes as :meth:`repro.session.CubeSession.
        from_rows` (tuples in schema order or mappings by column name); value
        dictionaries grow append-only, so previously returned answers and
        encodings stay valid.  An empty ``rows`` is an explicit no-op: the
        returned report says so and no maintenance path is even consulted.

        The maintenance path is chosen per the cube's configuration and
        reported, never silent:

        * full closed cubes (``min_sup == 1``) take the incremental path —
          a delta cube over only the appended tuples (algorithm chosen by the
          planner for the delta's shape) is merged in with aggregation-based
          closedness repair, the live index is updated in place, and exactly
          the affected cached answers are invalidated;
        * partitioned cubes refresh partition by partition, recomputing only
          the partitions the appended tuples touched;
        * iceberg (``min_sup > 1``) and non-closed cubes recompute — they
          have discarded information a delta could resurrect, so incremental
          maintenance cannot be exact.

        ``copy_on_publish`` trades a little merge-side work for lock-free
        reads: the merge happens on a private clone of the cube and is made
        visible with one atomic publish, so concurrent queries keep flowing
        against the previous version instead of racing in-place mutation.
        This is the mode the concurrent server uses; the default in-place
        merge is faster when nothing reads concurrently.  ``executor``
        optionally offloads the delta / partition cubing to a
        :class:`concurrent.futures` executor — with a process pool
        (:func:`repro.incremental.parallel.create_refresh_pool`) the compute
        escapes the GIL entirely.

        Queries answered after ``append`` returns are exactly the queries a
        from-scratch rebuild over the grown relation would answer.
        """
        from ..incremental.maintainer import AppendReport, CubeMaintainer

        if not rows:
            return AppendReport(0, "no-op", self.algorithm, 0.0)
        with self._maintenance_lock:
            maintainer = CubeMaintainer(
                self, copy_on_publish=copy_on_publish, executor=executor
            )
            return maintainer.append(rows)

    def append_async(
        self,
        rows: Sequence[object],
        executor: Optional[Executor] = None,
    ) -> "Future[AppendReport]":
        """Apply :meth:`append` in the background; queries keep flowing.

        Runs ``append(rows, copy_on_publish=True, executor=executor)`` on a
        per-cube single worker thread and returns the
        :class:`concurrent.futures.Future` of its
        :class:`~repro.incremental.maintainer.AppendReport`.  Because the
        worker is singular, async appends to one cube apply in submission
        order; because the merge is copy-on-publish, concurrent queries never
        block on it — they serve the previous published version until the
        swap.  This is the synchronous-world sibling of
        :meth:`repro.server.AsyncCubeServer.append`.
        """
        if self._append_pool is None:
            with self._maintenance_lock:
                if self._append_pool is None:
                    self._append_pool = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix="repro-append"
                    )
        return self._append_pool.submit(
            partial(self.append, rows, copy_on_publish=True, executor=executor)
        )

    def refresh(self) -> None:
        """Recompute the cube from the (possibly grown) relation, in place.

        The cold counterpart of :meth:`append`'s incremental path, and the
        fallback it degrades to: recomputes through the same
        :func:`build_serving_state` path the session used (re-planning when
        the build asked for ``"auto"``), reopens the engine, and clears both
        answer caches.  The cube keeps serving the old state until the
        recomputation finishes.  Like :meth:`append`, refuses to run on a
        cube constructed without an explicit config — rebuilding under
        guessed settings would not match the cube being replaced.
        """
        if not self.config_known:
            from ..core.errors import IncrementalError

            raise IncrementalError(
                "this ServingCube was constructed without a ServingConfig, so "
                "refresh() cannot know how to rebuild it; build it through "
                "CubeSession (or pass config=...) to enable maintenance"
            )
        with self._maintenance_lock:
            cube, engine, algorithm, plan, build_seconds, report = (
                build_serving_state(self.relation, self.config)
            )
            # Publish ordering for concurrent readers: the rebuilt engine is
            # complete before it becomes reachable, it carries the next
            # version, and the decoded cache's generation advances only after
            # the swap (so readers that resolved against the old engine
            # cannot write back afterwards — see LRUCache.put_if_generation).
            engine.version = self.engine.version + 1
            old_engine = self.engine
            if isinstance(engine, QueryEngine) and isinstance(old_engine, QueryEngine):
                # The workload log and any installed rollups survive a full
                # rebuild: the shape history is about the query stream, not
                # the cube version, and the tables are rebuilt at the same
                # grains over the grown relation before the engine becomes
                # reachable (so the first routed read is already fresh).
                engine.recorder = old_engine.recorder
                if old_engine.router is not None:
                    engine.router = self._rebuilt_router(old_engine.router)
            self.cube = cube
            self.engine = engine
            self.algorithm = algorithm
            if plan is not None:
                self.plan = plan
            if build_seconds is not None:
                self.build_seconds = build_seconds
            if report is not None:
                self.partition_report = report
            self.clear_cache()

    # ------------------------------------------------------------------ #
    # Adaptive rollups                                                    #
    # ------------------------------------------------------------------ #

    def _measure_set(self) -> "MeasureSet":
        from ..core.measures import MeasureSet

        return MeasureSet(tuple(self.config.measures))

    def _rebuilt_router(self, old_router: object) -> object:
        """A fresh router carrying ``old_router``'s grains over the current
        relation (used by :meth:`refresh` to keep rollups across rebuilds)."""
        from ..rollup import RollupRouter, RollupTable

        router = RollupRouter(min_sup=self.config.min_sup)
        router.hits = dict(old_router.hits)
        router.counters = dict(old_router.counters)
        measures = self._measure_set()
        router.tables = {
            grain: RollupTable.build(self.relation, grain, measures)
            for grain in old_router.tables
        }
        return router

    def enable_rollups(
        self,
        budget_bytes: Optional[int] = None,
        top_k: Optional[int] = None,
        min_hits: int = 1,
    ) -> Dict[str, object]:
        """Mine the query log and materialise the hottest rollup grains.

        Runs the :mod:`repro.rollup.advisor` over the engine's
        :class:`~repro.rollup.recorder.ShapeRecorder`, builds the chosen
        tables, and installs (or refreshes) the
        :class:`~repro.rollup.router.RollupRouter` under the engine's write
        lock.  Subsequent queries whose dimension set an installed grain
        covers are answered from the flat tables — exactly (iceberg filtering
        happens at serve time), falling back to the closed-cube engine for
        everything else.  Safe to call repeatedly as the workload drifts;
        omitted parameters reuse the previous call's (or the defaults).
        Returns a JSON-ready report of what was installed and skipped.

        Requires an explicit config (maintenance must know ``min_sup`` and
        the measures) and the single-engine serving path — partitioned cubes
        shard by a dimension value and have no one relation-wide engine to
        route for.
        """
        from ..rollup import (
            DEFAULT_BUDGET_BYTES,
            DEFAULT_TOP_K,
            RollupRouter,
            materialise_rollups,
        )

        if not self.config_known:
            raise QueryError(
                "enable_rollups() needs the cube's real configuration "
                "(min_sup, measures); build through CubeSession or pass "
                "config=... to ServingCube"
            )
        engine = self.engine
        if not isinstance(engine, QueryEngine):
            raise QueryError(
                "rollup routing requires the single-engine serving path; "
                "partitioned cubes are not supported"
            )
        stored = self._rollup_params or {}
        if budget_bytes is None:
            budget_bytes = stored.get("budget_bytes", DEFAULT_BUDGET_BYTES)
        if top_k is None:
            top_k = stored.get("top_k", DEFAULT_TOP_K)
        with self._maintenance_lock:
            choices, tables = materialise_rollups(
                self.relation,
                engine.recorder,
                self._measure_set(),
                budget_bytes=budget_bytes,
                top_k=top_k,
                min_hits=min_hits,
            )
            router = engine.router
            if router is None:
                router = RollupRouter(min_sup=self.config.min_sup)
            with engine.lock.write():
                router.tables = tables
                engine.router = router
            self._rollup_params = {
                "budget_bytes": budget_bytes,
                "top_k": top_k,
                "min_hits": min_hits,
            }
            return {
                "installed": [c.as_dict() for c in choices if c.chosen],
                "skipped": [c.as_dict() for c in choices if not c.chosen],
                "budget_bytes": budget_bytes,
                "top_k": top_k,
                "total_bytes": router.total_bytes(),
            }

    def advise_rollups(
        self,
        budget_bytes: Optional[int] = None,
        top_k: Optional[int] = None,
        min_hits: int = 1,
    ) -> Dict[str, object]:
        """Dry-run the advisor over the current query log; nothing is built.

        The estimation-only sibling of :meth:`enable_rollups` (and the body
        of the server's ``advise`` verb): returns every candidate grain with
        its traffic, estimated size, and whether it would be materialised
        under the given budget and ``top_k``.  Omitted parameters reuse the
        last :meth:`enable_rollups` call's (or the defaults).
        """
        from ..rollup import DEFAULT_BUDGET_BYTES, DEFAULT_TOP_K, advise_rollups

        engine = self.engine
        if not isinstance(engine, QueryEngine):
            raise QueryError(
                "rollup routing requires the single-engine serving path; "
                "partitioned cubes are not supported"
            )
        stored = self._rollup_params or {}
        if budget_bytes is None:
            budget_bytes = stored.get("budget_bytes", DEFAULT_BUDGET_BYTES)
        if top_k is None:
            top_k = stored.get("top_k", DEFAULT_TOP_K)
        choices = advise_rollups(
            self.relation,
            engine.recorder,
            self._measure_set(),
            budget_bytes=budget_bytes,
            top_k=top_k,
            min_hits=min_hits,
        )
        return {
            "budget_bytes": budget_bytes,
            "top_k": top_k,
            "choices": [choice.as_dict() for choice in choices],
        }

    def disable_rollups(self) -> None:
        """Uninstall the router; every query falls back to the engine."""
        engine = self.engine
        if isinstance(engine, QueryEngine) and engine.router is not None:
            with engine.lock.write():
                engine.router = None
        self._rollup_params = None

    def rollup_stats(self) -> Dict[str, object]:
        """Router statistics with grain dimensions decoded to names."""
        engine = self.engine
        if not isinstance(engine, QueryEngine) or engine.router is None:
            return {"enabled": False}
        stats = engine.router.stats()
        names = self.schema.dimensions
        for entry in stats["tables"].values():
            entry["dimensions"] = [names[dim] for dim in entry["dims"]]
        return stats

    # ------------------------------------------------------------------ #
    # Persistence                                                        #
    # ------------------------------------------------------------------ #

    def save(self, path: str, format: str = "v2") -> int:
        """Snapshot the full serving state to ``path``.

        Writes the versioned format of :mod:`repro.storage.snapshot` (schema,
        value dictionaries, closed cells with measure state, configuration);
        returns the snapshot size in bytes.  ``format`` picks the layout:
        ``"v2"`` (default) streams chunked, checksummed frames and persists
        the closure index's posting lists for fast reloads; ``"v1"`` writes
        the original monolithic pickle.  Load with :meth:`load` — both
        formats round-trip.

        Serialised against maintenance: a snapshot taken while an append is
        in flight waits for it, so it always captures a published version.
        """
        from ..storage.snapshot import save_snapshot

        with self._maintenance_lock:
            return save_snapshot(self, path, format=format)

    def save_delta(self, path: str, start_tid: int) -> int:
        """Write the rows appended since ``start_tid`` as a delta segment.

        The incremental counterpart of :meth:`save`: instead of rewriting the
        whole snapshot, persist only the appended column tails plus the
        closed delta cube over them (see
        :func:`repro.storage.snapshot.save_delta_segment`).  Reload with
        ``ServingCube.load(base_path, segments=[...])``.  Only
        exact-maintenance configurations (full closed cubes) can be
        segmented; others raise :class:`~repro.core.errors.SnapshotError`.
        Returns the segment size in bytes.
        """
        from ..storage.snapshot import save_delta_segment

        with self._maintenance_lock:
            return save_delta_segment(self, path, start_tid)

    @classmethod
    def load(cls, path: str, segments: Sequence[str] = ()) -> "ServingCube":
        """Rebuild a serving cube from a :meth:`save` snapshot.

        The returned cube answers every query the saved one answered and
        keeps its maintenance abilities — appending and re-snapshotting a
        loaded cube is the intended warm-restart loop.  The snapshot's format
        version is auto-detected; ``segments`` optionally folds
        :meth:`save_delta` segments (in write order) into the base before the
        engine opens.

        Only load trusted files: the snapshot payload is pickle, so loading
        a crafted file executes arbitrary code (see
        :mod:`repro.storage.snapshot`).
        """
        from ..storage.snapshot import load_snapshot

        return load_snapshot(path, segments=segments)

    # ------------------------------------------------------------------ #
    # Versioned reads                                                     #
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Number of cube versions published so far (0 for the initial build).

        Incremented by every append / refresh publish; under copy-on-publish
        maintenance each answer is attributable to exactly one version (the
        interleaving tests lean on this).
        """
        return self.engine.version

    def read_snapshot(self) -> "CubeView":
        """Pin the currently published cube version for repeated reads.

        Returns a :class:`CubeView` whose queries all answer against the one
        version that was published when this was called, regardless of
        appends landing afterwards — the "repeatable read" the concurrent
        server offers alongside the always-latest :meth:`point` path.

        The pin is only complete under copy-on-publish maintenance (the mode
        every concurrent path uses), where superseded versions are never
        mutated again.  A later *in-place* ``append()`` mutates the shared
        cells under the view, as documented on :class:`CubeView`.
        """
        engine = self.engine
        with engine.lock.read():
            version = engine.version
            if isinstance(engine, QueryEngine):
                frozen: Union[QueryEngine, PartitionedQueryEngine] = QueryEngine(
                    engine.cube, cache_size=0, index=engine.index
                )
            else:
                # Shards are regrouped from the pinned cube: O(cells) per
                # snapshot, the price of repeatable reads on a sharded cube.
                frozen = PartitionedQueryEngine(
                    engine.cube,
                    partition_dim=engine.partition_dim,
                    cache_size=0,
                )
        return CubeView(self, version, frozen)

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    def explain(self, spec: Mapping[str, object]) -> Explanation:
        """Answer a point query and report *how* it was answered.

        The explanation names the materialised closed cell that covered the
        answer (the closure), whether the queried cell was itself
        materialised, and whether the engine's cache already held the answer
        when this call arrived.
        """
        target, unseen = self._target_cell(spec)
        if unseen:
            return Explanation(
                question=self._spec_coordinates(spec),
                answer=self._unseen_answer(spec),
                covering_cell=None,
                direct_hit=False,
                from_cache=False,
                algorithm=self.algorithm,
                plan=self.plan,
            )
        generation = self._decoded.generation
        from_cache = target in self.engine.cache
        answer = self.engine.point(target)
        named = self._decode_answer(answer, generation)
        return Explanation(
            question=named.coordinates,
            answer=named,
            covering_cell=named.closure,
            direct_hit=answer.closure == answer.cell,
            from_cache=from_cache,
            algorithm=self.algorithm,
            plan=self.plan,
        )

    def stats(self) -> Dict[str, object]:
        """Serving statistics of the underlying engine, plus build facts."""
        stats = dict(self.engine.stats())
        stats["algorithm"] = self.algorithm
        stats["materialised_cells"] = len(self.cube)
        stats["fact_rows"] = self.relation.num_tuples
        stats["cache_info"] = self.cache_info()
        from ..incremental.parallel import worker_cache_stats

        merge_cache: Dict[str, object] = dict(self.merge_cache_stats)
        # The in-process view of the worker-resident cache (complete under a
        # thread pool; per-worker under a process pool — see parallel.py).
        merge_cache["worker"] = worker_cache_stats()
        stats["merge_cache"] = merge_cache
        stats["rollups"] = self.rollup_stats()
        if self.build_seconds is not None:
            stats["build_seconds"] = self.build_seconds
        return stats

    def cache_info(self) -> Dict[str, Dict[str, object]]:
        """Hit/miss/eviction/invalidation counters of both serving caches.

        ``"answers"`` is the engine's encoded answer cache, ``"decoded"`` the
        named layer's decoded-answer cache — a straight passthrough of
        :meth:`repro.query.cache.LRUCache.stats` for each, so dashboards can
        watch hit rates and invalidation churn end to end.
        """
        return {
            "answers": self.engine.cache.stats(),
            "decoded": self._decoded.stats(),
        }

    def clear_cache(self) -> None:
        """Drop every cached answer (encoded, slices, and decoded); counters
        survive.

        Called by the maintenance fallbacks (:meth:`refresh`, partition
        refresh) where targeted invalidation has nothing precise to target;
        also useful for benchmarking cold paths.
        """
        self.engine.clear_caches()
        self._decoded.clear()

    def __len__(self) -> int:
        """Number of materialised cells."""
        return len(self.cube)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingCube(dims={list(self.schema.dimensions)}, "
            f"cells={len(self.cube)}, algorithm={self.algorithm!r})"
        )


class CubeView:
    """A pinned read view of one published cube version (repeatable reads).

    Produced by :meth:`ServingCube.read_snapshot`.  Every query on the view
    answers against the cube version that was published at snapshot time:
    under copy-on-publish maintenance superseded versions are immutable, so
    two identical queries on one view always agree, no matter how many
    appends publish in between.  (Under the default *in-place* maintenance
    the view shares live cells with the serving cube and will see them grow —
    pin before switching a cube to concurrent use, not across in-place
    appends.)

    Views are deliberately cache-free: they exist for consistency, not
    throughput, and must not write stale answers into the live caches.
    """

    def __init__(
        self,
        serving: ServingCube,
        version: int,
        engine: Union[QueryEngine, PartitionedQueryEngine],
    ) -> None:
        self._serving = serving
        #: The published version this view pins.
        self.version = version
        self._engine = engine

    def _decode(self, answer: QueryAnswer) -> NamedAnswer:
        serving = self._serving
        return NamedAnswer(
            coordinates=serving._decode_cell(answer.cell),
            count=answer.count,
            measures=answer.measures,
            closure=(
                serving._decode_cell(answer.closure)
                if answer.closure is not None
                else None
            ),
        )

    def point(self, spec: Mapping[str, object]) -> NamedAnswer:
        """:meth:`ServingCube.point`, answered at the pinned version."""
        target, unseen = self._serving._target_cell(spec)
        if unseen:
            return self._serving._unseen_answer(spec)
        return self._decode(self._engine.point(target))

    def slice(
        self,
        fixed: Mapping[str, object],
        group_by: Sequence[str] = (),
    ) -> List[NamedAnswer]:
        """:meth:`ServingCube.slice`, answered at the pinned version."""
        serving = self._serving
        fixed_encoded: Dict[int, int] = {}
        for name, raw in fixed.items():
            dim = serving._dim_index(name)
            code = serving.relation.try_encode(dim, raw)
            if code is None:
                return []
            fixed_encoded[dim] = code
        group_dims = [serving._dim_index(name) for name in group_by]
        answers = self._engine.slice(fixed_encoded, group_dims)
        return [self._decode(answer) for answer in answers]

    def rollup(self, dims: Sequence[str]) -> List[NamedAnswer]:
        """:meth:`ServingCube.rollup`, answered at the pinned version."""
        return self.slice({}, group_by=dims)

    def query_many(self, specs: Iterable[QuerySpec]) -> List[BatchResult]:
        """:meth:`ServingCube.query_many`, answered at the pinned version.

        Same op-spec dispatch (``"point"`` / ``"slice"`` / ``"rollup"``, bare
        mappings as point shorthand), every answer resolved against this
        view's one pinned version — the batch surface follower servers
        (:mod:`repro.replication`) hand their whole dispatch loop to.
        """
        results: List[BatchResult] = []
        for spec in specs:
            op = spec.get("op")
            if op == "point":
                results.append(self.point(spec.get("cell", {})))  # type: ignore[arg-type]
            elif op == "slice":
                results.append(
                    self.slice(
                        spec.get("fixed", {}),  # type: ignore[arg-type]
                        spec.get("group_by", ()),  # type: ignore[arg-type]
                    )
                )
            elif op == "rollup":
                results.append(self.rollup(spec.get("dims", ())))  # type: ignore[arg-type]
            elif op is None or "op" in self._serving._dim_of:
                results.append(self.point(spec))
            else:
                raise QueryError(
                    f"unknown query op {op!r}; expected 'point', 'slice', or "
                    "'rollup' (or a bare {dimension: value} point spec)"
                )
        return results

    def __len__(self) -> int:
        """Materialised cells at the pinned version."""
        return len(self._engine.cube)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CubeView(version={self.version}, cells={len(self)})"
