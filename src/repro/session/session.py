"""The fluent session builder: raw rows in, a :class:`ServingCube` out.

:class:`CubeSession` is the documented entry point of the library.  It owns
the trip from raw, named data to a queryable cube::

    from repro import CubeSession, Sum

    cube = (
        CubeSession.from_rows(rows, schema={"dimensions": ["store", "product"],
                                            "measures": ["price"]})
        .closed(min_sup=2)
        .measures(Sum("price"))
        .using("auto")
        .build()
    )
    cube.point({"store": "nyc"})

The session dictionary-encodes values through :class:`~repro.session.schema.
CubeSchema` / :class:`~repro.core.relation.Relation`, plans the algorithm when
asked to (``using("auto")`` — the default — consults
:mod:`repro.session.planner`), runs the cubing engine, and fronts the result
with the existing serving layer (:class:`~repro.query.engine.QueryEngine`, or
:class:`~repro.query.engine.PartitionedQueryEngine` for ``partitioned()``
sessions).

The builder mutates in place and returns itself from every configuration
call, so chains read top-to-bottom; call :meth:`CubeSession.build` once per
configuration (building again after reconfiguring is fine — each build is a
fresh cube).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from ..algorithms.base import AUTO_ALGORITHM
from ..core.errors import SchemaError
from ..core.measures import MeasureSpec
from ..core.relation import Relation
from ..query.engine import DEFAULT_CACHE_SIZE
from .planner import Plan, plan_algorithm
from .schema import CubeSchema
from .serving import ServingConfig, ServingCube, build_serving_state


class CubeSession:
    """Fluent builder from raw named data to a served (closed) cube."""

    def __init__(self, relation: Relation, schema: Optional[object] = None) -> None:
        self.relation = relation
        self.schema = (
            CubeSchema.coerce(schema)
            if schema is not None
            else CubeSchema.coerce(relation.schema)
        )
        if self.schema.dimensions != relation.schema.dimension_names:
            raise SchemaError(
                f"schema dimensions {list(self.schema.dimensions)} do not match "
                f"the relation's {list(relation.schema.dimension_names)}"
            )
        self._closed = True
        self._min_sup = 1
        self._measures: List[MeasureSpec] = []
        self._algorithm = AUTO_ALGORITHM
        self._dimension_order: object = None
        self._cache_size = DEFAULT_CACHE_SIZE
        self._partitioned = False
        self._partition_dim: Optional[int] = None
        self._rollups: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # Construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(
        cls, rows: Sequence[object], schema: Optional[object] = None
    ) -> "CubeSession":
        """Start a session from raw rows, dictionary-encoding the values.

        ``rows`` may be tuples (dimension values first, then measure values,
        in schema order) or mappings keyed by column name.  ``schema`` is
        anything :meth:`repro.session.schema.CubeSchema.coerce` accepts; when
        omitted, every column of tuple rows is treated as a dimension named
        ``d0, d1, ...`` (mapping rows require an explicit schema).
        """
        if schema is None:
            first = rows[0] if rows else None
            if isinstance(first, Mapping):
                raise SchemaError(
                    "mapping rows need an explicit schema (column order is "
                    "not inferable from a dict)"
                )
            cube_schema = CubeSchema(
                tuple(f"d{index}" for index in range(len(first or ())))
            )
        else:
            cube_schema = CubeSchema.coerce(schema)
        return cls(cube_schema.build_relation(rows), cube_schema)

    @classmethod
    def from_relation(cls, relation: Relation) -> "CubeSession":
        """Start a session over an already-encoded :class:`Relation`."""
        return cls(relation)

    @classmethod
    def from_csv(
        cls,
        path: str,
        schema: object,
        delimiter: str = ",",
    ) -> "CubeSession":
        """Start a session from a CSV file with a header row."""
        cube_schema = CubeSchema.coerce(schema)
        relation = Relation.from_csv(
            path,
            cube_schema.dimensions,
            cube_schema.measures,
            delimiter=delimiter,
        )
        return cls(relation, cube_schema)

    # ------------------------------------------------------------------ #
    # Fluent configuration                                                 #
    # ------------------------------------------------------------------ #

    def closed(self, min_sup: int = 1) -> "CubeSession":
        """Compute a *closed* iceberg cube (the default mode)."""
        self._closed = True
        self._min_sup = int(min_sup)
        return self

    def iceberg(self, min_sup: int = 1) -> "CubeSession":
        """Compute a plain (non-closed) iceberg cube."""
        self._closed = False
        self._min_sup = int(min_sup)
        return self

    def measures(self, *specs: MeasureSpec) -> "CubeSession":
        """Aggregate payload measures alongside ``count``.

        Accepts the session DSL (``Sum("price")``, ``Avg("price")``, ...,
        aliases of the core measure specs); referenced columns must exist in
        the schema's measures.
        """
        for spec in specs:
            if not isinstance(spec, MeasureSpec):
                raise SchemaError(
                    f"{spec!r} is not a measure spec; use Sum/Min/Max/Avg/Count "
                    "from repro.session"
                )
            column = getattr(spec, "column", None)
            if column is not None and column not in self.schema.measures:
                raise SchemaError(
                    f"measure {spec.name!r} references column {column!r}, which "
                    f"is not in the schema's measures "
                    f"{list(self.schema.measures)}"
                )
            self._measures.append(spec)
        return self

    def using(self, algorithm: str) -> "CubeSession":
        """Pick the cubing engine by registry name, or ``"auto"`` to plan it."""
        self._algorithm = algorithm
        return self

    def ordered_by(self, strategy: object) -> "CubeSession":
        """Dimension-ordering strategy for order-sensitive engines
        (``"original"``, ``"cardinality"``, ``"entropy"``, a permutation, or
        a callable — see :mod:`repro.core.ordering`)."""
        self._dimension_order = strategy
        return self

    def cache(self, size: int) -> "CubeSession":
        """Size of the serving engine's LRU answer cache (``0`` disables)."""
        self._cache_size = int(size)
        return self

    def partitioned(self, dimension: Optional[str] = None) -> "CubeSession":
        """Compute and serve partition by partition (Section 6.3 + sharded
        routing).  ``dimension`` names the partitioning dimension; when
        omitted the computer picks the highest-cardinality one."""
        self._partitioned = True
        self._partition_dim = (
            self.schema.dimension_index(dimension) if dimension is not None else None
        )
        return self

    def enable_rollups(
        self,
        budget_bytes: Optional[int] = None,
        top_k: Optional[int] = None,
    ) -> "CubeSession":
        """Serve hot query shapes from adaptive materialized rollups.

        The built cube starts with the workload-aware router installed (see
        :meth:`repro.session.serving.ServingCube.enable_rollups`); the query
        log starts empty, so no tables exist until traffic has flowed and
        ``enable_rollups()`` is called again (or the server's ``advise`` verb
        applies a plan).  Incompatible with :meth:`partitioned`.
        """
        self._rollups = {"budget_bytes": budget_bytes, "top_k": top_k}
        return self

    # ------------------------------------------------------------------ #
    # Build                                                               #
    # ------------------------------------------------------------------ #

    def plan(self) -> Plan:
        """The plan an ``"auto"`` build would follow right now."""
        return plan_algorithm(
            self.relation,
            min_sup=self._min_sup,
            closed=self._closed,
            with_measures=bool(self._measures),
        )

    def build(self) -> ServingCube:
        """Plan (if asked), compute the cube, and open the serving engine.

        Delegates to :func:`repro.session.serving.build_serving_state` — the
        same path :meth:`ServingCube.refresh` rebuilds through, so builds and
        maintenance rebuilds cannot drift.
        """
        config = self._serving_config()
        cube, engine, algorithm, plan, build_seconds, report = build_serving_state(
            self.relation, config
        )
        serving = ServingCube(
            relation=self.relation,
            schema=self.schema,
            cube=cube,
            engine=engine,
            algorithm=algorithm,
            plan=plan,
            build_seconds=build_seconds,
            config=config,
            partition_report=report,
        )
        if self._rollups is not None:
            serving.enable_rollups(
                budget_bytes=self._rollups["budget_bytes"],
                top_k=self._rollups["top_k"],
            )
        return serving

    def build_into(self, catalog: object, name: str) -> ServingCube:
        """Build and register the cube in a :class:`~repro.catalog.CubeCatalog`.

        The attachment point between the fluent builder and the multi-cube
        serving layer: equivalent to ``catalog.create(name, self)``, so the
        session's full configuration (min_sup, measures, algorithm choice,
        partitioning) travels into the catalog and the first snapshot is
        written immediately.  Returns the registered :class:`ServingCube`.
        """
        return catalog.create(name, self)  # type: ignore[attr-defined]

    def refresh(self) -> ServingCube:
        """Build a fresh serving cube over the session's *current* relation.

        The session and every cube it built share one relation object, so
        after :meth:`ServingCube.append` has grown the data this returns a
        from-scratch rebuild over the grown relation — the cold counterpart
        the incremental path is benchmarked against, and the way to pick up
        reconfiguration (different ``min_sup``, measures, ...) over data that
        has already grown in place.
        """
        return self.build()

    def _serving_config(self) -> ServingConfig:
        return ServingConfig(
            min_sup=self._min_sup,
            closed=self._closed,
            measures=tuple(self._measures),
            algorithm=self._algorithm,
            cache_size=self._cache_size,
            dimension_order=self._dimension_order,
            partitioned=self._partitioned,
            partition_dim=self._partition_dim,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = f"closed(min_sup={self._min_sup})" if self._closed else (
            f"iceberg(min_sup={self._min_sup})"
        )
        return (
            f"CubeSession(dims={list(self.schema.dimensions)}, "
            f"tuples={self.relation.num_tuples}, {mode}, "
            f"using={self._algorithm!r})"
        )
