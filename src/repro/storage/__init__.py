"""Storage layer: partitioned computation, cube snapshots, catalog manifests.

* :mod:`repro.storage.partition` — external-memory style partition-by-
  partition (re)computation, including per-partition incremental refresh
  (optionally fanned out over a process pool);
* :mod:`repro.storage.snapshot` — the versioned on-disk snapshot format that
  lets a serving cube survive process restarts
  (:meth:`repro.session.serving.ServingCube.save` / ``load``);
* :mod:`repro.storage.manifest` — the JSON table of contents of a
  :class:`~repro.catalog.CubeCatalog` directory (per-cube snapshot and
  append-stream naming, atomic rewrite);
* :mod:`repro.storage.locks` — the per-directory cross-process mutex
  (``catalog.lock``) serialising every manifest load–mutate–save, shared by
  the catalog's chain flips and the replication tier's lease transitions.
"""

from .locks import LOCK_STALE_SECONDS, MANIFEST_LOCK_NAME, ManifestLock
from .manifest import (
    CUBE_NAME_PATTERN,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    CatalogManifest,
    CubeEntry,
    appends_filename,
    segment_filename,
    snapshot_filename,
    validate_cube_name,
)
from .partition import PartitionReport, PartitionedCubeComputer
from .snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_V1,
    SNAPSHOT_V2,
    SNAPSHOT_VERSION,
    load_snapshot,
    save_delta_segment,
    save_snapshot,
    snapshot_version,
)

__all__ = [
    "PartitionReport",
    "PartitionedCubeComputer",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_V1",
    "SNAPSHOT_V2",
    "SNAPSHOT_VERSION",
    "load_snapshot",
    "save_delta_segment",
    "save_snapshot",
    "snapshot_version",
    "CatalogManifest",
    "CubeEntry",
    "CUBE_NAME_PATTERN",
    "LOCK_STALE_SECONDS",
    "MANIFEST_LOCK_NAME",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "ManifestLock",
    "appends_filename",
    "segment_filename",
    "snapshot_filename",
    "validate_cube_name",
]
