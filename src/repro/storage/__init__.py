"""Storage layer: partitioned computation (Section 6.3) and cube snapshots.

* :mod:`repro.storage.partition` — external-memory style partition-by-
  partition (re)computation, including per-partition incremental refresh;
* :mod:`repro.storage.snapshot` — the versioned on-disk snapshot format that
  lets a serving cube survive process restarts
  (:meth:`repro.session.serving.ServingCube.save` / ``load``).
"""

from .partition import PartitionReport, PartitionedCubeComputer
from .snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    load_snapshot,
    save_snapshot,
)

__all__ = [
    "PartitionReport",
    "PartitionedCubeComputer",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "load_snapshot",
    "save_snapshot",
]
