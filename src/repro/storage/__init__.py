"""External / partitioned computation support (Section 6.3)."""

from .partition import PartitionReport, PartitionedCubeComputer

__all__ = ["PartitionReport", "PartitionedCubeComputer"]
