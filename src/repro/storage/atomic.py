"""The one place durable files are written: same-directory temp + rename.

Every durable artifact in the storage/catalog layer — snapshots, delta
segments, the manifest, journal rewrites — reaches disk through this
module.  The protocol is the classic one: write the full content into a
temporary file *in the same directory* (so the final ``os.replace`` is a
same-filesystem rename, which POSIX makes atomic), then swap it over the
final name.  A crash at any instant leaves either the old file or the new
file under the final name — never a half-written hybrid — plus at worst an
unreferenced ``.tmp`` orphan.

``repro.lint`` rule RL005 enforces the funnel: a bare ``open(path, "w")``
anywhere else under ``repro/storage/`` or ``repro/catalog/`` is a finding,
and this module is the single allow-listed home of the raw pattern.
"""

from __future__ import annotations

import os
import tempfile
from typing import BinaryIO, Callable, IO, Union


def atomic_write(
    path: str,
    write_body: Callable[[BinaryIO], None],
    prefix: str = ".atomic-",
) -> int:
    """Stream ``write_body`` into ``path`` atomically; returns the file size.

    The callback receives the open *binary* temp-file stream; on any
    exception the temp file is removed and nothing under ``path`` changes.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle, tmp_path = tempfile.mkstemp(prefix=prefix, suffix=".tmp", dir=directory)
    try:
        with os.fdopen(handle, "wb") as stream:
            write_body(stream)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    return os.path.getsize(path)


def atomic_write_bytes(path: str, payload: bytes, prefix: str = ".atomic-") -> int:
    """Replace ``path``'s content with ``payload`` atomically."""
    return atomic_write(path, lambda stream: stream.write(payload), prefix=prefix)


def atomic_write_text(
    path: str, text: str, prefix: str = ".atomic-", encoding: str = "utf-8"
) -> int:
    """Replace ``path``'s content with ``text`` atomically."""
    return atomic_write_bytes(path, text.encode(encoding), prefix=prefix)


def truncate(path: str, create: bool = True) -> None:
    """Empty ``path`` (creating it when ``create``).

    Truncation needs no temp file: the target state *is* the empty file, and
    ``open(..., "w")`` reaches it in one step — there is no intermediate
    content a crash could expose.  Callers outside this module still route
    through here so RL005 keeps a single funnel to audit.
    """
    if not create and not os.path.exists(path):
        return
    open(path, "w").close()


def replace_lines(path: str, lines: Union[list, tuple]) -> int:
    """Atomically rewrite a line-oriented file (e.g. an append journal).

    Used by the catalog to retract a journaled batch whose merge failed: the
    journal must drop exactly one record while *preserving* records other
    writers appended meanwhile, and a crash mid-rewrite must never corrupt
    the middle of the stream (the journal loader tolerates one torn tail
    line, not a torn middle).
    """
    return atomic_write_text(path, "".join(lines), prefix=".journal-")


# Typing alias kept for callers that annotate the callback they pass in.
WriteBody = Callable[[IO[bytes]], None]
