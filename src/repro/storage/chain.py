"""Chain positions: where a reader stands in a cube's snapshot/journal chain.

A cube's durable state is a *chain*: one base snapshot (numbered by
``generation``), zero or more delta segments stacked on it, and the append
journal's un-folded tail.  The catalog walks the whole chain on every load;
the replication tailer (:mod:`repro.replication.tailer`) instead keeps a
**cursor** — a :class:`ChainPosition` — and advances it incrementally, so a
follower that already folded the chain up to some byte replays only what
landed after it.

Two pieces live here because both the catalog and the tailer need them:

* :class:`ChainPosition` — the serialisable cursor: which chain identity
  (generation + segment list) the reader has folded, and how many journal
  bytes past it.  Identity comparison is how the tailer detects that a
  compaction rewrote the chain underneath it.
* :func:`read_journal_tail` — the one journal-tail reader.  It returns the
  decoded batches *and* the byte offset it safely consumed, tolerating
  exactly one torn **tail** line (the expected crash artefact of an
  interrupted append) by not advancing past it — the next read retries the
  line once the writer completes it.  A torn line in the *middle* of the
  window is corruption and raises.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.errors import CatalogError

__all__ = ["ChainPosition", "read_journal_tail"]


@dataclass
class ChainPosition:
    """A reader's cursor into one cube's snapshot/segment/journal chain.

    ``generation`` + ``segments`` name the chain *identity* the reader has
    folded into its in-memory state; ``journal_offset`` is the byte position
    in the append journal up to which batches are applied on top of that
    identity.  ``rows`` counts the fact rows the reader has applied in total
    — the tailer compares it against the manifest's durable row count to
    decide whether a compaction folded rows it never saw (in which case the
    cursor cannot be advanced and the reader must re-bootstrap).
    """

    generation: int = 0
    segments: Tuple[str, ...] = field(default_factory=tuple)
    journal_offset: int = 0
    rows: int = 0

    def same_chain(self, generation: int, segments: Tuple[str, ...]) -> bool:
        """Whether ``generation``/``segments`` still name this cursor's chain."""
        return self.generation == generation and tuple(self.segments) == tuple(
            segments
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "segments": list(self.segments),
            "journal_offset": self.journal_offset,
            "rows": self.rows,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ChainPosition":
        try:
            return cls(
                generation=int(raw["generation"]),  # type: ignore[arg-type]
                segments=tuple(raw.get("segments", ())),  # type: ignore[arg-type]
                journal_offset=int(raw["journal_offset"]),  # type: ignore[arg-type]
                rows=int(raw.get("rows", 0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CatalogError(f"corrupt chain cursor: {raw!r} ({exc})") from exc


def read_journal_tail(
    path: str, offset: int
) -> Tuple[List[List[object]], int]:
    """Read the journal's record batches from ``offset``; returns
    ``(batches, consumed_offset)``.

    ``consumed_offset`` is the byte position after the last *complete*
    record: a torn final line (an append interrupted mid-write) is not
    consumed, so a cursor advanced to the returned offset re-reads that line
    on the next call and picks the record up once its writer finishes.  An
    unparsable line anywhere before the tail raises
    :class:`~repro.core.errors.CatalogError` — the journal loader's contract
    is one torn *tail* line, never a torn middle.  A missing file, or an
    ``offset`` at or past the file's end (the post-truncation state), reads
    as an empty tail.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path) as stream:
        stream.seek(0, os.SEEK_END)
        size = stream.tell()
        position = min(offset, size)
        stream.seek(position)
        lines = stream.readlines()
    batches: List[List[object]] = []
    consumed = position
    for index, line in enumerate(lines):
        if not line.strip():
            consumed += len(line.encode("utf-8"))
            continue
        try:
            record = json.loads(line)
            rows = record["rows"]
        except (ValueError, KeyError, TypeError) as exc:
            if index == len(lines) - 1:
                break  # torn tail: leave it un-consumed for the next read
            raise CatalogError(
                f"corrupt append stream {path!r} at byte {consumed}: {exc}"
            ) from exc
        batches.append(rows)
        consumed += len(line.encode("utf-8"))
    return batches, consumed
