"""Cross-process mutual exclusion for catalog manifest writers.

Two kinds of process rewrite ``catalog.json``: lease transitions
(:mod:`repro.replication.lease` — acquire/renew/release, possibly from a
process that is not the leader) and the leader catalog's own manifest saves
(:meth:`repro.catalog.CubeCatalog` chain flips: compaction, snapshot, drop).
Both perform a load–mutate–save cycle, and the two writers touch *different*
fields of the same entries — so an unserialised interleaving silently rolls
one writer's fields back to what the other loaded.  The dangerous direction
is the lease: a chain flip that loads the manifest just before a takeover
saves, then saves itself, re-publishes the *old* ``leader_id``/``epoch`` —
inverting the fence exactly during failover (the deposed leader passes the
append-path check while the legitimate one is rejected).

:class:`ManifestLock` closes that window: one ``O_EXCL`` lock file per
catalog directory (``catalog.lock``), taken around every manifest
load–mutate–save by both writers.  Creating the file is the mutex acquire,
unlinking it the release.  Creating an empty flag file needs no
write-content atomicity, so this deliberately sits outside the
:mod:`repro.storage.atomic` funnel (which exists to prevent *partial
content*, a failure mode a zero-byte flag cannot have).

A lock file older than :data:`LOCK_STALE_SECONDS` is the debris of a
crashed critical section and is broken — by an atomic rename to a unique
debris name whose identity is then verified against the pre-rename stat,
never by a blind unlink.  Rename is exclusive (exactly one breaker captures
the file), and the verification catches the race where the stale file was
released and a *fresh* lock created between the breaker's stat and its
rename: a captured fresh lock is re-linked into place instead of destroyed,
so a live holder's mutex is never pulled out from under it.
"""

from __future__ import annotations

import os
import threading
import time

from ..core.errors import CatalogError

__all__ = ["LOCK_STALE_SECONDS", "MANIFEST_LOCK_NAME", "ManifestLock"]

#: Lock file name inside a catalog directory.
MANIFEST_LOCK_NAME = "catalog.lock"

#: A lock file older than this is considered the debris of a crashed
#: critical section and is broken.  Holders keep the lock for one manifest
#: load + save — milliseconds — so thirty seconds is orders of magnitude
#: past any live critical section.
LOCK_STALE_SECONDS = 30.0


class ManifestLock:
    """Per-directory cross-process mutex over ``catalog.json`` writes.

    Usage is ``with ManifestLock(directory): load / mutate / save``.  The
    acquire spins (5 ms backoff) until the ``O_CREAT | O_EXCL`` create
    succeeds, breaking stale debris along the way, and raises
    :class:`~repro.core.errors.CatalogError` after :data:`LOCK_STALE_SECONDS`
    of continuous contention — by then the holder is either live and wedged
    (give up, do not steal) or crashed (and would have been broken).
    """

    def __init__(self, directory: str) -> None:
        self.path = os.path.join(directory, MANIFEST_LOCK_NAME)

    def __enter__(self) -> "ManifestLock":
        deadline = time.time() + LOCK_STALE_SECONDS
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._break_if_stale()
                if time.time() > deadline:
                    raise CatalogError(
                        f"manifest lock {self.path!r} held for over "
                        f"{LOCK_STALE_SECONDS}s; giving up"
                    ) from None
                time.sleep(0.005)
                continue
            os.close(fd)
            return self

    def __exit__(self, *exc_info: object) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:  # pragma: no cover - already broken
            pass

    def _break_if_stale(self) -> None:
        try:
            stale = os.stat(self.path)
        except OSError:
            return  # released between our open() and stat(): retry the open
        if time.time() - stale.st_mtime <= LOCK_STALE_SECONDS:
            return
        # A blind unlink after the stat would race: another process may
        # break the stale file AND a third may create a fresh lock before
        # our unlink runs, which would then destroy the live holder's
        # mutex.  Rename is atomic and exclusive — exactly one breaker
        # captures the file — and the capture is verified by identity
        # before the debris is discarded.
        debris = f"{self.path}.stale.{os.getpid()}.{threading.get_ident()}"
        try:
            os.rename(self.path, debris)
        except OSError:
            return  # someone else released or broke it first
        try:
            captured = os.stat(debris)
        except OSError:  # pragma: no cover - debris swept externally
            return
        identity = (stale.st_ino, stale.st_dev, stale.st_mtime_ns)
        # The mtime participates in the identity check because inode
        # numbers are recycled: an unlink-then-create can hand a fresh lock
        # the stale file's inode, and a lock file is written exactly once,
        # so its mtime is its birth certificate.
        if (captured.st_ino, captured.st_dev, captured.st_mtime_ns) == identity:
            os.unlink(debris)  # verified: the very file we stat()ed as stale
            return
        # We captured a lock created *after* our stat — a live one.  Put it
        # back; link (not rename) so an even newer lock, created since our
        # rename, is never clobbered.  If the link fails because one exists,
        # the displaced holder re-enters contention on its next operation.
        try:
            os.link(debris, self.path)
        except OSError:  # pragma: no cover - newer lock already in place
            pass
        os.unlink(debris)
