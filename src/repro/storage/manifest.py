"""The catalog manifest: the on-disk table of contents of a cube catalog.

A :class:`~repro.catalog.CubeCatalog` directory holds one ``catalog.json``
manifest plus, per registered cube, a snapshot file (the v1 format of
:mod:`repro.storage.snapshot`) and an optional append-stream file (a
line-JSON journal of the batches appended since the snapshot was written —
replayed on load, truncated on save).  The manifest maps cube names to those
files and carries light metadata (row/cell counts, algorithm, timestamps) so
``list``-style operations never have to open a snapshot.

The manifest is JSON, not pickle: it must be inspectable with one ``cat``
and writable by other tooling.  Writes go through the same same-directory
temporary file + atomic rename protocol as snapshots, so a catalog directory
never holds a half-written manifest.  File names are derived from validated
cube names (see :data:`CUBE_NAME_PATTERN`), never from arbitrary input.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..core.errors import CatalogError
from .atomic import atomic_write_text

#: Manifest file name inside a catalog directory.
MANIFEST_NAME = "catalog.json"
#: Current manifest format version (independent of the snapshot version).
MANIFEST_VERSION = 1
#: Legal cube names: path-safe, no leading dot/dash, at most 128 chars.
CUBE_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9._-]{0,127}\Z")


def validate_cube_name(name: str) -> str:
    """Return ``name`` if it is a legal cube name, raise otherwise."""
    if not isinstance(name, str) or not CUBE_NAME_PATTERN.match(name):
        raise CatalogError(
            f"invalid cube name {name!r}: use letters, digits, '.', '_' or "
            "'-' (not starting with '.' or '-'), at most 128 characters"
        )
    return name


def snapshot_filename(name: str, generation: int = 0) -> str:
    """Per-cube snapshot file name inside the catalog directory.

    Generation 0 keeps the original flat name; later generations carry a
    ``.g<N>`` infix.  A new generation is minted whenever a full rewrite must
    supersede a base that still has delta segments or journal bytes stacked
    on it: the fresh file lands under a name the manifest does not reference
    yet, so the switch is a single atomic manifest flip and a crash in
    between leaves the old chain fully intact (see
    :meth:`repro.catalog.CubeCatalog.compact`).
    """
    validate_cube_name(name)
    if generation:
        return f"{name}.g{int(generation)}.cube"
    return f"{name}.cube"


def segment_filename(name: str, generation: int, index: int) -> str:
    """Delta-segment file name: tied to its base snapshot's generation."""
    return f"{validate_cube_name(name)}.g{int(generation)}.seg{int(index)}.cube"


def appends_filename(name: str) -> str:
    """Per-cube append-stream file name inside the catalog directory."""
    return f"{validate_cube_name(name)}.appends.jsonl"


@dataclass
class CubeEntry:
    """One cube's row in the manifest.

    ``rows`` / ``cells`` describe the *durable* state — what the snapshot
    plus its delta ``segments`` cover, not counting journaled-but-unfolded
    appends.  ``journal_offset`` is the byte position in the append stream up
    to which batches are already folded into that durable state; a loader
    replays only the bytes past it.  ``generation`` numbers full-snapshot
    rewrites (see :func:`snapshot_filename`), and ``format`` records the
    snapshot's on-disk format version name (``"v1"`` for entries written
    before the streaming format existed).

    The lease triple — ``leader_id`` / ``leader_epoch`` / ``lease_expires_at``
    — makes the manifest the coordination point of the replicated tier
    (:mod:`repro.replication`): at most one writer process holds the cube's
    lease at a time, the epoch counts lease acquisitions monotonically (it
    never resets, so a superseded leader's writes are *fenced* by epoch
    comparison), and ``lease_expires_at`` is the wall-clock instant after
    which the lease may be taken over.  Entries written before the
    replication tier default to "no lease ever held".
    """

    snapshot: str
    appends: str
    created_at: float
    saved_at: Optional[float] = None
    rows: int = 0
    cells: int = 0
    algorithm: str = ""
    dimensions: tuple = ()
    format: str = "v1"
    generation: int = 0
    segments: tuple = ()
    journal_offset: int = 0
    leader_id: str = ""
    leader_epoch: int = 0
    lease_expires_at: float = 0.0

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "CubeEntry":
        try:
            return cls(
                snapshot=str(raw["snapshot"]),
                appends=str(raw["appends"]),
                created_at=float(raw["created_at"]),  # type: ignore[arg-type]
                saved_at=(
                    None if raw.get("saved_at") is None
                    else float(raw["saved_at"])  # type: ignore[arg-type]
                ),
                rows=int(raw.get("rows", 0)),  # type: ignore[arg-type]
                cells=int(raw.get("cells", 0)),  # type: ignore[arg-type]
                algorithm=str(raw.get("algorithm", "")),
                dimensions=tuple(raw.get("dimensions", ())),  # type: ignore[arg-type]
                format=str(raw.get("format", "v1")),
                generation=int(raw.get("generation", 0)),  # type: ignore[arg-type]
                segments=tuple(raw.get("segments", ())),  # type: ignore[arg-type]
                journal_offset=int(raw.get("journal_offset", 0)),  # type: ignore[arg-type]
                leader_id=str(raw.get("leader_id", "")),
                leader_epoch=int(raw.get("leader_epoch", 0)),  # type: ignore[arg-type]
                lease_expires_at=float(raw.get("lease_expires_at", 0.0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CatalogError(f"corrupt manifest entry: {raw!r} ({exc})") from exc


@dataclass
class CatalogManifest:
    """In-memory form of ``catalog.json``; load/save are atomic."""

    entries: Dict[str, CubeEntry] = field(default_factory=dict)

    @classmethod
    def path_in(cls, directory: str) -> str:
        return os.path.join(directory, MANIFEST_NAME)

    @classmethod
    def load(cls, directory: str) -> "CatalogManifest":
        """Read a directory's manifest; a missing file is an empty catalog."""
        path = cls.path_in(directory)
        if not os.path.exists(path):
            return cls()
        try:
            with open(path) as handle:
                raw = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CatalogError(f"cannot read catalog manifest {path!r}: {exc}") from exc
        if not isinstance(raw, dict) or "cubes" not in raw:
            raise CatalogError(f"{path!r} is not a catalog manifest")
        version = raw.get("version")
        if version != MANIFEST_VERSION:
            raise CatalogError(
                f"{path!r} uses manifest version {version!r}; this build "
                f"reads version {MANIFEST_VERSION}"
            )
        entries = {
            validate_cube_name(name): CubeEntry.from_dict(entry)
            for name, entry in raw["cubes"].items()
        }
        return cls(entries)

    def save(self, directory: str) -> None:
        """Atomically (re)write the manifest into ``directory``."""
        cubes: Dict[str, Dict[str, object]] = {}
        for name, entry in self.entries.items():
            raw = asdict(entry)
            raw["dimensions"] = list(entry.dimensions)
            raw["segments"] = list(entry.segments)
            cubes[name] = raw
        payload: Dict[str, object] = {
            "version": MANIFEST_VERSION,
            "cubes": cubes,
        }
        path = self.path_in(directory)
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        atomic_write_text(path, text, prefix=".catalog-")
