"""Partitioned (external-memory style) closed cube computation (Section 6.3).

The paper's answer to "what if the data does not fit in memory" follows
Star-Cubing's strategy: scan the base table once, split it into per-value
partitions on one dimension, spill each partition to disk, and compute the
partitions one at a time, reusing the memory between them.

Cells that *fix* the partitioning dimension only see tuples of one partition,
so they are computed exactly by cubing each partition with the partitioning
dimension's value as context.  Cells with ``*`` on the partitioning dimension
need all partitions; they are computed in a final pass over the (projected)
data with the partitioning dimension declared *initially collapsed*, which
keeps the closedness semantics exact — a cell with ``*`` on the partitioning
dimension is still non-closed when every one of its tuples shares the same
value there, and the collapsed-dimension pass sees that because closedness is
always evaluated against original tuple values.

The driver works with any registered closed-cubing algorithm and reports how
many partitions were spilled and the largest partition held in memory, which
is what the memory-budget benchmark (E-6.3) tracks.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import CubingOptions, get_algorithm
from ..core.cube import CubeResult
from ..core.errors import PartitionError
from ..core.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Executor


@dataclass
class PartitionReport:
    """Bookkeeping returned alongside the cube by the partitioned driver."""

    partition_dim: int
    num_partitions: int
    largest_partition: int
    spilled_files: int
    spill_bytes: int
    partition_sizes: Dict[int, int] = field(default_factory=dict)
    #: Partition values recomputed by an incremental :meth:`PartitionedCube
    #: Computer.refresh` (``None`` for a from-scratch :meth:`compute`).
    refreshed_partitions: Optional[Tuple[int, ...]] = None


class PartitionedCubeComputer:
    """Compute a closed (or plain) iceberg cube partition by partition.

    Parameters
    ----------
    algorithm:
        Registry name of the in-memory engine used per partition.
    min_sup, closed:
        Usual cubing options, applied globally (a partition is still cubed
        when it is smaller than ``min_sup`` times — its cells simply fail the
        iceberg test, exactly as they would in memory).
    memory_budget_tuples:
        Soft limit on the tuples held in memory at once; partitions are
        spilled to temporary files when the whole relation exceeds it.  This
        models the paper's "compute the partitions one by one" loop — the
        relation itself obviously is in memory in this reproduction, so the
        budget only drives the spill/report behaviour.
    dimension_order:
        Ordering strategy forwarded to the per-partition engine (named
        strategies re-resolve against each partition's data).
    """

    def __init__(
        self,
        algorithm: str = "c-cubing-star",
        min_sup: int = 1,
        closed: bool = True,
        memory_budget_tuples: Optional[int] = None,
        spill_dir: Optional[str] = None,
        dimension_order: object = None,
    ) -> None:
        self.algorithm = algorithm
        self.min_sup = min_sup
        self.closed = closed
        self.memory_budget_tuples = memory_budget_tuples
        self.spill_dir = spill_dir
        self.dimension_order = dimension_order

    # ------------------------------------------------------------------ #

    def choose_partition_dimension(self, relation: Relation) -> int:
        """Pick the partitioning dimension: the one with the most distinct values.

        More distinct values give smaller partitions, which is what an
        external computation wants.
        """
        cards = relation.cardinalities()
        return max(range(relation.num_dimensions), key=lambda dim: (cards[dim], -dim))

    def compute(
        self, relation: Relation, partition_dim: Optional[int] = None
    ) -> Tuple[CubeResult, PartitionReport]:
        """Compute the cube of ``relation`` partition by partition."""
        if relation.num_dimensions < 2:
            raise PartitionError(
                "partitioned computation needs at least two dimensions "
                "(one to partition on, one to cube)"
            )
        if partition_dim is None:
            partition_dim = self.choose_partition_dimension(relation)
        if not 0 <= partition_dim < relation.num_dimensions:
            raise PartitionError(f"invalid partition dimension {partition_dim}")

        partitions = self._split(relation, partition_dim)
        spill_files, spill_bytes = self._maybe_spill(relation, partitions)

        merged = CubeResult(relation.num_dimensions, name=f"partitioned-{self.algorithm}")

        # Pass 1: cells fixing the partitioning dimension, one partition at a time.
        for _value, tids in partitions.items():
            part_relation = relation.select(tids)
            cube = self._run(part_relation, initial_collapsed=())
            for cell, stats in cube.items():
                if cell[partition_dim] is None:
                    # Cells with * on the partition dimension are handled by
                    # pass 2 over the whole relation; emitting them here would
                    # both duplicate and miscount.
                    continue
                merged.add(cell, stats.count, stats.measures, stats.rep_tid)

        # Pass 2: cells with * on the partitioning dimension.
        collapsed_cube = self._run(relation, initial_collapsed=(partition_dim,))
        for cell, stats in collapsed_cube.items():
            merged.add(cell, stats.count, stats.measures, stats.rep_tid)

        report = PartitionReport(
            partition_dim=partition_dim,
            num_partitions=len(partitions),
            largest_partition=max((len(t) for t in partitions.values()), default=0),
            spilled_files=spill_files,
            spill_bytes=spill_bytes,
            partition_sizes={value: len(tids) for value, tids in partitions.items()},
        )
        return merged, report

    def refresh(
        self,
        relation: Relation,
        previous_cube: CubeResult,
        partition_dim: int,
        start_tid: int,
        executor: Optional["Executor"] = None,
    ) -> Tuple[CubeResult, PartitionReport]:
        """Recompute only the partitions appended tuples touched.

        ``relation`` is the grown fact table, ``previous_cube`` the cube this
        computer (with the same configuration) produced before the rows at
        ``start_tid..`` were appended.  Cells that *fix* the partitioning
        dimension only depend on their own partition's tuples, so pass 1 is
        rerun only for the partition values appearing among the appended
        tuples; cells of untouched partitions are carried over verbatim.
        Cells with ``*`` on the partitioning dimension aggregate across all
        partitions and are recomputed by the usual collapsed pass.

        ``executor`` fans the recomputes out as one
        :class:`~repro.incremental.parallel.CubingTask` per touched partition
        plus one for the collapsed pass — the partition boundaries are the
        natural work units — and merges the results back on the calling
        thread.  With a process pool the refresh runs genuinely in parallel
        with serving; the ``dimension_order`` must then be plain data (see
        :func:`repro.incremental.parallel.picklable_order`).

        Returns the refreshed cube and a report whose
        :attr:`PartitionReport.refreshed_partitions` lists the recomputed
        partition values.
        """
        if not 0 <= partition_dim < relation.num_dimensions:
            raise PartitionError(f"invalid partition dimension {partition_dim}")
        if not 0 <= start_tid <= relation.num_tuples:
            raise PartitionError(
                f"refresh start tid {start_tid} outside 0..{relation.num_tuples}"
            )
        column = relation.columns[partition_dim]
        changed = sorted(
            {column[tid] for tid in range(start_tid, relation.num_tuples)}
        )
        partitions = self._split(relation, partition_dim)
        # Only the rewritten partitions spill: the others' files would be
        # byte-identical to the previous run's.
        spill_files, spill_bytes = self._maybe_spill(
            relation, {value: partitions[value] for value in changed}
        )

        merged = CubeResult(
            relation.num_dimensions, name=f"partitioned-{self.algorithm}"
        )
        changed_set = set(changed)
        partition_cubes, collapsed_cube = self._run_refresh_passes(
            relation, partitions, changed, partition_dim, executor
        )
        for part_cube in partition_cubes:
            for cell, stats in part_cube.items():
                if cell[partition_dim] is None:
                    continue  # collapsed pass below owns the *-cells
                merged.add(cell, stats.count, stats.measures, stats.rep_tid)
        for cell, stats in previous_cube.items():
            value = cell[partition_dim]
            if value is None or value in changed_set:
                continue
            merged.add(cell, stats.count, stats.measures, stats.rep_tid)

        for cell, stats in collapsed_cube.items():
            merged.add(cell, stats.count, stats.measures, stats.rep_tid)

        report = PartitionReport(
            partition_dim=partition_dim,
            num_partitions=len(partitions),
            largest_partition=max((len(t) for t in partitions.values()), default=0),
            spilled_files=spill_files,
            spill_bytes=spill_bytes,
            partition_sizes={value: len(tids) for value, tids in partitions.items()},
            refreshed_partitions=tuple(changed),
        )
        return merged, report

    # ------------------------------------------------------------------ #

    def _run_refresh_passes(
        self,
        relation: Relation,
        partitions: Dict[int, List[int]],
        changed: List[int],
        partition_dim: int,
        executor: Optional["Executor"],
    ) -> Tuple[List[CubeResult], CubeResult]:
        """Run the touched-partition passes and the collapsed pass.

        Sequential in process by default; with ``executor``, every pass is a
        separate picklable task and the calling thread only gathers.
        """
        if executor is None:
            partition_cubes = [
                self._run(relation.select(partitions[value]), ())
                for value in changed
            ]
            return partition_cubes, self._run(
                relation, initial_collapsed=(partition_dim,)
            )

        from ..incremental.parallel import (
            CubingTask,
            rebuild_cube,
            run_cubing_task,
        )

        def task_for(sub_relation: Relation, collapsed: Tuple[int, ...]) -> CubingTask:
            return CubingTask(
                relation=sub_relation,
                algorithm=self.algorithm,
                min_sup=self.min_sup,
                closed=self.closed,
                dimension_order=self.dimension_order,
                initial_collapsed=collapsed,
            )

        futures = [
            executor.submit(
                run_cubing_task, task_for(relation.select(partitions[value]), ())
            )
            for value in changed
        ]
        collapsed_future = executor.submit(
            run_cubing_task, task_for(relation, (partition_dim,))
        )
        partition_cubes = [
            rebuild_cube(future.result().cells, relation.num_dimensions)
            for future in futures
        ]
        collapsed_cube = rebuild_cube(
            collapsed_future.result().cells, relation.num_dimensions
        )
        return partition_cubes, collapsed_cube

    def _run(self, relation: Relation, initial_collapsed: Sequence[int]) -> CubeResult:
        options = CubingOptions(
            min_sup=self.min_sup,
            closed=self.closed,
            dimension_order=self.dimension_order,
            initial_collapsed=tuple(initial_collapsed),
        )
        return get_algorithm(self.algorithm, options).run(relation).cube

    @staticmethod
    def _split(relation: Relation, partition_dim: int) -> Dict[int, List[int]]:
        column = relation.columns[partition_dim]
        partitions: Dict[int, List[int]] = {}
        for tid, value in enumerate(column):
            partitions.setdefault(value, []).append(tid)
        return partitions

    def _maybe_spill(
        self, relation: Relation, partitions: Dict[int, List[int]]
    ) -> Tuple[int, int]:
        """Write partitions to temporary files when the memory budget is exceeded.

        Files are context-managed and written with the highest pickle
        protocol; on any failure every file written so far (including the
        partially written one) is removed before the error propagates, so an
        aborted spill never leaks temporary files.
        """
        budget = self.memory_budget_tuples
        if budget is None or relation.num_tuples <= budget:
            return 0, 0
        spill_dir = self.spill_dir or tempfile.mkdtemp(prefix="repro-partitions-")
        os.makedirs(spill_dir, exist_ok=True)
        total_bytes = 0
        written: List[str] = []
        try:
            for value, tids in partitions.items():
                rows = [relation.row(tid) for tid in tids]
                path = os.path.join(spill_dir, f"partition-{value}.pkl")
                written.append(path)
                # Spill files are transient scratch (re-created on every
                # spill, never read across a crash), so the durability
                # funnel does not apply.
                with open(path, "wb") as handle:  # repro-lint: disable=RL005
                    pickle.dump(rows, handle, protocol=pickle.HIGHEST_PROTOCOL)
                total_bytes += os.path.getsize(path)
        except BaseException:
            for path in written:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            raise
        return len(written), total_bytes
