"""Versioned cube snapshots: a serving cube that survives process restarts.

A snapshot persists everything a :class:`~repro.session.serving.ServingCube`
needs to answer queries again without recomputing: the named schema, the
relation's encoded columns *and value dictionaries* (so future appends keep
growing the same append-only encoding), the materialised closed cells with
their counts / payload-measure values / representative tuple ids (the state
incremental merge reconstructs closedness from), and the serving
configuration (algorithm, iceberg threshold, measure specs, cache size,
partitioning).  Indexes and caches are deliberately *not* stored — they are
derived state, rebuilt on load.

On-disk format::

    8 bytes   magic  b"RPROCUBE"
    4 bytes   format version, big-endian unsigned
    payload   pickle (highest protocol) of the snapshot dictionary

The magic and the explicit version make failure modes crisp: a non-snapshot
file or a snapshot from an incompatible future version raises
:class:`~repro.core.errors.SnapshotError` instead of a pickle stack trace.
Writes go through a same-directory temporary file followed by an atomic
rename, so readers never observe a half-written snapshot.

.. warning::
   The payload is **pickle** (raw dimension values and measure specs are
   arbitrary Python objects, which pickle is the only stdlib codec for).
   Unpickling executes code embedded in the stream, and the magic/version
   header authenticates nothing — only load snapshots you (or a process you
   trust) wrote.  Treat snapshot files like you treat pickle files, because
   that is what they are.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
from typing import TYPE_CHECKING, Dict

from ..core.cube import CubeResult
from ..core.errors import SnapshotError
from ..core.measures import MeasureSet
from ..core.relation import Relation, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session.serving import ServingCube

#: File magic identifying a repro cube snapshot.
SNAPSHOT_MAGIC = b"RPROCUBE"
#: Current snapshot format version.  Bump on any incompatible payload change;
#: readers reject versions they do not know how to interpret.
SNAPSHOT_VERSION = 1

_HEADER = struct.Struct(">8sI")


def save_snapshot(serving: "ServingCube", path: str) -> int:
    """Write ``serving`` to ``path``; returns the snapshot size in bytes."""
    from ..query.engine import PartitionedQueryEngine

    relation = serving.relation
    if not serving.config_known:
        # Persisting the guessed default config would come back as an
        # explicit one on load, re-enabling the maintenance paths this cube
        # refuses — under assumptions (min_sup, closed, measures) that may
        # not match how the cube was computed.
        raise SnapshotError(
            "this ServingCube was constructed without a ServingConfig; "
            "snapshotting it would persist guessed build settings — build "
            "it through CubeSession (or pass config=...) before saving"
        )
    config = serving.config
    payload: Dict[str, object] = {
        "version": SNAPSHOT_VERSION,
        "schema": {
            "dimensions": list(relation.schema.dimension_names),
            "measures": list(relation.schema.measure_names),
        },
        "relation": {
            "columns": [list(column) for column in relation.columns],
            "measure_columns": [list(column) for column in relation.measure_columns],
            "decoders": [dict(decoder) for decoder in relation.decoders],
        },
        "cube": {
            "name": serving.cube.name,
            "cells": [
                (cell, stats.count, dict(stats.measures), stats.rep_tid)
                for cell, stats in serving.cube.items()
            ],
        },
        "algorithm": serving.algorithm,
        "config": config,
        "build_seconds": serving.build_seconds,
        "partition_dim": (
            serving.engine.partition_dim
            if isinstance(serving.engine, PartitionedQueryEngine)
            else None
        ),
        "partition_report": serving.partition_report,
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle, tmp_path = tempfile.mkstemp(
        prefix=".snapshot-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(_HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION))
            pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    return os.path.getsize(path)


def load_snapshot(path: str) -> "ServingCube":
    """Rebuild a serving cube from a snapshot written by :func:`save_snapshot`.

    The relation, closed cells, and configuration come back verbatim; the
    inverted index, the serving engine, and the answer caches are rebuilt
    cold.  The returned cube serves, appends, and snapshots again exactly
    like the one that was saved.

    Only load trusted files: the payload is pickle, so unpickling a crafted
    snapshot executes arbitrary code (see the module warning).
    """
    from ..query.engine import PartitionedQueryEngine, QueryEngine
    from ..session.schema import CubeSchema
    from ..session.serving import ServingCube

    with open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise SnapshotError(f"{path!r} is too short to be a cube snapshot")
        magic, version = _HEADER.unpack(header)
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(
                f"{path!r} is not a cube snapshot (bad magic {magic!r})"
            )
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path!r} uses snapshot format version {version}; this build "
                f"reads version {SNAPSHOT_VERSION}"
            )
        try:
            payload = pickle.load(stream)
        except Exception as exc:
            raise SnapshotError(f"{path!r} has a corrupt payload: {exc}") from exc

    schema_spec = payload["schema"]
    schema = Schema(
        tuple(schema_spec["dimensions"]), tuple(schema_spec["measures"])
    )
    relation_spec = payload["relation"]
    relation = Relation(
        schema,
        [list(column) for column in relation_spec["columns"]],
        [list(column) for column in relation_spec["measure_columns"]],
        [dict(decoder) for decoder in relation_spec["decoders"]],
    )
    config = payload["config"]
    cube_spec = payload["cube"]
    cube = CubeResult(relation.num_dimensions, name=cube_spec["name"])
    for cell, count, measures, rep_tid in cube_spec["cells"]:
        cube.add(tuple(cell), count, measures, rep_tid)
    cube.measure_set = MeasureSet(tuple(config.measures))

    partition_dim = payload["partition_dim"]
    if partition_dim is not None:
        engine = PartitionedQueryEngine(
            cube, partition_dim=partition_dim, cache_size=config.cache_size
        )
    else:
        engine = QueryEngine(cube, cache_size=config.cache_size)
    return ServingCube(
        relation=relation,
        schema=CubeSchema(schema.dimension_names, schema.measure_names),
        cube=cube,
        engine=engine,
        algorithm=payload["algorithm"],
        plan=None,
        build_seconds=payload["build_seconds"],
        config=config,
        partition_report=payload["partition_report"],
    )
